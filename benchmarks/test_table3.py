"""Table 3: characterization of TMI's repair.

Paper's claims: false sharing is detected within the first couple of
detector intervals ("seconds"); threads convert to processes in under
200 microseconds; commit rates span a wide range with shptr-lock the
clear outlier.
"""

from repro.eval import table3

from conftest import bench_scale, publish, run_once


def test_table3_repair_characterization(benchmark):
    result = run_once(benchmark, table3, scale=bench_scale(1.0))
    publish(result)
    data = result.data

    repaired = [name for name, entry in data.items()
                if entry["t2p_us"] > 0]
    assert len(repaired) >= 6, repaired

    for name in repaired:
        entry = data[name]
        # T2P under 200us (paper: all conversions < 200us)
        assert 0 < entry["t2p_us"] < 200, (name, entry)
        # detection within a handful of intervals
        assert entry["unrepaired_s"] <= 8, (name, entry)

    # shptr-lock commits far more often than the rest (paper: 34/s
    # vs a few per second)
    lock_rate = data["shptr-lock"]["commits_per_s"]
    others = [data[n]["commits_per_s"] for n in repaired
              if n != "shptr-lock"]
    assert lock_rate > 3 * max(others), (lock_rate, others)
