"""Figure 4: perf sample-period sweep on leveldb.

Paper's claims (shape): small periods cost runtime; larger periods
record fewer HITM events; scaling records by the period estimates the
actual event count.
"""

from repro.eval import figure4

from conftest import bench_scale, publish, run_once


def test_figure4_period_sweep(benchmark):
    result = run_once(benchmark, figure4, scale=bench_scale(1.0) * 2.0)
    publish(result)
    periods = result.data["periods"]

    # runtime is monotone-ish: period 1 costs more than period 1000
    assert periods[1]["runtime_s"] > periods[1000]["runtime_s"]

    # records fall as the period grows
    assert periods[1]["records"] > periods[100]["records"] \
        >= periods[1000]["records"]
    assert periods[1]["records"] > 20 * max(periods[1000]["records"], 1)

    # period-scaled estimates stay within an order of magnitude of the
    # actual event count for moderate periods
    for period in (5, 10, 50, 100):
        entry = periods[period]
        if entry["records"] == 0:
            continue
        ratio = entry["estimated_events"] / max(entry["events_seen"], 1)
        assert 0.1 < ratio < 10, (period, entry)
