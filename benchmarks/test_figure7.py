"""Figure 7: detection overhead across all 35 workloads.

Paper's claims: tmi-detect averages ~2% overhead (max 17%, on kmeans);
tmi-alloc is near-neutral; sheriff-detect is incompatible with most
native inputs (works on 11 of 35) and is expensive where it runs.
"""

from repro.eval import figure7

from conftest import bench_scale, publish, run_once


def test_figure7_detection_overhead(benchmark):
    result = run_once(benchmark, figure7,
                      scale=bench_scale(1.0) * 0.3)
    publish(result)
    data = result.data

    # tmi-detect: low average overhead on the full suite
    assert data["tmi_detect_overhead_pct"] < 8, data["geomean"]

    # tmi-alloc is near-neutral
    assert 0.9 < data["geomean"]["tmi-alloc"] < 1.1

    # Sheriff runs only a minority of the suite (paper: 11 of 35)
    assert data["sheriff_compatible"] <= 15

    # where Sheriff does run, it costs more than tmi-detect on the
    # sync-heavy workloads
    sheriff_norms = [w["sheriff-detect"]["norm"]
                     for w in data["workloads"].values()
                     if w["sheriff-detect"]["norm"] is not None]
    assert max(sheriff_norms) > 1.5
