"""Standing simulator-throughput microbenchmarks (PR 6).

Measures *simulated ops per host second* — the number the ROADMAP's
"as fast as the hardware allows" goal is about — for the loop shapes
the access fast paths and the vector batch core target, plus the
wall-clock of a full Table 1 regeneration through the (optionally
parallel) grid runner:

- ``uncontended``: each thread hammers a private cache line; the
  steady state is an M-state hit in the owning core, which the
  vector core advances as one numpy stretch kernel per batch;
- ``uncontended_novector``: the same workload with ``vector=False``,
  i.e. the pure-serial interpreter — the ratio between the two is
  the vector core's headline speedup;
- ``falsely_shared``: four threads store into adjacent slots of one
  line; every access takes the full directory walk and contention
  model, so this isolates dispatch/allocation overhead (the vector
  core must decline these stretches, not slow them down);
- ``t2p_repaired``: the falsely-shared loop under ``tmi-protect``;
  after thread-to-process conversion the stores land on private
  pages and the run mixes COW machinery with micro-cache hits;
- ``grid_table1``: ``experiments.table1`` wall-clock, serial vs.
  ``REPRO_JOBS=4``, asserting the rendered tables are identical.

Running this module standalone writes ``BENCH_PR6.json`` at the repo
root so later PRs have a trajectory to regress against::

    PYTHONPATH=src python benchmarks/perf/test_throughput.py

Set ``REPRO_BENCH_SCALE`` to shrink iteration counts (CI uses 0.1) and
``REPRO_BENCH_BASELINE`` to a prior JSON to embed a speedup comparison.
The pytest entry points run tiny smoke versions only — timing numbers
from shared CI machines are not stable enough to assert against.
"""

import hashlib
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from repro.engine import Engine
from repro.engine.context import ThreadCtx
from repro.engine.vector.executor import vector_available
from repro.eval import experiments
from repro.eval.systems import make_runtime
from repro.workloads.base import Workload, spawn_join, worker_index

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, os.pardir)
BENCH_PATH = os.path.normpath(os.path.join(_REPO_ROOT, "BENCH_PR6.json"))

#: Batched-access helpers exist once the dispatch fast path has landed;
#: the bench falls back to per-op loops so it can also time older trees.
HAS_BATCHED = hasattr(ThreadCtx, "store_run")

#: Stores per worker thread at scale 1.0.
BASE_ITERS = 20_000


def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


class HammerWorkload(Workload):
    """Four threads store into per-thread slots ``slot_stride`` apart."""

    name = "bench-hammer"
    suite = "micro"
    nthreads = 4
    slot_stride = 256          # private line per thread
    has_false_sharing = False
    batched = True

    def body(self, binary, env, variant):
        st = binary.store_site("hammer", 8)
        nworkers = self.nthreads
        stride = self.slot_stride
        count = self.iters(BASE_ITERS)
        batched = self.batched and HAS_BATCHED

        def main(t):
            block = yield from t.malloc(4096, align=64)
            env["block"] = block

            def worker(w):
                wi = worker_index(w)
                addr = block + wi * stride
                if batched:
                    done = 0
                    while done < count:
                        n = min(2048, count - done)
                        yield from w.store_run(addr, wi + 1, count=n,
                                               stride=0, width=8, site=st)
                        done += n
                else:
                    for _ in range(count):
                        yield from w.store(addr, wi + 1, 8, site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class FalseSharingHammer(HammerWorkload):
    name = "bench-hammer-fs"
    slot_stride = 8            # four slots on one 64-byte line
    has_false_sharing = True


#: Timed repetitions per microbenchmark; the best wall time is
#: recorded (standard noise reduction for a shared host — the
#: simulated results are asserted identical across repeats).
REPEATS = 3


def _run_hammer(workload, system, vector=None):
    program = workload.build()
    runtime = make_runtime(system)
    engine = Engine(program, runtime, vector=vector)
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    return result, wall


def _hammer_entry(workload, system, repeats=None, vector=None):
    result, wall = _run_hammer(workload, system, vector=vector)
    for _ in range((repeats if repeats is not None else REPEATS) - 1):
        again, wall_again = _run_hammer(workload, system, vector=vector)
        assert again.cycles == result.cycles, "nondeterministic run"
        wall = min(wall, wall_again)
    return {
        "system": system,
        "batched_api": bool(workload.batched and HAS_BATCHED),
        "vector": vector_available() and vector is not False,
        "sim_ops": result.data_ops,
        "sim_cycles": result.cycles,
        "hitm_total": result.hitm_total,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(result.data_ops / wall, 1),
    }


def bench_uncontended(scale=None):
    return _hammer_entry(HammerWorkload(scale=scale or bench_scale()),
                         "pthreads")


def bench_uncontended_novector(scale=None):
    """The same private-line hammer on the pure-serial interpreter;
    the ``uncontended``/``uncontended_novector`` ratio is the vector
    core's speedup on its best-case shape."""
    return _hammer_entry(HammerWorkload(scale=scale or bench_scale()),
                         "pthreads", vector=False)


def bench_falsely_shared(scale=None):
    return _hammer_entry(FalseSharingHammer(scale=scale or bench_scale()),
                         "pthreads")


def bench_t2p_repaired(scale=None):
    return _hammer_entry(FalseSharingHammer(scale=scale or bench_scale()),
                         "tmi-protect")


def bench_grid_table1(scale=0.1, jobs=4):
    """Table 1 regeneration wall-clock: serial vs REPRO_JOBS=jobs."""
    entry = {"scale": scale}
    saved = os.environ.get("REPRO_JOBS")
    try:
        os.environ["REPRO_JOBS"] = "1"
        t0 = time.perf_counter()
        serial = experiments.table1(scale=scale)
        entry["wall_s_serial"] = round(time.perf_counter() - t0, 2)
        entry["sha256_serial"] = hashlib.sha256(
            serial.text.encode()).hexdigest()

        os.environ["REPRO_JOBS"] = str(jobs)
        t0 = time.perf_counter()
        parallel = experiments.table1(scale=scale)
        entry["wall_s_jobs%d" % jobs] = round(time.perf_counter() - t0, 2)
        entry["sha256_jobs%d" % jobs] = hashlib.sha256(
            parallel.text.encode()).hexdigest()
        entry["tables_identical"] = serial.text == parallel.text
        entry["jobs"] = jobs
    finally:
        if saved is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = saved
    return entry


def collect(grid_scale=0.1, jobs=4, with_grid=True):
    data = {
        "pr": 6,
        "scale": bench_scale(),
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "batched_api": HAS_BATCHED,
            "vector_core": vector_available(),
        },
        "benchmarks": {
            "uncontended": bench_uncontended(),
            "uncontended_novector": bench_uncontended_novector(),
            "falsely_shared": bench_falsely_shared(),
            "t2p_repaired": bench_t2p_repaired(),
        },
    }
    if with_grid:
        data["benchmarks"]["grid_table1"] = bench_grid_table1(
            scale=grid_scale, jobs=jobs)
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = json.load(f)
        data["baseline"] = baseline
        speedup = {}
        for key, entry in data["benchmarks"].items():
            old = baseline.get("benchmarks", {}).get(key)
            if not old:
                continue
            if "ops_per_sec" in entry and old.get("ops_per_sec"):
                speedup[key] = round(
                    entry["ops_per_sec"] / old["ops_per_sec"], 2)
            elif "wall_s_serial" in entry and old.get("wall_s_serial"):
                best = min(v for k, v in entry.items()
                           if k.startswith("wall_s"))
                speedup[key] = round(old["wall_s_serial"] / best, 2)
        data["speedup_vs_baseline"] = speedup
    return data


def write_bench(path=BENCH_PATH, **kwargs):
    data = collect(**kwargs)
    with open(path, "w") as f:
        json.dump(data, f, indent=1, sort_keys=True)
        f.write("\n")
    return data


# ----------------------------------------------------------------------
# pytest smoke entry points (fast; no timing assertions)
# ----------------------------------------------------------------------
def test_uncontended_throughput():
    entry = bench_uncontended(scale=0.02)
    assert entry["sim_ops"] >= 4 * int(BASE_ITERS * 0.02)
    assert entry["ops_per_sec"] > 0


def test_uncontended_vector_matches_serial():
    """The vector core only changes wall time, never simulated state."""
    on = bench_uncontended(scale=0.02)
    off = bench_uncontended_novector(scale=0.02)
    assert on["sim_cycles"] == off["sim_cycles"]
    assert on["sim_ops"] == off["sim_ops"]
    assert on["hitm_total"] == off["hitm_total"]


def test_falsely_shared_throughput():
    entry = bench_falsely_shared(scale=0.02)
    assert entry["hitm_total"] > 0, "packed slots must falsely share"
    assert entry["ops_per_sec"] > 0


def test_t2p_repaired_runs():
    entry = bench_t2p_repaired(scale=0.05)
    assert entry["sim_ops"] >= 4 * int(BASE_ITERS * 0.05)


def test_batched_and_per_op_loops_are_cycle_identical():
    """The batched API must not change simulated time or HITM counts."""
    if not HAS_BATCHED:
        return
    batched = FalseSharingHammer(scale=0.02)
    per_op = FalseSharingHammer(scale=0.02)
    per_op.batched = False
    got, _ = _run_hammer(batched, "pthreads")
    want, _ = _run_hammer(per_op, "pthreads")
    assert got.cycles == want.cycles
    assert got.hitm_loads == want.hitm_loads
    assert got.hitm_stores == want.hitm_stores
    assert got.data_ops == want.data_ops


if __name__ == "__main__":
    out = write_bench()
    print(json.dumps(out, indent=1, sort_keys=True))
    print(f"[wrote {BENCH_PATH}]")
