"""Table 1: the four requirements for effective false sharing repair.

Synthesized from the Figure 7 and Figure 9 grids: compatibility,
consistency preservation, overhead without contention, and percentage
of the manual-fix speedup.
"""

from repro.eval import figure7, figure9, table1

from conftest import bench_scale, publish, run_once


def test_table1_requirements_matrix(benchmark):
    def build():
        fig7 = figure7(scale=bench_scale(1.0) * 0.3)
        fig9 = figure9(scale=bench_scale(1.0))
        return table1(figure7_result=fig7, figure9_result=fig9)

    result = run_once(benchmark, build)
    publish(result)
    data = result.data

    # Sheriff: incompatible with most of the suite; TMI/LASER: compatible
    compatible = int(data["sheriff"]["compatible"].split("/")[0])
    assert compatible <= 15
    assert data["tmi"]["compatible"] == "yes"

    # TMI's overhead without contention is low
    assert data["tmi"]["overhead_pct"] < 8

    # TMI captures far more of the manual speedup than LASER
    assert data["tmi"]["pct_manual"] > data["laser"]["pct_manual"]
    assert data["tmi"]["pct_manual"] > 60

    # consistency column (static truth of the designs)
    assert data["sheriff"]["memory_consistency"] is False
    assert data["tmi"]["memory_consistency"] is True
