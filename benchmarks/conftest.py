"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures through
:mod:`repro.eval.experiments`, prints the paper-style table, persists it
under ``results/``, and asserts the paper's qualitative claims (shapes,
not absolute numbers).

Scale knob: set ``REPRO_BENCH_SCALE`` to trade fidelity for speed
(default 1.0 = the sized-up runs recorded in EXPERIMENTS.md for the
repair experiments; broad 35-workload sweeps use smaller per-experiment
defaults).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def bench_scale(default=1.0):
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


@pytest.fixture
def scale():
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def publish(result):
    """Print and persist an ExperimentResult."""
    print()
    print(result.text)
    path = result.save()
    print(f"[saved {path}]")
    return result
