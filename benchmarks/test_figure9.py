"""Figure 9: speedup over pthreads for the false-sharing suite.

Paper's claims (shape, not absolute):
- TMI speeds up every repaired workload except the pathological
  shptr-lock (1.04x there);
- TMI lands close to the manual fix (88% on average in the paper);
- Sheriff cannot run lu-ncb, leveldb, or shptr-relaxed;
- LASER captures only a small fraction of the manual speedup;
- code-centric consistency makes shptr-relaxed far better than
  shptr-lock under TMI.
"""

from repro.eval import figure9

from conftest import bench_scale, publish, run_once


def test_figure9_repair_speedups(benchmark):
    result = run_once(benchmark, figure9, scale=bench_scale(1.0))
    publish(result)
    data = result.data["workloads"]
    geomean = result.data["geomean"]

    # TMI repairs: meaningful speedups on the clear-cut bugs
    for name in ("histogramfs", "lreg", "stringmatch", "leveldb-fs",
                 "spinlockpool", "shptr-relaxed"):
        tmi = data[name]["tmi-protect"]["speedup"]
        assert tmi and tmi > 1.5, f"TMI failed to repair {name}: {tmi}"

    # TMI approaches manual fixes on average (paper: 88%)
    assert result.data["tmi_pct_of_manual"] > 60

    # Sheriff incompatibilities from the paper
    for name in ("lu-ncb", "leveldb-fs"):
        assert data[name]["sheriff-protect"]["status"] != "ok"
    assert data["shptr-relaxed"]["sheriff-protect"]["status"] in (
        "invalid", "hang", "incompatible")

    # LASER's repair captures much less than TMI's
    assert geomean["laser"] < geomean["tmi-protect"]
    assert result.data["laser_pct_of_manual"] < \
        result.data["tmi_pct_of_manual"]

    # the code-centric consistency gap (shptr pair)
    relaxed = data["shptr-relaxed"]["tmi-protect"]["speedup"]
    locked = data["shptr-lock"]["tmi-protect"]["speedup"]
    assert relaxed > 2 * locked

    # shptr-lock: commits negate most of the benefit (paper: 1.04x)
    assert locked < 1.8
