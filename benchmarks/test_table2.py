"""Table 2: semantics of concurrent conflicting accesses between code
regions, and where PTSB use is permitted."""

from repro.core.consistency import ASM, ATOMIC, REGULAR, table2_semantics
from repro.eval import table2

from conftest import publish, run_once


def test_table2_consistency_matrix(benchmark):
    result = run_once(benchmark, table2)
    publish(result)

    # the two shaded (PTSB-permitted) cells of the paper's Table 2
    assert table2_semantics(REGULAR, REGULAR) == ("undefined", True)
    assert table2_semantics(REGULAR, ATOMIC) == ("undefined", True)
    # everything involving asm or atomic/atomic forbids the PTSB
    assert table2_semantics(ATOMIC, ATOMIC)[1] is False
    assert table2_semantics(REGULAR, ASM)[1] is False
    assert table2_semantics(ATOMIC, ASM)[1] is False
    assert table2_semantics(ASM, ASM) == ("TSO", False)
