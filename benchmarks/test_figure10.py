"""Figure 10: 4KB vs 2MB huge pages for TMI's shared region.

Paper's claims: huge pages give ~6% average speedup; the big-footprint
workloads (canneal, reverse, fft, fmm, ocean-ncp, radix) benefit most
because shared file-backed 4KB faults are expensive; small-footprint
workloads see little change either way.
"""

from repro.eval import figure10

from conftest import bench_scale, publish, run_once


def test_figure10_huge_pages(benchmark):
    result = run_once(benchmark, figure10, scale=bench_scale(1.0))
    publish(result)
    data = result.data["workloads"]

    # net win for huge pages across the suite
    assert result.data["huge_page_speedup_pct"] > 0

    # the paper's named fault-heavy workloads benefit clearly
    for name in ("canneal", "reverse", "fft", "fmm", "ocean-ncp",
                 "radix"):
        assert data[name]["overhead_pct"] > 2, (
            name, data[name]["overhead_pct"])

    # small-footprint workloads barely move
    for name in ("swaptions", "histogram"):
        assert abs(data[name]["overhead_pct"]) < 10
