"""Ablation benches for the design choices DESIGN.md calls out.

1. Targeted repair vs PTSB-everywhere (paper section 4.3: histogram
   flips from speedup to slowdown when the PTSB is indiscriminate).
2. Allocator choice (section 4.1: Lockless ~16% faster than glibc).
3. Huge-page commit memcmp prefilter (section 4.4).
4. Code-centric consistency: relaxed atomics without PTSB flushes
   (the shptr-relaxed optimization).
"""

from repro.eval import (ablation_allocator, ablation_code_centric,
                        ablation_huge_commit, ablation_ptsb_everywhere)

from conftest import bench_scale, publish, run_once


def test_ablation_targeted_vs_everywhere(benchmark):
    result = run_once(benchmark, ablation_ptsb_everywhere,
                      scale=bench_scale(1.0))
    publish(result)
    for name, entry in result.data.items():
        # targeted repair beats protecting all of memory
        assert entry["targeted"] > entry["everywhere"], (name, entry)


def test_ablation_allocator_choice(benchmark):
    result = run_once(benchmark, ablation_allocator,
                      scale=bench_scale(1.0) * 0.3)
    publish(result)
    # glibc-style allocation is slower on the allocation-heavy subset
    assert result.data["geomean"] > 1.01


def test_ablation_huge_commit_prefilter(benchmark):
    result = run_once(benchmark, ablation_huge_commit,
                      scale=bench_scale(1.0) * 0.6)
    publish(result)
    assert result.data["benefit_pct"] >= 0


def test_ablation_code_centric_relaxed(benchmark):
    result = run_once(benchmark, ablation_code_centric,
                      scale=bench_scale(1.0))
    publish(result)
    data = result.data
    assert data["relaxed_fast_path"] > 0
    assert data["with_cc_speedup"] > 1.5
    if "without_speedup" in data:
        # flushing on relaxed atomics forfeits most of the benefit
        assert data["with_cc_speedup"] > data["without_speedup"]
