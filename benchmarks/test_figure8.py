"""Figure 8: memory overhead of TMI-full vs pthreads.

Paper's claims: small-footprint benchmarks pay a roughly fixed ~90 MB
(perf buffers + detector structures); large workloads pay ~19% extra;
lock-heavy workloads (fluidanimate, water-spatial) pay extra for
process-shared sync shadows.
"""

from repro.eval import figure8

from conftest import bench_scale, publish, run_once

MB = 1024 * 1024


def test_figure8_memory_overhead(benchmark):
    result = run_once(benchmark, figure8, scale=bench_scale(1.0) * 0.3)
    publish(result)
    data = result.data["workloads"]

    # small benchmarks: fixed overhead in the tens-of-MB band
    for name in ("histogram", "lreg", "swaptions"):
        delta = data[name]["tmi_mb"] - data[name]["pthreads_mb"]
        assert 30 < delta < 300, (name, delta)

    # large benchmarks: proportional overhead stays moderate
    assert result.data["large_workload_overhead"] < 1.6

    # the biggest footprints dwarf the fixed overhead (log-scale shape)
    assert data["ocean-ncp"]["pthreads_mb"] > 1000 * \
        data["swaptions"]["pthreads_mb"]

    # lock-heavy workloads pay for pshared sync shadows
    base = data["swaptions"]["tmi_mb"] - data["swaptions"]["pthreads_mb"]
    heavy = (data["fluidanimate"]["tmi_mb"]
             - data["fluidanimate"]["pthreads_mb"])
    assert heavy > base
