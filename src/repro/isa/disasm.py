"""Disassembler used by the false sharing detector.

The real TMI disassembles the application binary at detector start-up to
learn which instruction addresses are loads or stores and each access's
width; this distinguishes true sharing from false sharing from nothing
but sampled PCs and data addresses (paper section 3.1).

Our analog walks the workload's :class:`~repro.isa.binary.Binary` image.
The detector is only allowed to use this interface — never the
simulator's ground truth.
"""

from dataclasses import dataclass

#: Distinguishes "never looked up" from a cached negative decode, so
#: repeated bogus-skid PCs cost one dict probe instead of two.
_MISS = object()


@dataclass(frozen=True)
class DecodedInstr:
    """What disassembly reveals about one PC."""

    pc: int
    is_load: bool
    is_store: bool
    width: int
    label: str


class Disassembler:
    """Static-analysis view over a workload binary."""

    def __init__(self, binary):
        self._binary = binary
        self._cache = {}

    def decode(self, pc):
        """Decode one PC; returns None for addresses outside the text
        segment (e.g. JIT pages or bogus PEBS skid)."""
        decoded = self._cache.get(pc, _MISS)
        if decoded is not _MISS:
            return decoded
        site = self._binary.lookup(pc)
        if site is None:
            decoded = None
        else:
            decoded = DecodedInstr(
                pc=pc,
                is_load=site.kind == "load",
                is_store=site.kind in ("store", "atomic"),
                width=site.width,
                label=site.label,
            )
        self._cache[pc] = decoded
        return decoded

    def analyze_all(self):
        """Decode the whole text segment (detector start-up task).

        Returns the decode table; its size drives the detector's memory
        accounting (Figure 8 attributes most overhead to these
        structures).
        """
        return {site.pc: self.decode(site.pc) for site in
                self._binary.sites()}
