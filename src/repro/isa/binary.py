"""The application "binary": a registry of static instruction sites.

Workloads declare their loads/stores up front, mirroring a compiled text
segment.  The detector's disassembler reads this image to recover, from
a PEBS record's PC, whether the access was a load or a store and how
wide it was — information the PEBS record itself does not carry
(paper sections 2.1 and 3.1).
"""

from repro.errors import ReproError
from repro.isa.ops import InstrSite

#: Base of the text segment; instruction slots are 4 bytes apart.
TEXT_BASE = 0x400000
_SLOT = 4


class Binary:
    """Instruction-site registry for one workload."""

    def __init__(self, name):
        self.name = name
        self._sites = []
        self._by_pc = {}
        self._auto = {}

    # ------------------------------------------------------------------
    # site declaration (the workload's "compilation")
    # ------------------------------------------------------------------
    def site(self, kind, width, label=""):
        """Register a static instruction; returns its :class:`InstrSite`."""
        if kind not in ("load", "store", "atomic", "other"):
            raise ReproError(f"unknown instruction kind {kind!r}")
        pc = TEXT_BASE + len(self._sites) * _SLOT
        site = InstrSite(pc=pc, label=label or f"{kind}{len(self._sites)}",
                         kind=kind, width=width)
        self._sites.append(site)
        self._by_pc[pc] = site
        return site

    def load_site(self, label="", width=8):
        return self.site("load", width, label)

    def store_site(self, label="", width=8):
        return self.site("store", width, label)

    def atomic_site(self, label="", width=8):
        return self.site("atomic", width, label)

    def auto_site(self, kind, width):
        """Shared anonymous site for contexts that did not declare one."""
        key = (kind, width)
        if key not in self._auto:
            self._auto[key] = self.site(kind, width, f"auto_{kind}{width}")
        return self._auto[key]

    # ------------------------------------------------------------------
    # binary-image queries (what a disassembler can see)
    # ------------------------------------------------------------------
    def lookup(self, pc):
        """The site at ``pc``, or None for an unknown PC."""
        return self._by_pc.get(pc)

    def sites(self):
        return list(self._sites)

    @property
    def static_instruction_count(self):
        return len(self._sites)
