"""Operations of the simulated instruction set.

Workload thread bodies are Python generators that *yield* these ops; the
engine executes each against the machine and sends results back.  This
gives the reproduction per-access interception — the thing a Python
harness cannot do to native code — inside the simulator.

Each data access carries an :class:`InstrSite` (its static instruction):
the PC recorded in PEBS samples and consumed by the disassembler when the
detector classifies accesses (paper section 3.1).

Region markers (``RegionBegin``/``RegionEnd``) are the code-centric
consistency callbacks of section 3.4.2 — in the paper an LLVM pass
inserts them; here workload "compilation" emits them around atomic and
inline-assembly code.
"""

from dataclasses import dataclass, field

#: Region kinds for code-centric consistency (paper Table 2).
REGION_ATOMIC = "atomic"
REGION_ASM = "asm"

#: Atomic memory orderings we distinguish (section 3.4.1, Case 2: relaxed
#: needs atomicity only and need not flush the PTSB).
RELAXED = "relaxed"
ACQ_REL = "acq_rel"
SEQ_CST = "seq_cst"


@dataclass(frozen=True, slots=True)
class InstrSite:
    """One static instruction in a workload's binary."""

    pc: int
    label: str
    kind: str          # 'load' | 'store' | 'atomic' | 'other'
    width: int


@dataclass(frozen=True, slots=True)
class Load:
    site: InstrSite
    addr: int
    width: int
    volatile: bool = False


@dataclass(frozen=True, slots=True)
class Store:
    site: InstrSite
    addr: int
    value: int
    width: int
    volatile: bool = False


@dataclass(frozen=True, slots=True)
class AtomicRMW:
    """LOCK-prefixed read-modify-write; returns the old value.

    ``op`` is one of 'add', 'xchg', 'cas'; for 'cas' ``operand`` is the
    new value and ``expected`` the comparison value.
    """

    site: InstrSite
    addr: int
    op: str
    operand: int
    width: int
    ordering: str = SEQ_CST
    expected: int = 0


@dataclass(frozen=True, slots=True)
class AtomicLoad:
    site: InstrSite
    addr: int
    width: int
    ordering: str = SEQ_CST


@dataclass(frozen=True, slots=True)
class AtomicStore:
    site: InstrSite
    addr: int
    value: int
    width: int
    ordering: str = SEQ_CST


@dataclass(frozen=True, slots=True)
class AccessRun:
    """A run of ``count`` same-site plain accesses ``stride`` bytes apart.

    Semantically identical to yielding ``count`` individual
    :class:`Load`/:class:`Store` ops at ``addr, addr+stride, ...`` — the
    engine still translates, charges coherence, and fires HITM listeners
    per access, and still yields the core between accesses whenever
    another thread becomes runnable — but the whole run costs one
    generator round-trip instead of ``count``.  Loads send the list of
    loaded values back into the generator; stores write ``value`` to
    every slot.
    """

    site: InstrSite
    addr: int
    count: int
    stride: int
    width: int
    is_write: bool
    value: int = 0
    volatile: bool = False


@dataclass(frozen=True, slots=True)
class RmwSeq:
    """A sequence of plain load/store/compute read-modify-write steps.

    Element ``i`` is exactly the three-op loop body ``value =
    load(addrs[i]); store(addrs[i], value + deltas[i]); compute(compute)``
    — the idiom of every per-thread accumulator loop in the suite — with
    the stored value wrapping modulo ``2**(8*width)``.  The engine
    executes the elements access-by-access (translating, charging
    coherence, firing HITM listeners and observer callbacks per access,
    and yielding the core at exactly the points the three-yield loop
    would), so a sequence is cycle-for-cycle identical to its unbatched
    form while costing one generator round-trip instead of
    ``3 * len(addrs)``.  ``deltas`` may be a single int applied to every
    element.  A zero ``compute`` omits the compute step entirely.
    """

    load_site: InstrSite
    store_site: InstrSite
    addrs: tuple
    width: int
    deltas: tuple
    compute: int
    volatile: bool = False


@dataclass(frozen=True, slots=True)
class StoreSeq:
    """A sequence of plain store/compute steps to one address.

    Element ``i`` is exactly ``store(addr, values[i]); compute(compute)``
    — the "publish then hash" idiom — executed access-by-access with the
    same per-access interception and scheduling points as the two-yield
    loop, for one generator round-trip.  A zero ``compute`` omits the
    compute step.
    """

    site: InstrSite
    addr: int
    values: tuple
    width: int
    compute: int
    volatile: bool = False


@dataclass(frozen=True, slots=True)
class Fence:
    site: InstrSite


@dataclass(frozen=True, slots=True)
class Compute:
    """Pure CPU work: advances the clock without touching memory."""

    cycles: int


@dataclass(frozen=True, slots=True)
class BulkTouch:
    """Analytic streaming access over [addr, addr+nbytes).

    Models large, uncontended working sets (the multi-GB native inputs)
    without materializing host memory: charges fill and fault costs and
    updates touch accounting, but does not move bytes.
    """

    site: InstrSite
    addr: int
    nbytes: int
    is_write: bool


@dataclass(frozen=True, slots=True)
class RegionBegin:
    kind: str                  # REGION_ATOMIC | REGION_ASM
    ordering: str = SEQ_CST    # for atomic regions


@dataclass(frozen=True, slots=True)
class RegionEnd:
    kind: str


@dataclass(frozen=True, slots=True)
class MutexLock:
    mutex: object


@dataclass(frozen=True, slots=True)
class MutexUnlock:
    mutex: object


@dataclass(frozen=True, slots=True)
class BarrierWait:
    barrier: object


@dataclass(frozen=True, slots=True)
class CondWait:
    """pthread_cond_wait: atomically release ``mutex`` and sleep."""

    condvar: object
    mutex: object


@dataclass(frozen=True, slots=True)
class CondSignal:
    condvar: object
    broadcast: bool = False


@dataclass(frozen=True, slots=True)
class Malloc:
    """Heap allocation through the active runtime's allocator."""

    size: int
    align: int = 0             # 0 = allocator default


@dataclass(frozen=True, slots=True)
class FreeOp:
    addr: int


@dataclass(frozen=True, slots=True)
class ThreadCreate:
    """Spawn a new application thread running ``body(ctx)``."""

    body: object
    name: str = ""
    args: tuple = field(default_factory=tuple)


@dataclass(frozen=True, slots=True)
class ThreadJoin:
    tid: int
