"""Lowering of batched ISA ops into flat typed columns.

The vector execution core (:mod:`repro.engine.vector`) does not
interpret op objects one slot at a time.  Instead, each batched op is
lowered *once* into numpy columns — kind / addr / width / value — plus
the static structure the executor's kernels need (page runs, line runs,
and the indices of accesses that straddle a line or translation
granule).  The lowering is purely shape-level: it never touches
simulated state, so a lowered op can be cached and reused across every
run of the same workload.

Lowering is conservative.  ``lower_access_run`` returns ``None`` for
any shape the vector kernels do not handle (negative strides,
overlapping strided stores, non-power-of-two widths, oversized runs);
the engine then simply keeps the op on the serial path.  Malformed ops
that the Program layer would never emit raise
:class:`~repro.errors.InvalidProgramError`, matching where the slow
path fails.
"""

from repro.errors import InvalidProgramError
from repro.isa.ops import AccessRun

try:
    import numpy as _np
except ImportError:                                   # pragma: no cover
    _np = None

#: Kind codes for the typed ``kind`` column.
KIND_LOAD = 0
KIND_STORE = 1

#: Access widths the vector kernels (and the physmem int codecs) handle.
VECTOR_WIDTHS = frozenset((1, 2, 4, 8))

#: Upper bound on lowered run length; larger runs stay serial rather
#: than materializing unbounded index columns.
MAX_LOWERED_COUNT = 1 << 22

_LINE_MASK = 63
_GRANULE_MASK = 0xFFF


def numpy_available():
    """Whether numpy imported; without it every op stays serial."""
    return _np is not None


class LoweredRun:
    """One :class:`~repro.isa.ops.AccessRun` as flat typed columns.

    ``addrs`` is the full virtual-address column; ``kind``, ``width``
    and ``value`` are scalar columns (constant over a run).  ``bad``
    holds the sorted indices of accesses that straddle a cache line or
    a 4 KB translation granule — the executor never batches across
    them.  ``page_starts``/``page_ids`` and ``line_starts``/``line_ids``
    are run-length encodings of the (monotone) page and relative line
    columns, so eligibility walks touch one dict probe per distinct
    page/line instead of one per access.
    """

    __slots__ = ("kind", "addrs", "width", "value", "count", "stride",
                 "is_write", "cost_kind", "bad", "page_starts",
                 "page_ids", "line_starts", "line_ids")

    def __init__(self, kind, addrs, width, value, count, stride,
                 is_write, bad, page_starts, page_ids, line_starts,
                 line_ids):
        self.kind = kind
        self.addrs = addrs
        self.width = width
        self.value = value
        self.count = count
        self.stride = stride
        self.is_write = is_write
        self.bad = bad
        self.page_starts = page_starts
        self.page_ids = page_ids
        self.line_starts = line_starts
        self.line_ids = line_ids


def validate_run(op):
    """Reject op shapes the Program layer must never emit.

    Raises :class:`InvalidProgramError` exactly where the serial
    interpreter would fail (a non-positive count or width produces a
    malformed op stream before a single cycle is simulated).
    """
    if op.count <= 0:
        raise InvalidProgramError(
            f"AccessRun with non-positive count {op.count}")
    if op.width <= 0:
        raise InvalidProgramError(
            f"AccessRun with non-positive width {op.width}")


def _run_length(values):
    """(starts, ids) run-length encoding of a monotone int column."""
    if len(values) == 0:
        return (_np.zeros(0, dtype=_np.int64),
                _np.zeros(0, dtype=_np.int64))
    change = _np.flatnonzero(_np.diff(values)) + 1
    starts = _np.concatenate((
        _np.zeros(1, dtype=_np.int64), change.astype(_np.int64),
        _np.asarray([len(values)], dtype=_np.int64)))
    return starts, values[starts[:-1]]


def lower_access_run(op):
    """Lower one ``AccessRun`` to a :class:`LoweredRun`, or ``None``.

    Returns ``None`` for shapes the vector kernels decline (the op then
    executes serially, which is always correct): non-``AccessRun`` run
    ops (``RmwSeq``/``StoreSeq`` take the executor's lockstep replay
    kernel instead of lowering), negative
    strides, widths outside :data:`VECTOR_WIDTHS`, strided stores that
    overlap (``0 < stride < width``, where the byte-level outcome
    depends on per-access ordering), and runs past
    :data:`MAX_LOWERED_COUNT`.
    """
    if op.__class__ is not AccessRun:
        return None
    validate_run(op)
    if _np is None:
        return None
    if op.stride < 0 or op.count > MAX_LOWERED_COUNT:
        return None
    if op.width not in VECTOR_WIDTHS:
        return None
    if 0 < op.stride < op.width:
        return None
    addrs = (op.addr
             + _np.arange(op.count, dtype=_np.int64) * op.stride)
    straddle = (((addrs & _LINE_MASK) + op.width > 64)
                | ((addrs & _GRANULE_MASK) + op.width > 4096))
    bad = _np.flatnonzero(straddle).astype(_np.int64)
    page_starts, page_ids = _run_length(addrs >> 12)
    line_starts, line_ids = _run_length(addrs >> 6)
    return LoweredRun(
        kind=KIND_STORE if op.is_write else KIND_LOAD,
        addrs=addrs, width=op.width, value=op.value, count=op.count,
        stride=op.stride, is_write=op.is_write, bad=bad,
        page_starts=page_starts, page_ids=page_ids,
        line_starts=line_starts, line_ids=line_ids)
