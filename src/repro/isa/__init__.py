"""Tiny simulated ISA: operation types, binary images, disassembly."""

from repro.isa.binary import Binary, TEXT_BASE
from repro.isa.disasm import DecodedInstr, Disassembler
from repro.isa.ops import (ACQ_REL, AtomicLoad, AtomicRMW, AtomicStore,
                           BarrierWait, BulkTouch, Compute, Fence, FreeOp,
                           InstrSite, Load, Malloc, MutexLock, MutexUnlock,
                           REGION_ASM, REGION_ATOMIC, RegionBegin, RegionEnd,
                           RELAXED, SEQ_CST, Store, ThreadCreate, ThreadJoin)

__all__ = [
    "Binary", "TEXT_BASE", "DecodedInstr", "Disassembler", "ACQ_REL",
    "AtomicLoad", "AtomicRMW", "AtomicStore", "BarrierWait", "BulkTouch",
    "Compute", "Fence", "FreeOp", "InstrSite", "Load", "Malloc",
    "MutexLock", "MutexUnlock", "REGION_ASM", "REGION_ATOMIC",
    "RegionBegin", "RegionEnd", "RELAXED", "SEQ_CST", "Store",
    "ThreadCreate", "ThreadJoin",
]
