"""Synchronization primitives over simulated memory."""

from repro.sync.objects import Barrier, Condvar, Mutex

__all__ = ["Barrier", "Condvar", "Mutex"]
