"""Synchronization objects over simulated memory.

A pthread mutex or barrier is an *application memory object*: its lock
word lives at an address in the simulated address space, and every
acquire/release performs real (simulated) coherence traffic on that
word.  This is what makes the Boost ``spinlockpool`` bug reproducible —
adjacent locks in one cache line falsely share — and what TMI's
``pthread_mutex_init`` interposition fixes by redirecting the hot word
into a cache-line-sized object in process-shared memory (section 3.2).

Blocking semantics (wait queues, wake-ups) are managed by the engine;
these classes only carry state.
"""

from dataclasses import dataclass, field


@dataclass(eq=False)
class Mutex:
    """A pthread-style mutex.

    ``addr`` is where the application's ``pthread_mutex_t`` lives;
    ``shadow_addr`` (if set by a runtime) is the redirected process-shared
    lock word that acquire/release traffic actually targets.
    """

    mid: int
    addr: int
    name: str = ""
    width: int = 4
    shadow_addr: int = 0
    owner_tid: object = None
    waiters: list = field(default_factory=list)
    acquire_count: int = 0
    contended_count: int = 0

    #: sizeof(pthread_mutex_t) on x86-64 Linux.
    SIZE = 40

    @property
    def hot_addr(self):
        """Address acquire/release traffic targets."""
        return self.shadow_addr or self.addr


@dataclass(eq=False)
class Barrier:
    """A pthread-style barrier for ``parties`` threads."""

    bid: int
    addr: int
    parties: int
    name: str = ""
    width: int = 4
    shadow_addr: int = 0
    arrived: list = field(default_factory=list)   # tids waiting this round
    generation: int = 0
    wait_count: int = 0

    SIZE = 32

    @property
    def hot_addr(self):
        return self.shadow_addr or self.addr


@dataclass(eq=False)
class Condvar:
    """A pthread-style condition variable (wait/signal/broadcast)."""

    cid: int
    addr: int
    name: str = ""
    width: int = 4
    shadow_addr: int = 0
    waiters: list = field(default_factory=list)   # (tid, mutex) pairs

    SIZE = 48

    @property
    def hot_addr(self):
        return self.shadow_addr or self.addr
