"""Campaign service: async sharded experiment traffic over the grid.

The serving-stack layer the ROADMAP asks for: many tenants submit
:class:`CampaignSpec` requests (grid / fuzz / chaos), an asyncio
scheduler shards their cells across the hardened
:mod:`repro.eval.parallel` worker pools, and a content-addressed
:class:`ResultStore` serves any cell that has ever been computed —
keyed by a canonical digest of (workload, system, config, seed,
engine-version), so resubmitted or overlapping campaigns get cached
cells byte-identical and free.

Pieces:

- :mod:`repro.service.spec` — versioned ``repro-campaign-spec/1``
  requests, validated at submission time;
- :mod:`repro.service.store` — the content-addressed cell-result
  cache and its canonical cache key;
- :mod:`repro.service.scheduler` — bounded priority queue, shard
  executor, per-campaign ``repro-campaign/1`` state with
  ok/failed/timeout/retried classification, obs-layer progress;
- :mod:`repro.service.service` — the long-running service: file
  inbox, restart resume, arrival-driven submission streams;
- :mod:`repro.service.resilience` — the supervision layer: retry
  budgets with logical-clock backoff, poison-cell quarantine
  (``repro-quarantine/1``), tenant quotas with weighted-fair
  draining, and the crash-safe ``repro-service-state/1``
  supervision record;
- :mod:`repro.service.client` — the tenant-side file client;
- :mod:`repro.service.arrival` — closed-loop / Poisson / bursty
  arrival processes for load modeling.

CLI: ``python -m repro.eval.cli
serve | submit | status | results | quarantine``.
See the service section of ``docs/ARCHITECTURE.md`` and the
"Running a campaign" walkthrough in ``EXPERIMENTS.md``.
"""

from repro.service.arrival import (ARRIVAL_PROCESSES, ArrivalProcess,
                                   Bursty, ClosedLoop, Poisson,
                                   make_arrival)
from repro.service.client import ServiceClient, load_spec
from repro.service.resilience import (CELL_HUNG, CELL_QUARANTINED,
                                      QUARANTINE_FORMAT, RETRYING,
                                      SERVICE_STATE_FORMAT,
                                      SOURCE_QUARANTINE, Quarantine,
                                      ResiliencePolicy,
                                      ResilienceSupervisor,
                                      TenantQueues)
from repro.service.scheduler import (CAMPAIGN_FORMAT, COMPLETED,
                                     FAILED, PENDING, RUNNING,
                                     CampaignJob, CampaignScheduler)
from repro.service.service import TERMINAL, CampaignService
from repro.service.spec import KINDS, SPEC_FORMAT, CampaignSpec
from repro.service.store import (STORE_FORMAT, ResultStore,
                                 canonical_form, cell_digest,
                                 payload_bytes, result_payload)

__all__ = [
    "ARRIVAL_PROCESSES", "ArrivalProcess", "Bursty", "CAMPAIGN_FORMAT",
    "CELL_HUNG", "CELL_QUARANTINED", "COMPLETED", "CampaignJob",
    "CampaignScheduler", "CampaignService", "CampaignSpec",
    "ClosedLoop", "FAILED", "KINDS", "PENDING", "Poisson",
    "QUARANTINE_FORMAT", "Quarantine", "RETRYING", "RUNNING",
    "ResiliencePolicy", "ResilienceSupervisor", "ResultStore",
    "SERVICE_STATE_FORMAT", "SOURCE_QUARANTINE", "SPEC_FORMAT",
    "STORE_FORMAT", "ServiceClient", "TERMINAL", "TenantQueues",
    "canonical_form", "cell_digest", "load_spec", "make_arrival",
    "payload_bytes", "result_payload",
]
