"""Pluggable arrival processes for campaign load modeling.

The millions-of-users story is many tenants submitting campaigns
against one simulator fleet; *how* those submissions arrive changes
queueing behavior more than how many there are.  Three classic client
models, each deterministic under its seed so load experiments replay
exactly:

- **closed-loop** — a fixed client population; each client submits its
  next campaign only after the previous one completes, plus an optional
  think time.  Offered load self-throttles to service capacity.
- **poisson** — open-loop memoryless arrivals at a fixed rate;
  submissions keep coming whether or not the fleet keeps up, which is
  what exposes backpressure behavior.
- **bursty** — open-loop arrivals in bursts: ``burst`` back-to-back
  submissions, exponential gaps between bursts, long-run average rate
  preserved.  Stresses queue depth the Poisson average hides.

An arrival process only *times* submissions (it yields inter-arrival
gaps in seconds); what gets submitted stays the caller's business —
see :meth:`repro.service.CampaignService.submit_stream`.
"""

import itertools
import random

from repro.errors import CampaignSpecError


class ArrivalProcess:
    """Base class: a deterministic stream of inter-arrival gaps."""

    #: Registry name; subclasses override.
    process = ""
    #: Closed-loop processes gate the next submission on completion.
    closed = False

    def gaps(self):
        """Infinite iterator of inter-arrival gaps (seconds >= 0)."""
        raise NotImplementedError

    def times(self, n):
        """The first ``n`` absolute arrival times (cumulative gaps)."""
        out, now = [], 0.0
        for gap in itertools.islice(self.gaps(), n):
            now += gap
            out.append(now)
        return out


class ClosedLoop(ArrivalProcess):
    """A fixed client population with optional think time.

    ``clients`` concurrent tenants each wait for their previous
    campaign to finish, think for ``think`` seconds, then submit again
    — the textbook closed system, whose offered load adapts to service
    capacity instead of overrunning it.
    """

    process = "closed"
    closed = True

    def __init__(self, clients=1, think=0.0):
        if clients < 1:
            raise CampaignSpecError(f"bad client count {clients!r}")
        if think < 0:
            raise CampaignSpecError(f"bad think time {think!r}")
        self.clients = clients
        self.think = think

    def gaps(self):
        """Constant think-time gaps (completion gating is external)."""
        while True:
            yield self.think


class Poisson(ArrivalProcess):
    """Open-loop memoryless arrivals at ``rate`` per second."""

    process = "poisson"

    def __init__(self, rate=1.0, seed=0):
        if rate <= 0:
            raise CampaignSpecError(f"bad arrival rate {rate!r}")
        self.rate = rate
        self.seed = seed

    def gaps(self):
        """Exponential inter-arrival gaps (seeded, replayable)."""
        rng = random.Random(f"arrival:poisson:{self.seed}")
        while True:
            yield rng.expovariate(self.rate)


class Bursty(ArrivalProcess):
    """Open-loop bursts: ``burst`` back-to-back arrivals, then a gap.

    Gaps between bursts are exponential with mean ``burst / rate``, so
    the long-run average arrival rate still equals ``rate`` — same
    average load as :class:`Poisson`, much deeper queue excursions.
    """

    process = "bursty"

    def __init__(self, rate=1.0, burst=4, seed=0):
        if rate <= 0:
            raise CampaignSpecError(f"bad arrival rate {rate!r}")
        if burst < 1:
            raise CampaignSpecError(f"bad burst size {burst!r}")
        self.rate = rate
        self.burst = burst
        self.seed = seed

    def gaps(self):
        """Zero gaps inside a burst, exponential gaps between bursts."""
        rng = random.Random(f"arrival:bursty:{self.seed}")
        while True:
            yield rng.expovariate(self.rate / self.burst)
            for _ in range(self.burst - 1):
                yield 0.0


#: Registered arrival processes by spec name.
ARRIVAL_PROCESSES = {cls.process: cls
                     for cls in (ClosedLoop, Poisson, Bursty)}


def make_arrival(spec):
    """Instantiate an arrival process from its spec dict.

    ``spec`` is the ``arrival`` field of a campaign spec:
    ``{"process": "poisson", "rate": 4.0, "seed": 1}``.
    """
    if not isinstance(spec, dict) or "process" not in spec:
        raise CampaignSpecError(
            f"arrival spec needs a 'process' key (got {spec!r})")
    kwargs = {k: v for k, v in spec.items() if k != "process"}
    cls = ARRIVAL_PROCESSES.get(spec["process"])
    if cls is None:
        raise CampaignSpecError(
            f"unknown arrival process {spec['process']!r} "
            f"(known: {sorted(ARRIVAL_PROCESSES)})")
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise CampaignSpecError(
            f"malformed arrival spec {spec!r}: {exc}") from exc
