"""Versioned campaign specifications (``repro-campaign-spec/1``).

A :class:`CampaignSpec` is the unit of work a tenant submits to the
campaign service: a request kind (``grid`` | ``fuzz`` | ``chaos``), the
workload/system/config/seed axes to cross, and scheduling metadata
(priority, an optional arrival-process spec for load modeling).  Specs
are validated eagerly at construction — an unknown workload or a
misspelled TMI config knob fails at submission time with a
:class:`~repro.errors.CampaignSpecError`, not an hour later inside a
worker process — and serialize to a stable JSON document whose digest
contributes the campaign's identity.

:meth:`CampaignSpec.cells` expands the spec into the exact keyword
dicts :func:`repro.eval.runner.run_workload` takes, which is also the
identity the content-addressed store hashes: two specs that overlap on
some (workload, system, config, seed) tuples will derive the same
digests for those cells and share results.
"""

import itertools
import json
import os
from dataclasses import dataclass, field, fields as dc_fields

from repro.core.config import TmiConfig
from repro.errors import CampaignSpecError
from repro.eval.systems import SYSTEM_NAMES
from repro.workloads import has as workload_exists

#: Versioned spec format tag.
SPEC_FORMAT = "repro-campaign-spec/1"

#: Campaign request kinds.
KINDS = ("grid", "fuzz", "chaos")

#: Valid TMI config override keys (the TmiConfig field names).
CONFIG_KEYS = frozenset(f.name for f in dc_fields(TmiConfig))


def _tuple(value):
    if value is None:
        return ()
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass
class CampaignSpec:
    """One tenant's experiment-campaign request.

    The cell axes are ``workloads x systems x configs x seeds``;
    ``seeds`` parameterize schedule fuzzing (``fuzz``) or fault plans
    (``chaos``) and default to a single unseeded cell for plain
    ``grid`` requests.
    """

    workloads: tuple
    systems: tuple = ("pthreads",)
    kind: str = "grid"
    #: TMI config override dicts; one empty dict = the stock config.
    configs: tuple = ({},)
    seeds: tuple = (None,)
    scale: float = 0.1
    nthreads: object = None
    #: Lower runs sooner (asyncio.PriorityQueue ordering).
    priority: int = 0
    name: str = ""
    #: Submitting tenant (quota + fairness identity under the
    #: resilience layer; empty = the anonymous default tenant).
    #: Deliberately *not* part of any cell — two tenants requesting
    #: the same cell share one cached result.
    tenant: str = ""
    #: Schedule-perturbation policy for ``fuzz`` campaigns.
    policy: str = "random"
    #: Fault-rate intensity for ``chaos`` campaigns (see
    #: :func:`repro.faults.default_rates`).
    fault_intensity: float = 0.5
    #: Arrival-process spec for load modeling, e.g.
    #: ``{"process": "poisson", "rate": 4.0, "seed": 1}``.
    arrival: object = None
    #: Free-form tenant metadata (not part of any cell identity).
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.workloads = _tuple(self.workloads)
        self.systems = _tuple(self.systems)
        self.configs = tuple(dict(c) for c in _tuple(self.configs)) \
            or ({},)
        self.seeds = _tuple(self.seeds) or (None,)
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self):
        """Raise :class:`CampaignSpecError` on any malformed field."""
        if self.kind not in KINDS:
            raise CampaignSpecError(
                f"unknown campaign kind {self.kind!r} (known: {KINDS})")
        if not self.workloads:
            raise CampaignSpecError("a campaign needs >= 1 workload")
        for name in self.workloads:
            if not workload_exists(name):
                raise CampaignSpecError(f"unknown workload {name!r}")
        if not self.systems:
            raise CampaignSpecError("a campaign needs >= 1 system")
        for system in self.systems:
            if system not in SYSTEM_NAMES:
                raise CampaignSpecError(
                    f"unknown system {system!r} "
                    f"(known: {list(SYSTEM_NAMES)})")
        for config in self.configs:
            unknown = set(config) - CONFIG_KEYS
            if unknown:
                raise CampaignSpecError(
                    f"unknown TMI config key(s) {sorted(unknown)}")
        for seed in self.seeds:
            if seed is not None and not isinstance(seed, int):
                raise CampaignSpecError(
                    f"seeds must be ints (got {seed!r})")
        if self.kind != "grid" and any(s is None for s in self.seeds):
            raise CampaignSpecError(
                f"{self.kind} campaigns need integer seeds")
        if not (isinstance(self.scale, (int, float)) and self.scale > 0):
            raise CampaignSpecError(f"bad scale {self.scale!r}")
        if not isinstance(self.priority, int):
            raise CampaignSpecError(f"bad priority {self.priority!r}")
        if not isinstance(self.tenant, str):
            raise CampaignSpecError(f"bad tenant {self.tenant!r}")
        if self.arrival is not None:
            if not isinstance(self.arrival, dict):
                raise CampaignSpecError(
                    f"arrival spec must be a dict "
                    f"(got {self.arrival!r})")
            if "process" not in self.arrival:
                raise CampaignSpecError(
                    "arrival spec needs a 'process' key")

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def cells(self):
        """The spec's cell list: ``run_workload`` keyword dicts.

        This expansion *is* the cache identity — the content-addressed
        store hashes exactly these dicts.
        """
        out = []
        # a plain grid has one deterministic result per cell; replica
        # seeds would only re-derive identical digests
        seeds = (None,) if self.kind == "grid" else self.seeds
        axes = itertools.product(self.workloads, self.systems,
                                 self.configs, seeds)
        for workload, system, config, seed in axes:
            cell = {"name": workload, "system": system,
                    "scale": self.scale}
            if self.nthreads is not None:
                cell["nthreads"] = self.nthreads
            if config:
                cell["config"] = dict(config)
            if self.kind == "fuzz":
                cell["schedule"] = {"policy": self.policy,
                                    "seed": int(seed)}
            elif self.kind == "chaos":
                from repro.faults import default_rates
                cell["faults"] = {
                    "seed": int(seed),
                    "rates": default_rates(self.fault_intensity),
                    "limits": {}}
            out.append(cell)
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        """The spec as a stable ``repro-campaign-spec/1`` document."""
        return {"format": SPEC_FORMAT, "kind": self.kind,
                "workloads": list(self.workloads),
                "systems": list(self.systems),
                "configs": [dict(c) for c in self.configs],
                "seeds": list(self.seeds), "scale": self.scale,
                "nthreads": self.nthreads, "priority": self.priority,
                "name": self.name, "tenant": self.tenant,
                "policy": self.policy,
                "fault_intensity": self.fault_intensity,
                "arrival": self.arrival, "meta": dict(self.meta)}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from :meth:`to_dict` output (format-guarded)."""
        if not isinstance(data, dict) \
                or data.get("format") != SPEC_FORMAT:
            tag = data.get("format") if isinstance(data, dict) else None
            raise CampaignSpecError(
                f"unsupported campaign spec format {tag!r} "
                f"(expected {SPEC_FORMAT})")
        kwargs = {k: v for k, v in data.items() if k != "format"}
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise CampaignSpecError(f"malformed spec: {exc}") from exc

    def save(self, path):
        """Write the spec JSON to ``path`` (atomic); returns the path."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path):
        """Read a spec JSON from ``path`` (typed errors on bad input)."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(
                f"spec {path}: corrupted JSON ({exc})") from exc
        except OSError as exc:
            raise CampaignSpecError(
                f"spec {path}: unreadable ({exc})") from exc
        return cls.from_dict(data)

    def digest(self, length=10):
        """Short stable digest of the spec (campaign-id material)."""
        import hashlib
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:length]
