"""Content-addressed result store for campaign cells.

Every grid cell is a pure function of its keyword arguments plus the
engine version: the simulator is deterministic, so two campaigns that
name the same (workload, system, config, seed) tuple would compute the
same bytes twice.  The store makes the second computation free — a
cell's result is filed under the SHA-256 of its *canonical form*
(:func:`canonical_form`), and any campaign that derives the same digest
gets the stored result back byte-identical.

Canonicalization rules, pinned by the hypothesis property tests in
``tests/service/test_cache_key.py``:

- dict keys (the config dict above all) are sorted, so key order never
  changes the digest;
- host-side execution knobs — ``REPRO_JOBS``, shard sizes, timeouts —
  are simply *not part of the cell*, so they cannot perturb the key;
- the engine version is folded in, so an engine change invalidates the
  whole cache instead of serving stale cycles;
- distinct cells serialize to distinct canonical strings (JSON of a
  sorted finite structure is injective up to value equality).

Only harness-``ok`` results are stored: a failed or timed-out cell is
worth re-attempting on the next submission, not caching.
"""

import hashlib
import json
import os

from repro import __version__ as ENGINE_VERSION
from repro.eval.parallel import CELL_OK
from repro.eval.report import results_dir

#: Versioned store-entry format tag.
STORE_FORMAT = "repro-cell-result/1"


def _normalize(value):
    """Reduce a cell value to plain JSON-stable types (recursively)."""
    if isinstance(value, dict):
        return {str(k): _normalize(value[k]) for k in value}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # dataclass configs (TmiConfig) degrade to their field dict
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return {name: _normalize(getattr(value, name))
                for name in sorted(fields)}
    return str(value)


def canonical_form(cell):
    """The canonical serialized identity of one cell (a JSON string).

    Sorted keys and compact separators make the serialization a pure
    function of the cell's *value*, not of dict insertion order; the
    engine version rides along so results never outlive the engine
    that computed them.
    """
    return json.dumps({"cell": _normalize(dict(cell)),
                       "engine": ENGINE_VERSION},
                      sort_keys=True, separators=(",", ":"))


def cell_digest(cell):
    """SHA-256 hex digest of the cell's canonical form."""
    return hashlib.sha256(canonical_form(cell).encode()).hexdigest()


def result_payload(status, summary, error=""):
    """The JSON-stable result document cached for one cell.

    Deliberately excludes harness transients (``retried``, worker pids,
    wall-clock): the payload must be byte-identical between a cached
    cell and the same cell freshly executed through
    :func:`~repro.eval.parallel.run_cells_recorded`.
    """
    return {"status": status, "summary": summary, "error": error}


def payload_bytes(payload):
    """Canonical byte serialization of a result payload."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


class ResultStore:
    """Filesystem-backed content-addressed cell-result cache.

    Entries live under ``<root>/<digest[:2]>/<digest>.json`` (two-level
    fan-out keeps directories small at millions of cells).  Writes are
    atomic (tmp + rename) so a crashed writer can never leave a
    half-entry that later reads as a corrupt hit; an unreadable entry
    is treated as a miss and overwritten by the next put.
    """

    def __init__(self, root=None):
        self.root = root or os.path.join(results_dir(), "store")
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path(self, digest):
        """Where the entry for ``digest`` lives."""
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def get(self, digest):
        """The cached result payload for ``digest``, or None (miss).

        Integrity is verified before serving: the entry's recorded
        digest must match the requested one and the payload must
        re-hash to the entry's ``payload_sha256`` (written by
        :meth:`put`).  A well-formed entry that fails either check —
        a file planted under the wrong name, a payload edited after
        the fact, a pre-checksum entry — is *evicted* and counted as
        a miss rather than served as a corrupt hit.
        """
        path = self.path(digest)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(data, dict) \
                or data.get("format") != STORE_FORMAT:
            self.misses += 1
            return None
        result = data.get("result")
        intact = (data.get("digest") == digest
                  and isinstance(result, dict)
                  and data.get("payload_sha256")
                  == hashlib.sha256(
                      payload_bytes(result)).hexdigest())
        if not intact:
            try:
                os.remove(path)
            except OSError:
                pass
            self.evictions += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def has(self, digest):
        """Whether ``digest`` resolves (without counting a hit/miss)."""
        return os.path.exists(self.path(digest))

    def put(self, cell, status, summary, error=""):
        """Store one cell's result; returns the entry path or None.

        Only harness-``ok`` cells are cached — failures and timeouts
        must be re-attempted, not replayed from the cache.
        """
        if status != CELL_OK:
            return None
        digest = cell_digest(cell)
        path = self.path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        result = result_payload(status, summary, error)
        entry = {"format": STORE_FORMAT, "digest": digest,
                 "key": json.loads(canonical_form(cell)),
                 "payload_sha256": hashlib.sha256(
                     payload_bytes(result)).hexdigest(),
                 "result": result}
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def stats(self):
        """Hit/miss counters plus the number of entries on disk."""
        entries = 0
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if os.path.isdir(shard_dir):
                    entries += sum(1 for f in os.listdir(shard_dir)
                                   if f.endswith(".json"))
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": entries}
