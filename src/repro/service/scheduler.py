"""Asyncio campaign scheduler: queue, shards, cache, backpressure.

One :class:`CampaignScheduler` owns a bounded priority queue of
:class:`CampaignJob` objects and drains it through the existing
hardened grid machinery.  Per job, the dataflow is::

    spec.cells() --digest--> store lookup --+--> cache hits (free)
                                            |
                                            +--> misses, sharded
                                                 |
                             run_checkpointed (eval/parallel pool)
                                                 |
                                store.put + campaign state rewrite

Execution of misses goes through
:func:`repro.eval.grid.run_checkpointed` under a per-campaign
checkpoint name, so a service process that dies mid-shard resumes from
the last completed batch — the same ``results/checkpoints/`` machinery
long grids already use.  Campaign state is rewritten atomically after
every shard; a restarted service re-enqueues any campaign whose state
file says ``pending``/``running`` and re-executes only the cells that
never finished.

Progress streams through the PR 4 observability layer: scheduler-level
counters and gauges in a :class:`~repro.obs.MetricsRegistry`
(``campaign.cells_total``, ``campaign.cache_hits``, ``campaign.
executed``, ``campaign.queue_depth``, ...) plus tracer-style events in
an :class:`~repro.obs.EventLog` that lands in each campaign's state
file.
"""

import asyncio
import json
import os

from repro.eval.grid import checkpoint_path, run_checkpointed
from repro.eval.parallel import CELL_OK, CELL_TIMEOUT, job_count
from repro.obs import EventLog, MetricsRegistry
from repro.service.resilience import (CELL_HUNG, CELL_QUARANTINED,
                                      RETRYING, SOURCE_QUARANTINE)
from repro.service.store import (ResultStore, cell_digest,
                                 result_payload)

#: Versioned campaign-state format tag.
CAMPAIGN_FORMAT = "repro-campaign/1"

#: Campaign lifecycle statuses.
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

#: Where a cell's result came from.
SOURCE_CACHE = "cache"
SOURCE_EXECUTED = "executed"
SOURCE_CHECKPOINT = "checkpoint"


class CampaignJob:
    """One submitted campaign: spec, per-cell state, event log."""

    def __init__(self, campaign_id, spec, state_path):
        self.id = campaign_id
        self.spec = spec
        self.state_path = state_path
        self.status = PENDING
        #: digest -> {"cell", "status", "source", "retried", "error"}
        self.cells = {}
        self.log = EventLog(meta={"campaign": campaign_id,
                                  "kind": spec.kind})

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    def counts(self):
        """Cell totals by harness status, source, and retry flag."""
        counts = {"total": len(self.cells), "cache_hits": 0,
                  "executed": 0, "checkpoint": 0, "retried": 0,
                  "ok": 0, "failed": 0, "timeout": 0}
        for entry in self.cells.values():
            status = entry["status"]
            counts[status] = counts.get(status, 0) + 1
            source = entry["source"]
            if source == SOURCE_CACHE:
                counts["cache_hits"] += 1
            elif source == SOURCE_CHECKPOINT:
                counts["checkpoint"] += 1
            elif source == SOURCE_QUARANTINE:
                pass  # held out: neither cached nor executed
            else:
                counts["executed"] += 1
            if entry.get("retried"):
                counts["retried"] += 1
        return counts

    def cache_hit_fraction(self):
        """Fraction of the campaign's cells served from the store."""
        if not self.cells:
            return 0.0
        counts = self.counts()
        return counts["cache_hits"] / counts["total"]

    def to_dict(self):
        """The campaign state as a ``repro-campaign/1`` document."""
        return {"format": CAMPAIGN_FORMAT, "id": self.id,
                "status": self.status, "spec": self.spec.to_dict(),
                "counts": self.counts(),
                "cache_hit_fraction": self.cache_hit_fraction(),
                "cells": self.cells,
                "events": self.log.trace_data()}

    def write_state(self):
        """Atomically persist the state file; returns its path."""
        os.makedirs(os.path.dirname(self.state_path), exist_ok=True)
        tmp = self.state_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.state_path)
        return self.state_path

    def load_state(self):
        """Restore prior per-cell state (restart resume); best-effort.

        An unreadable state file is treated as no prior progress — the
        content-addressed store still makes re-derived cells cheap.
        """
        try:
            with open(self.state_path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return False
        if not isinstance(data, dict) \
                or data.get("format") != CAMPAIGN_FORMAT:
            return False
        self.cells = dict(data.get("cells", {}))
        self.status = data.get("status", PENDING)
        return True


class CampaignScheduler:
    """Shards campaign cells across the hardened worker pools.

    ``queue_limit`` bounds the submission queue.  Submission and
    draining run in one asyncio task (``serve``/``submit_stream`` call
    them sequentially), so a full queue must not block ``submit`` —
    there would be no concurrent consumer to unblock it.  Instead, a
    full queue makes ``submit`` drain the highest-priority queued job
    inline before enqueueing: the submitter pays the drain latency,
    which is the backpressure signal open-loop arrival processes exist
    to provoke (visible as the ``campaign.backpressure`` counter).
    ``shard_cells`` controls how many cells go to the pool per
    scheduling quantum (default: two batches' worth of workers,
    matching the grid's checkpoint cadence).
    """

    def __init__(self, store=None, state_dir=None, checkpoint_dir=None,
                 jobs=None, timeout=None, shard_cells=None,
                 queue_limit=64, metrics=None, resilience=None):
        self.store = store if store is not None else ResultStore()
        self.state_dir = state_dir or "campaigns"
        self.checkpoint_dir = checkpoint_dir or "checkpoints"
        self.jobs = jobs
        self.timeout = timeout
        self.shard_cells = shard_cells or max(1, job_count(jobs)) * 2
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        #: Optional :class:`~repro.service.resilience.
        #: ResilienceSupervisor`; None keeps the PR 8 semantics
        #: (classify once, fail fast, no retries) byte-for-byte.
        self.resilience = resilience
        if resilience is not None and resilience.metrics is None:
            resilience.metrics = self.metrics
        self.queue_limit = queue_limit
        # created lazily inside a running loop (see _live_queue): a
        # queue built here would bind whatever loop exists at
        # construction time, not the one submit/run_pending run under
        self._queue = None
        self._queue_loop = None
        self._seq = 0
        #: jobs a full-queue submit drained inline, not yet reported
        #: through run_pending
        self._drained = []

    def _live_queue(self):
        """The submission queue, created in the running event loop.

        Re-created (when drained empty) if the scheduler is reused
        under a different loop — e.g. one service driving several
        ``asyncio.run`` calls — so no queue ever carries state bound
        to a dead loop.
        """
        loop = asyncio.get_running_loop()
        if self._queue is None \
                or (self._queue_loop is not loop
                    and self._queue.empty()):
            self._queue = asyncio.PriorityQueue(
                maxsize=self.queue_limit)
            self._queue_loop = loop
        return self._queue

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def make_job(self, campaign_id, spec):
        """Build the :class:`CampaignJob` for ``spec``."""
        path = os.path.join(self.state_dir, f"{campaign_id}.json")
        return CampaignJob(campaign_id, spec, path)

    async def submit(self, job):
        """Enqueue a job; a full queue drains inline (backpressure).

        Ordering is (priority, submission sequence): lower priority
        values run sooner, ties run in submission order.  There is no
        consumer task running concurrently with submission, so a
        blocking put on a full queue would deadlock — instead the
        submitter runs the highest-priority queued job to completion
        to free a slot, and that latency is the backpressure.
        """
        if self.resilience is not None:
            return await self._submit_supervised(job)
        queue = self._live_queue()
        self._seq += 1
        # a resubmitted campaign id keeps its prior per-cell progress;
        # without this, writing the pending state below would clobber
        # the very state file the resume path reads
        job.load_state()
        job.status = PENDING
        job.log.emit("campaign_submitted", cells=len(job.spec.cells()),
                     priority=job.spec.priority)
        job.write_state()
        item = (job.spec.priority, self._seq, job)
        while True:
            try:
                queue.put_nowait(item)
                break
            except asyncio.QueueFull:
                self.metrics.counter("campaign.backpressure").inc()
                drained = await self.run_next()
                if drained is not None:
                    self._drained.append(drained)
        self.metrics.gauge("campaign.queue_depth").set(queue.qsize())
        return job

    async def _submit_supervised(self, job):
        """Supervised submission: tenant quotas + weighted queues.

        A fresh submission supersedes any parked retry of the same
        campaign id.  Both the global ``queue_limit`` and the tenant's
        ``tenant_max_queued`` quota apply; either being full makes the
        submitter drain inline — and a *quota*-full tenant drains its
        own queue first (``prefer_tenant``), so one flooding tenant
        pays its own backpressure instead of evicting other tenants'
        queued work.
        """
        sup = self.resilience
        sup.cancel_retry(job.id)
        self._seq += 1
        job.load_state()
        job.status = PENDING
        job.log.emit("campaign_submitted", cells=len(job.spec.cells()),
                     priority=job.spec.priority)
        job.write_state()
        tenant = getattr(job.spec, "tenant", "") or ""
        self.metrics.counter("service.tenant.submitted",
                             tenant=tenant or "default").inc()
        while sup.queues.total() >= self.queue_limit \
                or sup.queues.count(tenant) \
                >= sup.policy.tenant_max_queued:
            over_quota = sup.queues.count(tenant) \
                >= sup.policy.tenant_max_queued
            self.metrics.counter("campaign.backpressure").inc()
            if over_quota:
                self.metrics.counter(
                    "service.tenant.backpressure",
                    tenant=tenant or "default").inc()
            drained = await self.run_next(
                prefer_tenant=tenant if over_quota else None)
            if drained is None:
                break
            if drained.status != RETRYING:
                self._drained.append(drained)
        sup.queues.push(tenant, (job.spec.priority, self._seq, job))
        self.metrics.gauge("campaign.queue_depth").set(
            sup.queues.total())
        return job

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def run_next(self, prefer_tenant=None):
        """Run the highest-priority queued job; None when queue empty.

        Under supervision the pop comes from the weighted tenant
        queues, and ``prefer_tenant`` forces a specific tenant's queue
        (the quota-backpressure path).  Without a supervisor the
        argument is accepted and ignored.
        """
        if self.resilience is not None:
            item = self.resilience.queues.pop(prefer=prefer_tenant)
            if item is None:
                return None
            _, _, job = item
            self.metrics.gauge("campaign.queue_depth").set(
                self.resilience.queues.total())
            await self.run_job(job)
            return job
        queue = self._live_queue()
        if queue.empty():
            return None
        _, _, job = queue.get_nowait()
        self.metrics.gauge("campaign.queue_depth").set(queue.qsize())
        await self.run_job(job)
        return job

    async def run_pending(self):
        """Drain the queue: run every submitted job to completion.

        Returns every job finished since the previous call — including
        jobs a full-queue ``submit`` already drained inline, so
        callers like ``serve(once=True)`` report the complete set.
        Under supervision, parked retries are then un-parked in due-
        round order and re-run until every campaign is terminal (the
        backoff clock fast-forwards; an idle scheduler never sleeps),
        and the supervision record is flushed before returning.
        """
        done, self._drained = self._drained, []
        while True:
            job = await self.run_next()
            if job is None:
                if self.resilience is not None:
                    retry = self.resilience.next_retry_job()
                    if retry is not None:
                        await self.run_job(retry)
                        if retry.status != RETRYING:
                            done.append(retry)
                        continue
                    self.resilience.save_state()
                return done
            if job.status != RETRYING:
                done.append(job)

    async def run_job(self, job):
        """Execute one campaign: cache lookups, sharded misses, state.

        Returns the finished job (status ``completed`` when every cell
        is harness-ok, ``failed`` otherwise — with the per-cell
        ok/failed/timeout/retried classification carried in the state).
        """
        metrics = self.metrics
        job.load_state()  # no-op for new campaigns, resume for crashed
        job.status = RUNNING
        job.log.emit("campaign_started")
        self.metrics.gauge("campaign.active").add(1)

        cells = job.spec.cells()
        digests = [cell_digest(cell) for cell in cells]
        metrics.counter("campaign.cells_total").inc(len(cells))

        sup = self.resilience
        pending, seen, hits_now = [], set(), 0
        quarantined_now, deferred_now = 0, 0
        for cell, digest in zip(cells, digests):
            if digest in seen:
                continue  # duplicate axes derive one cell, once
            seen.add(digest)
            prior = job.cells.get(digest)
            if prior is not None and prior["status"] == CELL_OK:
                continue  # already finished in a previous attempt
            if sup is not None and sup.is_quarantined(digest):
                job.cells[digest] = {
                    "cell": cell, "status": CELL_QUARANTINED,
                    "source": SOURCE_QUARANTINE, "retried": False,
                    "error": "digest quarantined (release to re-run)"}
                metrics.counter("service.quarantine.skipped").inc()
                quarantined_now += 1
                continue
            if sup is not None and not sup.eligible(job.id, digest):
                deferred_now += 1
                continue  # backoff not elapsed; prior entry stands
            payload = self.store.get(digest)
            if payload is not None:
                job.cells[digest] = {
                    "cell": cell, "status": payload["status"],
                    "source": SOURCE_CACHE, "retried": False,
                    "error": payload.get("error", "")}
                metrics.counter("campaign.cache_hits").inc()
                hits_now += 1
            else:
                pending.append((cell, digest))
        if hits_now:
            job.log.emit("cache_hits", hits=hits_now)
        if quarantined_now:
            job.log.emit("quarantine_skipped", cells=quarantined_now)
        if deferred_now:
            job.log.emit("cells_deferred", cells=deferred_now)
        job.write_state()

        for base in range(0, len(pending), self.shard_cells):
            shard = pending[base:base + self.shard_cells]
            if sup is not None:
                shard_timeout, watchdog = sup.shard_timeout(
                    [digest for _, digest in shard], self.timeout)
            else:
                shard_timeout, watchdog = self.timeout, False
            records = await asyncio.to_thread(
                run_checkpointed, [cell for cell, _ in shard],
                f"campaign-{job.id}", jobs=self.jobs,
                timeout=shard_timeout, out_dir=self.checkpoint_dir,
                fallback_fresh=True)
            for (cell, digest), record in zip(shard, records):
                source = (SOURCE_CHECKPOINT if record.from_checkpoint
                          else SOURCE_EXECUTED)
                status, error = record.status, record.error
                if watchdog and status == CELL_TIMEOUT:
                    status = CELL_HUNG
                    error = f"watchdog: {error}"
                    metrics.counter("service.hung").inc()
                if record.status == CELL_OK:
                    self.store.put(cell, record.status,
                                   record.summary, record.error)
                    if sup is not None \
                            and not record.from_checkpoint:
                        sup.record_success(digest, record.elapsed)
                if sup is not None and not record.from_checkpoint:
                    status = sup.classify_record(
                        job, digest, cell, status, record.retried,
                        error)
                job.cells[digest] = {
                    "cell": cell, "status": status,
                    "source": source, "retried": record.retried,
                    "error": error}
                if status == CELL_OK:
                    metrics.counter("campaign.cells_ok").inc()
                else:
                    metrics.counter("campaign.cells_" + status).inc()
                if record.retried:
                    metrics.counter("campaign.cells_retried").inc()
            metrics.counter("campaign.shards").inc()
            metrics.histogram("campaign.shard_cells").observe(
                len(shard))
            job.log.emit("shard_done", shard=base // self.shard_cells,
                         cells=len(shard))
            job.write_state()

        counts = job.counts()
        metrics.counter("campaign.executed").inc(counts["executed"])
        if sup is not None:
            job.status = sup.finish(job)
        else:
            job.status = COMPLETED if counts["ok"] == counts["total"] \
                else FAILED
        if job.status == RETRYING:
            open_cells = sum(
                1 for entry in job.cells.values()
                if entry["status"] not in (CELL_OK, CELL_QUARANTINED))
            job.log.emit("campaign_parked", open_cells=open_cells)
        else:
            job.log.emit("campaign_done", status=job.status,
                         cache_hits=counts["cache_hits"],
                         executed=counts["executed"],
                         failed=counts["failed"],
                         timeout=counts[CELL_TIMEOUT])
        job.write_state()
        if job.status == COMPLETED:
            # fully absorbed into the store + state; drop the grid
            # checkpoint so results/checkpoints/ doesn't grow unbounded
            path = checkpoint_path(f"campaign-{job.id}",
                                   out_dir=self.checkpoint_dir)
            if os.path.exists(path):
                os.remove(path)
        metrics.counter("campaign.jobs_" + job.status).inc()
        self.metrics.gauge("campaign.active").add(-1)
        return job
