"""File-based campaign client: submit/status against a service root.

The client and the service share nothing but a directory tree (see
:mod:`repro.service.service` for the layout), which is what lets
campaigns survive process restarts on either side: a submission is an
atomic spec-file rename into ``<root>/inbox/``, status is a read of
``<root>/campaigns/<id>.json``, and results come straight out of the
content-addressed store.  A client can therefore submit while the
service is down — the spec waits in the inbox until the next
``serve`` pass.
"""

import os
import time

from repro.errors import ServiceTimeoutError
from repro.service.service import CampaignService, TERMINAL
from repro.service.spec import CampaignSpec


class ServiceClient:
    """A tenant handle on one service root."""

    def __init__(self, root=None):
        # the service object doubles as the directory-layout oracle;
        # the client never touches its scheduler
        self._service = CampaignService(root=root)
        self.root = self._service.root

    def submit(self, spec, campaign_id=None):
        """Spool ``spec`` into the service inbox; returns the id.

        The spec file is written to a temp name and atomically linked
        into place, so a polling service never reads a half-written
        spec and two clients racing on the same spec digest can never
        overwrite each other's submission (each gets its own ordinal;
        an explicit duplicate ``campaign_id`` raises
        ``FileExistsError`` instead of clobbering).
        """
        return self._service.reserve_campaign_id(
            spec, campaign_id=campaign_id)

    def status(self, campaign_id):
        """The campaign's state document, or None when unknown."""
        return self._service.status(campaign_id)

    def campaign_ids(self):
        """Every campaign id known under this service root (sorted)."""
        out = []
        for fname in sorted(os.listdir(self._service.campaigns_dir)):
            if fname.endswith(".json"):
                out.append(fname[:-len(".json")])
        return out

    def results(self, campaign_id):
        """Per-cell results (see
        :meth:`repro.service.CampaignService.results`)."""
        return self._service.results(campaign_id)

    def wait(self, campaign_id, timeout=60.0, poll=0.1,
             max_poll=2.0):
        """Block until the campaign reaches a terminal status.

        Polls with capped exponential backoff: the interval starts at
        ``poll`` and doubles up to ``max_poll``, so a short wait stays
        responsive while a long one stops hammering the state file.
        Returns the final state document; raises
        :class:`~repro.errors.ServiceTimeoutError` (a
        :class:`TimeoutError` subclass) naming the campaign and the
        last observed state when the budget runs out first — the
        campaign keeps running; only the wait is abandoned.
        """
        deadline = time.monotonic() + timeout
        delay = poll
        while True:
            state = self.status(campaign_id)
            if state is not None and state.get("status") in TERMINAL:
                return state
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeoutError(
                    campaign_id,
                    state.get("status") if state else "unknown",
                    timeout)
            time.sleep(min(delay, remaining))
            delay = min(delay * 2, max_poll)


def load_spec(path):
    """Read a campaign spec file (typed errors on malformed input)."""
    return CampaignSpec.load(path)
