"""Service resilience: retry budgets, quarantine, quotas, supervision.

PR 8's scheduler classifies a cell's failure exactly once and moves
on.  This module is the supervision layer that sits between the
:class:`~repro.service.scheduler.CampaignScheduler` and the hardened
grid and turns those classifications into *recovery*:

- **Retry budgets** — a failed/timed-out cell re-enters a
  deterministic retry queue with exponential backoff measured in
  scheduler *drain rounds* (a logical clock, not wall-time) plus
  seeded jitter (``random.Random(f"{campaign_id}:{digest}")``), capped
  per cell and per campaign.  Determinism is what makes aggressive
  retrying safe here: a replayed cell is bit-identical, so a retry can
  only turn a transient harness failure into the one true result.
- **Poison-cell quarantine** — a cell that exhausts its budget, or
  whose worker crashes (``BrokenProcessPool``) ``crash_threshold``
  times, moves to a persisted ``repro-quarantine/1`` artifact keyed by
  cell digest.  Quarantined digests are skipped (classified
  ``quarantined``, never cached) until released through the
  ``quarantine`` CLI subcommand.
- **Tenant quotas + weighted fairness** — per-tenant queue caps and a
  deterministic weighted round-robin drain so one flooding tenant
  cannot starve the queue.
- **Crash-safe supervision** — retry/quarantine/tenant state persists
  atomically as a ``repro-service-state/1`` record, so a restarted
  service *resumes* retry counts instead of resetting them; a
  watchdog classifies shards exceeding ``hung_multiplier`` times their
  historical wall-clock as ``hung`` and preempts them into the retry
  path.

The supervision artifact deliberately contains only *deterministic*
state (attempt counts for unfinished cells, the quarantine set, tenant
completion totals).  Operational state that legitimately varies with
the host — wall-clock timing history, worker-crash evidence (pooled
execution retries a crashed worker's cells serially, serial execution
never sees the crash), the drain-round clock — lives in a separate
*health* sidecar.  Note the one behavioral asymmetry this implies:
with ``crash_threshold < max_attempts`` a repeat-crasher quarantines
one attempt earlier under pooled execution than serial; configurations
that need attempt counts identical across ``REPRO_JOBS`` (the
``resilience-chaos`` gate) set ``crash_threshold >= max_attempts``.
"""

import heapq
import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.eval.parallel import CELL_OK

#: Versioned quarantine-entry format tag.
QUARANTINE_FORMAT = "repro-quarantine/1"

#: Versioned supervision-state format tag.
SERVICE_STATE_FORMAT = "repro-service-state/1"

#: Cell classification for digests held in quarantine.
CELL_QUARANTINED = "quarantined"

#: Cell classification for watchdog-preempted shards.
CELL_HUNG = "hung"

#: Cell-entry source for quarantine skips (neither cache nor pool).
SOURCE_QUARANTINE = "quarantine"

#: Campaign status while retries are scheduled but not yet due.  A
#: string on purpose: it joins the scheduler's ``pending``/``running``/
#: ``completed``/``failed`` vocabulary without importing the scheduler
#: (which imports this module).
RETRYING = "retrying"


@dataclass
class ResiliencePolicy:
    """Knobs for the retry/quarantine/quota state machine.

    Backoff for a cell's ``n``-th failed attempt is
    ``backoff_base * backoff_factor**(n-1)`` drain rounds (capped at
    ``max_backoff_rounds``) plus a seeded jitter draw in
    ``[0, jitter_rounds]``.
    """

    #: Per-cell attempt budget (first run included).
    max_attempts: int = 3
    #: Per-campaign cap on retry re-runs (drain-round re-entries).
    max_campaign_retries: int = 8
    backoff_base: int = 1
    backoff_factor: int = 2
    max_backoff_rounds: int = 8
    jitter_rounds: int = 2
    #: Worker crashes (pool-broken serial retries that still fail)
    #: before a cell quarantines early.
    crash_threshold: int = 2
    #: A shard exceeding ``hung_multiplier`` x its cells' historical
    #: wall-clock is preempted and classified ``hung``.
    hung_multiplier: float = 4.0
    #: Floor for the watchdog budget (seconds) so sub-millisecond
    #: history never produces an unmeetable bound.
    min_watchdog_seconds: float = 0.5
    #: Per-tenant queued-campaign cap (quota backpressure).
    tenant_max_queued: int = 8
    #: Weighted round-robin drain shares; unlisted tenants weigh 1.
    tenant_weights: Dict[str, int] = field(default_factory=dict)

    def weight(self, tenant: str) -> int:
        """The (>=1) drain weight for ``tenant``."""
        return max(1, int(self.tenant_weights.get(tenant, 1)))

    def backoff_rounds(self, attempt: int) -> int:
        """Deterministic backoff (drain rounds) after attempt ``n``."""
        rounds = self.backoff_base \
            * self.backoff_factor ** max(0, attempt - 1)
        return max(1, min(int(rounds), self.max_backoff_rounds))

    def jitter(self, campaign_id: str, digest: str,
               attempt: int) -> int:
        """Seeded jitter draw for the cell's ``attempt``-th failure.

        The RNG is seeded exactly as the retry queue's contract
        states — ``random.Random(f"{campaign_id}:{digest}")`` — and
        advanced once per attempt, so every (campaign, cell, attempt)
        triple maps to one reproducible jitter value.
        """
        rng = random.Random(f"{campaign_id}:{digest}")
        value = 0
        for _ in range(max(1, attempt)):
            value = rng.randrange(self.jitter_rounds + 1)
        return value


def _write_json(path: str, data: Dict[str, Any]) -> str:
    """Atomically (tmp + rename) write ``data`` as JSON; returns path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


class Quarantine:
    """Persisted poison-cell registry keyed by cell digest.

    One ``repro-quarantine/1`` JSON file per digest under ``root``;
    entries carry the failing cell's replay kwargs so the ``run`` CLI
    can reproduce the failure, and survive service restarts until
    explicitly released.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, digest: str) -> str:
        """Where the entry for ``digest`` lives."""
        return os.path.join(self.root, f"{digest}.json")

    def add(self, digest: str, cell: Dict[str, Any], campaign_id: str,
            attempts: int, reason: str, error: str = "") -> str:
        """Persist one poison cell; returns the entry path."""
        entry = {"format": QUARANTINE_FORMAT, "digest": digest,
                 "campaign": campaign_id, "cell": dict(cell),
                 "attempts": attempts, "reason": reason,
                 "error": error}
        return _write_json(self.path(digest), entry)

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The quarantine entry for ``digest``, or None."""
        try:
            with open(self.path(digest)) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(data, dict) \
                or data.get("format") != QUARANTINE_FORMAT:
            return None
        return data

    def contains(self, digest: str) -> bool:
        """Whether ``digest`` is currently quarantined."""
        return self.get(digest) is not None

    def digests(self) -> List[str]:
        """Every quarantined digest, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-len(".json")]
                      for name in os.listdir(self.root)
                      if name.endswith(".json"))

    def release(self, digest: str) -> bool:
        """Drop ``digest`` from quarantine; False when unknown."""
        try:
            os.remove(self.path(digest))
        except OSError:
            return False
        return True


class TenantQueues:
    """Deterministic weighted-round-robin queues, one per tenant.

    Items are the scheduler's ``(priority, seq, job)`` tuples, kept in
    a per-tenant heap so priority ordering holds *within* a tenant
    while the weighted round-robin decides *between* tenants.  All
    iteration is over sorted tenant names, so the drain order is a
    pure function of the submission history.
    """

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self._queues: Dict[str, List[Tuple[int, int, Any]]] = {}
        self._credits: Dict[str, int] = {}
        self._last: str = ""

    def push(self, tenant: str, item: Tuple[int, int, Any]) -> None:
        """Enqueue one item under ``tenant``."""
        heapq.heappush(self._queues.setdefault(tenant, []), item)

    def count(self, tenant: str) -> int:
        """Queued items for ``tenant``."""
        return len(self._queues.get(tenant, ()))

    def total(self) -> int:
        """Queued items across every tenant."""
        return sum(len(q) for q in self._queues.values())

    def tenants(self) -> List[str]:
        """Tenants with at least one queued item, sorted."""
        return sorted(t for t, q in self._queues.items() if q)

    def pop(self, prefer: Optional[str] = None) \
            -> Optional[Tuple[int, int, Any]]:
        """Dequeue the next item under weighted round-robin.

        ``prefer`` forces a specific tenant's queue (the quota
        backpressure path: a flooding tenant drains its *own* work).
        Returns None when everything is empty.
        """
        if prefer is not None and self.count(prefer):
            return heapq.heappop(self._queues[prefer])
        names = self.tenants()
        if not names:
            return None
        if all(self._credits.get(t, 0) <= 0 for t in names):
            for name in names:
                self._credits[name] = self.policy.weight(name)
        # rotate: resume just past the last-served tenant so equal
        # weights interleave instead of draining alphabetically
        after = [t for t in names if t > self._last]
        ordered = after + [t for t in names if t <= self._last]
        chosen = next((t for t in ordered
                       if self._credits.get(t, 0) > 0), ordered[0])
        self._credits[chosen] = self._credits.get(chosen, 0) - 1
        self._last = chosen
        return heapq.heappop(self._queues[chosen])


class ResilienceSupervisor:
    """The retry/quarantine/quota state machine for one service root.

    The scheduler consults it per cell (quarantine skip, retry
    eligibility, watchdog shard budget), reports every executed
    attempt back, and asks it to decide each campaign's post-drain
    status.  State persists as two files under ``root``:

    - ``service-state.json`` — the deterministic
      ``repro-service-state/1`` supervision record (attempt counts for
      unfinished cells, quarantine set, tenant completion totals);
    - ``service-health.json`` — host-dependent operational state (the
      drain-round clock, per-digest wall-clock history, crash
      evidence, per-campaign retry totals).
    """

    def __init__(self, root: str,
                 policy: Optional[ResiliencePolicy] = None,
                 metrics: Any = None) -> None:
        self.root = root
        self.policy = policy or ResiliencePolicy()
        self.metrics = metrics
        self.quarantine = Quarantine(os.path.join(root, "quarantine"))
        self.state_path = os.path.join(root, "service-state.json")
        self.health_path = os.path.join(root, "service-health.json")
        #: Logical drain-round clock for retry backoff.
        self.round = 0
        #: campaign id -> {digest: executed attempts}.
        self.attempts: Dict[str, Dict[str, int]] = {}
        #: campaign id -> {digest: worker-crash evidence}.
        self.crashes: Dict[str, Dict[str, int]] = {}
        #: campaign id -> {digest: earliest eligible retry round}.
        self.next_round: Dict[str, Dict[str, int]] = {}
        #: campaign id -> retry re-entries consumed.
        self.campaign_retries: Dict[str, int] = {}
        #: tenant -> {"completed": n, "failed": n}.
        self.tenant_stats: Dict[str, Dict[str, int]] = {}
        #: digest -> max observed wall-clock seconds (watchdog input).
        self.timings: Dict[str, float] = {}
        self.queues = TenantQueues(self.policy)
        #: campaign id -> (due round, job) awaiting its retry round.
        self._retry_jobs: Dict[str, Tuple[int, Any]] = {}
        self.load_state()

    # ------------------------------------------------------------------
    # cell-level hooks
    # ------------------------------------------------------------------
    def is_quarantined(self, digest: str) -> bool:
        """Whether ``digest`` must be skipped (held in quarantine)."""
        return self.quarantine.contains(digest)

    def eligible(self, campaign_id: str, digest: str) -> bool:
        """Whether the cell's backoff has elapsed (drain rounds)."""
        due = self.next_round.get(campaign_id, {}).get(digest)
        return due is None or self.round >= due

    def attempt_count(self, campaign_id: str, digest: str) -> int:
        """Executed attempts recorded for (campaign, cell)."""
        return self.attempts.get(campaign_id, {}).get(digest, 0)

    def shard_timeout(self, digests: List[str],
                      default: Optional[float]) \
            -> Tuple[Optional[float], bool]:
        """The watchdog budget for one shard: ``(timeout, engaged)``.

        Engages only when *every* cell in the shard has wall-clock
        history and the resulting ``hung_multiplier x max(history)``
        bound tightens the configured timeout; otherwise the default
        passes through untouched.
        """
        history = [self.timings.get(d) for d in digests]
        if not history or any(h is None for h in history):
            return default, False
        bound = max(self.policy.min_watchdog_seconds,
                    self.policy.hung_multiplier
                    * max(h for h in history if h is not None))
        if default is not None and default <= bound:
            return default, False
        return bound, True

    def record_success(self, digest: str, elapsed: float) -> None:
        """Fold one successful cell's wall-clock into the history."""
        if elapsed > 0:
            self.timings[digest] = max(self.timings.get(digest, 0.0),
                                       elapsed)

    def classify_record(self, job: Any, digest: str,
                        cell: Dict[str, Any], status: str,
                        retried: bool, error: str = "") -> str:
        """Account one executed attempt; returns the cell's status.

        Non-ok attempts either schedule a backoff retry (status passes
        through) or, when the budget is exhausted / the worker crashed
        ``crash_threshold`` times, quarantine the cell (status becomes
        ``quarantined`` and a ``repro-quarantine/1`` entry persists).
        Every attempt lands in the campaign's event log.
        """
        campaign_id = job.id
        per = self.attempts.setdefault(campaign_id, {})
        per[digest] = per.get(digest, 0) + 1
        attempt = per[digest]
        job.log.emit("cell_attempt", digest=digest[:12],
                     attempt=attempt, status=status)
        if status == CELL_OK:
            return status
        if retried and status != CELL_OK:
            crashes = self.crashes.setdefault(campaign_id, {})
            crashes[digest] = crashes.get(digest, 0) + 1
        crashed = self.crashes.get(campaign_id, {}).get(digest, 0)
        if attempt >= self.policy.max_attempts \
                or crashed >= self.policy.crash_threshold:
            if attempt >= self.policy.max_attempts:
                reason = (f"retry budget exhausted "
                          f"({attempt} attempts)")
            else:
                reason = f"worker crashed {crashed} times"
            self.quarantine.add(digest, cell, campaign_id,
                                attempts=attempt, reason=reason,
                                error=error)
            if self.metrics is not None:
                self.metrics.counter("service.quarantined").inc()
            job.log.emit("cell_quarantined", digest=digest[:12],
                         attempts=attempt, reason=reason)
            self.save_state()
            return CELL_QUARANTINED
        delay = self.policy.backoff_rounds(attempt) \
            + self.policy.jitter(campaign_id, digest, attempt)
        due = self.round + delay
        self.next_round.setdefault(campaign_id, {})[digest] = due
        if self.metrics is not None:
            self.metrics.counter("service.retry").inc()
        job.log.emit("cell_retry", digest=digest[:12],
                     attempt=attempt, due_round=due)
        return status

    # ------------------------------------------------------------------
    # campaign-level hooks
    # ------------------------------------------------------------------
    def finish(self, job: Any) -> str:
        """Decide a drained campaign's status; schedules its retry.

        ``completed`` when every cell is ok or quarantined, ``failed``
        when retryable cells remain but the per-campaign retry cap is
        spent, ``retrying`` otherwise — with the job parked until the
        earliest of its cells' backoff rounds.
        """
        campaign_id = job.id
        retryable = [
            digest for digest, entry in job.cells.items()
            if entry["status"] not in (CELL_OK, CELL_QUARANTINED)]
        if not retryable:
            done = all(entry["status"] == CELL_OK
                       for entry in job.cells.values()) \
                or any(entry["status"] == CELL_QUARANTINED
                       for entry in job.cells.values())
            status = "completed" if done else "failed"
            self._finalize(job, status)
            return status
        if self.campaign_retries.get(campaign_id, 0) \
                >= self.policy.max_campaign_retries:
            job.log.emit("campaign_retry_cap", cells=len(retryable))
            self._finalize(job, "failed")
            return "failed"
        rounds = self.next_round.get(campaign_id, {})
        due = min(rounds.get(digest, self.round + 1)
                  for digest in retryable)
        self._retry_jobs[campaign_id] = (due, job)
        return RETRYING

    def _finalize(self, job: Any, status: str) -> None:
        """Terminal bookkeeping: tenant totals, pruned attempts."""
        tenant = getattr(job.spec, "tenant", "") or ""
        stats = self.tenant_stats.setdefault(
            tenant, {"completed": 0, "failed": 0})
        stats[status] = stats.get(status, 0) + 1
        per = self.attempts.get(job.id)
        if per is not None:
            for digest in list(per):
                entry = job.cells.get(digest)
                if entry is not None and entry["status"] == CELL_OK:
                    del per[digest]
            if not per:
                del self.attempts[job.id]
        self.next_round.pop(job.id, None)
        self._retry_jobs.pop(job.id, None)
        self.save_state()

    def cancel_retry(self, campaign_id: str) -> None:
        """Drop a parked retry (a fresh submission supersedes it)."""
        self._retry_jobs.pop(campaign_id, None)

    def has_retries(self) -> bool:
        """Whether any campaign is parked awaiting a retry round."""
        return bool(self._retry_jobs)

    def next_retry_job(self) -> Any:
        """Un-park the earliest-due retry, advancing the round clock.

        Returns None when nothing is parked.  Advancing ``round`` to
        the job's due round is what makes backoff a *logical* clock:
        an idle scheduler fast-forwards instead of sleeping.
        """
        if not self._retry_jobs:
            return None
        campaign_id = min(
            self._retry_jobs,
            key=lambda cid: (self._retry_jobs[cid][0], cid))
        due, job = self._retry_jobs.pop(campaign_id)
        self.round = max(self.round, due)
        self.campaign_retries[campaign_id] = \
            self.campaign_retries.get(campaign_id, 0) + 1
        job.log.emit("campaign_retry_round", round=self.round,
                     retries=self.campaign_retries[campaign_id])
        return job

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The deterministic ``repro-service-state/1`` document."""
        campaigns = {
            cid: {"attempts": dict(sorted(per.items()))}
            for cid, per in sorted(self.attempts.items()) if per}
        return {"format": SERVICE_STATE_FORMAT,
                "campaigns": campaigns,
                "quarantined": self.quarantine.digests(),
                "tenants": {t: dict(sorted(s.items()))
                            for t, s in
                            sorted(self.tenant_stats.items())}}

    def save_state(self) -> str:
        """Atomically persist supervision + health state; returns the
        supervision artifact's path."""
        _write_json(self.health_path, {
            "round": self.round,
            "campaign_retries": dict(sorted(
                self.campaign_retries.items())),
            "crashes": {cid: dict(sorted(per.items()))
                        for cid, per in sorted(self.crashes.items())},
            "timings": dict(sorted(self.timings.items()))})
        return _write_json(self.state_path, self.snapshot())

    def load_state(self) -> bool:
        """Restore persisted supervision/health state (best-effort).

        Unreadable or wrong-format files are treated as a fresh start;
        the quarantine directory is authoritative on its own.
        """
        loaded = False
        try:
            with open(self.state_path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = None
        if isinstance(data, dict) \
                and data.get("format") == SERVICE_STATE_FORMAT:
            self.attempts = {
                cid: dict(entry.get("attempts", {}))
                for cid, entry in data.get("campaigns", {}).items()}
            self.tenant_stats = {
                t: dict(s) for t, s in data.get("tenants", {}).items()}
            loaded = True
        try:
            with open(self.health_path) as fh:
                health = json.load(fh)
        except (OSError, json.JSONDecodeError):
            health = None
        if isinstance(health, dict):
            self.round = int(health.get("round", 0))
            self.campaign_retries = {
                str(k): int(v) for k, v in
                health.get("campaign_retries", {}).items()}
            self.crashes = {
                cid: {d: int(n) for d, n in per.items()}
                for cid, per in health.get("crashes", {}).items()}
            self.timings = {d: float(v) for d, v in
                            health.get("timings", {}).items()}
            loaded = True
        return loaded
