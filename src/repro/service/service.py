"""The campaign service: spool directories, restart resume, serving.

:class:`CampaignService` glues the pieces into one long-running
process.  Everything it knows lives under one *service root* (default
``results/service/``), which is also the client protocol — submission
and status travel through the filesystem, so campaigns survive both
service and client restarts::

    <root>/inbox/<id>.json        client-submitted campaign specs
    <root>/campaigns/<id>.json    per-campaign state (repro-campaign/1)
    <root>/checkpoints/           grid checkpoints for in-flight shards
    <root>/store/                 content-addressed cell results

``serve`` polls the inbox, enqueues new specs, and drains the
scheduler; ``serve(once=True)`` processes everything currently
submitted and returns (the CI smoke mode).  On startup the service
re-enqueues every campaign whose state file says it never finished, so
a killed service picks up exactly where its checkpoints left off.
"""

import asyncio
import itertools
import os

from repro.eval.report import results_dir
from repro.service.arrival import make_arrival
from repro.service.resilience import (RETRYING, ResiliencePolicy,
                                      ResilienceSupervisor)
from repro.service.scheduler import (CAMPAIGN_FORMAT, COMPLETED,
                                     FAILED, PENDING, RUNNING,
                                     CampaignScheduler)
from repro.service.spec import CampaignSpec
from repro.service.store import ResultStore, cell_digest

__all__ = ["CampaignService", "CAMPAIGN_FORMAT"]

#: Per-process sequence for reservation temp names — unique even when
#: two reservations overlap in one process (``id()`` can be reused).
_RESERVE_SEQ = itertools.count(1)


class CampaignService:
    """A file-rooted campaign service instance.

    ``root`` defaults under ``results/`` (``REPRO_RESULTS_DIR`` aware);
    tests point it at a tmpdir.  ``jobs``/``timeout`` forward to the
    hardened grid pool per shard.
    """

    def __init__(self, root=None, jobs=None, timeout=None,
                 shard_cells=None, queue_limit=64, metrics=None,
                 resilience=None):
        self.root = root or os.path.join(results_dir(), "service")
        self.inbox_dir = os.path.join(self.root, "inbox")
        self.campaigns_dir = os.path.join(self.root, "campaigns")
        self.store = ResultStore(os.path.join(self.root, "store"))
        #: Optional supervision layer.  ``resilience`` accepts a
        #: :class:`~repro.service.resilience.ResiliencePolicy` (custom
        #: knobs) or any truthy value (default policy); falsy keeps
        #: the PR 8 fail-fast semantics.  The supervisor's state lives
        #: under the service root, so a restarted service resumes
        #: retry counts and the quarantine set.
        self.resilience = None
        if resilience:
            policy = resilience if isinstance(
                resilience, ResiliencePolicy) else None
            self.resilience = ResilienceSupervisor(
                self.root, policy=policy)
        self.scheduler = CampaignScheduler(
            store=self.store, state_dir=self.campaigns_dir,
            checkpoint_dir=os.path.join(self.root, "checkpoints"),
            jobs=jobs, timeout=timeout, shard_cells=shard_cells,
            queue_limit=queue_limit, metrics=metrics,
            resilience=self.resilience)
        for directory in (self.inbox_dir, self.campaigns_dir):
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _campaign_id_taken(self, campaign_id):
        """Whether any artifact already claims ``campaign_id``."""
        paths = (
            os.path.join(self.campaigns_dir, f"{campaign_id}.json"),
            os.path.join(self.inbox_dir, f"{campaign_id}.json"),
            os.path.join(self.inbox_dir,
                         f"{campaign_id}.json.accepted"),
            os.path.join(self.inbox_dir,
                         f"{campaign_id}.json.rejected"))
        return any(os.path.exists(path) for path in paths)

    def new_campaign_id(self, spec):
        """A fresh campaign id: spec name/digest plus a run ordinal.

        Resubmitting an identical spec gets a *new* campaign (that's
        the point — it completes from cache), so the ordinal suffix
        disambiguates repeats.  This is a check, not a reservation —
        concurrent clients racing on the same spec must go through
        :meth:`reserve_campaign_id`, which claims the id atomically.
        """
        stem = f"{spec.name or spec.kind}-{spec.digest()}"
        ordinal = 1
        while True:
            campaign_id = f"{stem}-{ordinal}"
            if not self._campaign_id_taken(campaign_id):
                return campaign_id
            ordinal += 1

    def reserve_campaign_id(self, spec, campaign_id=None):
        """Atomically claim an inbox file for ``spec``; returns the id.

        The spec is written to a private temp file and hard-linked to
        its inbox name — ``link(2)`` fails instead of overwriting when
        the name already exists, so two clients racing on the same
        spec digest end up with distinct ordinals and neither
        submission is silently lost.  With an explicit ``campaign_id``
        an existing submission under that id raises
        ``FileExistsError`` rather than clobbering it.
        """
        os.makedirs(self.inbox_dir, exist_ok=True)
        tmp = os.path.join(
            self.inbox_dir,
            f".reserve-{os.getpid()}-{next(_RESERVE_SEQ)}.tmp")
        spec.save(tmp)
        try:
            if campaign_id is not None:
                os.link(tmp, os.path.join(self.inbox_dir,
                                          f"{campaign_id}.json"))
                return campaign_id
            stem = f"{spec.name or spec.kind}-{spec.digest()}"
            ordinal = 1
            while True:
                campaign_id = f"{stem}-{ordinal}"
                ordinal += 1
                if self._campaign_id_taken(campaign_id):
                    continue
                try:
                    os.link(tmp, os.path.join(
                        self.inbox_dir, f"{campaign_id}.json"))
                    return campaign_id
                except FileExistsError:
                    continue  # another client won this ordinal
        finally:
            os.unlink(tmp)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, spec, campaign_id=None):
        """Validate and enqueue one campaign; returns its job."""
        campaign_id = campaign_id or self.new_campaign_id(spec)
        job = self.scheduler.make_job(campaign_id, spec)
        await self.scheduler.submit(job)
        return job

    def run_spec(self, spec, campaign_id=None):
        """Submit + drain synchronously; returns the finished job.

        The inline convenience path (tests, ``submit --run``): no
        separate server process, same scheduler/store dataflow.
        """
        async def _run():
            job = await self.submit(spec, campaign_id=campaign_id)
            await self.scheduler.run_pending()
            return job
        return asyncio.run(_run())

    async def submit_stream(self, spec, count, time_scale=1.0):
        """Submit ``count`` copies of ``spec`` under its arrival model.

        The spec's ``arrival`` field picks the process (default
        closed-loop with zero think time).  ``time_scale`` multiplies
        every inter-arrival gap — ``0.0`` collapses the model to
        as-fast-as-possible, which is what deterministic tests want.
        Closed-loop arrivals additionally gate each submission on the
        previous campaign's completion.  Returns the finished jobs.
        """
        arrival = make_arrival(spec.arrival
                               or {"process": "closed"})
        jobs, gaps = [], arrival.gaps()
        for index in range(count):
            gap = next(gaps) * time_scale
            if gap > 0:
                await asyncio.sleep(gap)
            job = await self.submit(spec)
            if arrival.closed:
                await self.scheduler.run_pending()
            jobs.append(job)
        await self.scheduler.run_pending()
        return jobs

    # ------------------------------------------------------------------
    # inbox protocol
    # ------------------------------------------------------------------
    async def poll_inbox(self):
        """Accept every spec file waiting in the inbox.

        A spec file ``<id>.json`` becomes campaign ``<id>``; accepted
        files are renamed to ``.accepted`` so a crashed service never
        double-enqueues, and malformed specs are renamed to
        ``.rejected`` with the campaign left unscheduled.
        """
        accepted = []
        for fname in sorted(os.listdir(self.inbox_dir)):
            if not fname.endswith(".json"):
                continue
            path = os.path.join(self.inbox_dir, fname)
            campaign_id = fname[:-len(".json")]
            try:
                spec = CampaignSpec.load(path)
            except Exception:  # noqa: BLE001 - tenant input boundary
                os.replace(path, path + ".rejected")
                continue
            os.replace(path, path + ".accepted")
            accepted.append(await self.submit(spec,
                                              campaign_id=campaign_id))
        return accepted

    def incomplete_campaigns(self):
        """Ids of campaigns whose state never reached a terminal
        status (service died mid-run)."""
        out = []
        for fname in sorted(os.listdir(self.campaigns_dir)):
            if not fname.endswith(".json"):
                continue
            state = self.status(fname[:-len(".json")])
            if state and state.get("status") in (PENDING, RUNNING,
                                                 RETRYING):
                out.append(state["id"])
        return out

    async def resume_incomplete(self):
        """Re-enqueue every interrupted campaign (restart recovery).

        Finished cells restore from the campaign state and the grid
        checkpoint; only unfinished cells re-execute.
        """
        jobs = []
        for campaign_id in self.incomplete_campaigns():
            state = self.status(campaign_id)
            spec = CampaignSpec.from_dict(state["spec"])
            job = self.scheduler.make_job(campaign_id, spec)
            await self.scheduler.submit(job)
            jobs.append(job)
        return jobs

    async def serve(self, once=False, poll=0.2, drain=False):
        """The service loop: resume, poll inbox, drain, repeat.

        ``once=True`` processes everything currently waiting and
        returns the finished jobs (CI smoke / tests).  ``drain=True``
        is graceful shutdown: no new inbox work is accepted —
        interrupted campaigns resume, parked retries run until every
        campaign is terminal, and the supervision record is flushed
        before returning.  Otherwise loop forever, sleeping ``poll``
        seconds between empty polls.
        """
        done = []
        await self.resume_incomplete()
        if drain:
            done.extend(await self.scheduler.run_pending())
            if self.resilience is not None:
                self.resilience.save_state()
            return done
        while True:
            await self.poll_inbox()
            done.extend(await self.scheduler.run_pending())
            if once:
                return done
            await asyncio.sleep(poll)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def status(self, campaign_id):
        """The campaign's state document, or None when unknown."""
        import json
        path = os.path.join(self.campaigns_dir, f"{campaign_id}.json")
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) \
                or data.get("format") != CAMPAIGN_FORMAT:
            return None
        return data

    def results(self, campaign_id):
        """Per-cell results for a campaign, in spec cell order.

        Each item carries the cell kwargs, its digest, the harness
        classification from the campaign state, and the cached result
        payload (None for cells that never completed).
        """
        state = self.status(campaign_id)
        if state is None:
            return None
        spec = CampaignSpec.from_dict(state["spec"])
        out, seen = [], set()
        for cell in spec.cells():
            digest = cell_digest(cell)
            if digest in seen:
                continue
            seen.add(digest)
            entry = state["cells"].get(digest, {})
            out.append({"cell": cell, "digest": digest,
                        "status": entry.get("status", "missing"),
                        "source": entry.get("source"),
                        "retried": entry.get("retried", False),
                        "error": entry.get("error", ""),
                        "result": self.store.get(digest)})
        return out

    def metrics_snapshot(self):
        """The scheduler's metrics registry snapshot (JSON-ready)."""
        return self.scheduler.metrics.snapshot()


#: Terminal campaign statuses (query helpers/tests import these).
TERMINAL = (COMPLETED, FAILED)
