"""Fault plans: the versioned, replayable record of one chaos run.

A :class:`FaultPlan` mirrors :class:`~repro.schedule.trace.ScheduleTrace`
one layer down: where a schedule trace pins *which thread ran when*, a
fault plan pins *which substrate operations failed*.  It carries the
run's coordinates (workload, system, scale, threads, variant, optional
schedule-policy spec for fault×schedule cross-fuzzing), the injection
parameters (seed, per-point rates and limits), and — after a run — the
injection log and the failure it provoked.  Plans serialize to JSON
artifacts under ``results/chaos/`` with a versioned format tag so drift
is detected at load time rather than as garbage replays.
"""

import json
import os
from dataclasses import asdict, dataclass, field

from repro.errors import FaultPlanError
from repro.eval.report import results_dir
from repro.faults.inject import FAULT_POINTS

#: Versioned artifact format tag.
FAULT_PLAN_FORMAT = "repro-fault-plan/1"

#: Per-point firing probabilities used by :func:`default_rates`; chosen
#: so a typical repair-suite run exercises every recovery path without
#: drowning the run in failures.
_BASE_RATES = {
    "perf.record_drop": 0.02,
    "perf.buffer_overflow": 0.10,
    "ptrace.attach_timeout": 0.25,
    "ptrace.fork_fail": 0.15,
    "shm.exhausted": 0.10,
    "ptsb.commit_conflict": 0.05,
    "ptsb.delayed_flush": 0.05,
}


def default_rates(intensity=1.0):
    """The stock rate table scaled by ``intensity`` (capped at 0.9)."""
    return {point: min(0.9, rate * intensity)
            for point, rate in _BASE_RATES.items()}


@dataclass
class FaultPlan:
    """One seeded failure sequence plus the run it was applied to."""

    workload: str
    system: str = "tmi-protect"
    seed: int = 0
    scale: float = 1.0
    nthreads: object = None
    variant: object = None
    #: Optional schedule-policy spec dict (fault×schedule cross-fuzz).
    schedule: object = None
    rates: dict = field(default_factory=dict)
    limits: dict = field(default_factory=dict)
    #: Filled after a run: the fired-injection log and counts by point.
    injections: list = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    #: Failure record: {"kind": ..., "detail": ...} (empty = clean run).
    failure: dict = field(default_factory=dict)

    def __post_init__(self):
        unknown = sorted(set(list(self.rates) + list(self.limits))
                         - set(FAULT_POINTS))
        if unknown:
            raise FaultPlanError(
                f"plan names unknown fault point(s) {unknown}")

    # ------------------------------------------------------------------
    def spec(self):
        """Picklable injector spec for ``run_workload(faults=...)``."""
        return {"seed": self.seed, "rates": dict(self.rates),
                "limits": dict(self.limits)}

    def to_dict(self):
        """The artifact payload, format tag included."""
        data = {"format": FAULT_PLAN_FORMAT}
        data.update(asdict(self))
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a plan from :meth:`to_dict` output; the format tag
        must match (drift fails loudly, not as a garbage replay)."""
        tag = data.get("format")
        if tag != FAULT_PLAN_FORMAT:
            raise FaultPlanError(
                f"unsupported fault plan format {tag!r} "
                f"(expected {FAULT_PLAN_FORMAT})")
        fields = {k: v for k, v in data.items() if k != "format"}
        return cls(**fields)

    # ------------------------------------------------------------------
    def save(self, path=None, out_dir=None):
        """Write the artifact; returns its path.

        Default location: ``results/chaos/<workload>-<system>-
        f<seed>.json`` (``REPRO_RESULTS_DIR`` aware).
        """
        if path is None:
            directory = out_dir or os.path.join(results_dir(), "chaos")
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, self.default_name())
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def default_name(self):
        """Artifact filename: ``<workload>-<system>-f<seed>.json``."""
        return f"{self.workload}-{self.system}-f{self.seed}.json"

    @classmethod
    def load(cls, path):
        """Read one saved fault-plan artifact."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
