"""Deterministic, seeded fault injection.

A :class:`FaultInjector` answers one question at each named *fault
point* in the oskit/runtime substrate: does the operation fail this
time?  Every answer is drawn from a per-point ``random.Random`` stream
seeded as ``f"{seed}:{point}"``, so

- the decision sequence at one point is independent of activity at
  every other point (adding a new fault point cannot reshuffle the
  failures an existing plan produces), and
- the same seed + rates replays the identical failure sequence on any
  host (``PYTHONHASHSEED``-independent, process-count-independent).

The injector is **disarmed by default**: every call site guards with
``if faults is not None``, so fault-free runs execute exactly the code
they executed before this layer existed — the cycle-exactness goldens
pin that bit-identically.
"""

from random import Random

from repro.errors import FaultPlanError

#: Every fault point a plan may inject, with the substrate operation it
#: fails.  Rates/limits naming anything else is a :class:`FaultPlanError`
#: at injector construction, not a silent no-op.
FAULT_POINTS = {
    "perf.record_drop":
        "a PEBS record is overwritten before userspace reads it",
    "perf.buffer_overflow":
        "a full per-thread PEBS buffer is lost at interrupt time",
    "ptrace.attach_timeout":
        "PM's ptrace attach round times out and must be retried",
    "ptrace.fork_fail":
        "fork() fails for one thread mid thread-to-process conversion",
    "shm.exhausted":
        "shm_open cannot create a region (EMFILE/ENOSPC analog)",
    "ptsb.commit_conflict":
        "a PTSB page commit races a concurrent writer and re-diffs",
    "ptsb.delayed_flush":
        "a consistency flush is delayed by a stalled commit path",
}


class FaultInjector:
    """Draws injection decisions for one run from per-point streams.

    ``rates`` maps fault-point names to firing probabilities in
    ``[0, 1]``; points absent from ``rates`` never fire.  ``limits``
    optionally caps the number of firings per point (the stream still
    advances past the cap, so a limited and an unlimited plan with the
    same seed agree on every decision up to the cap).
    """

    def __init__(self, seed=0, rates=None, limits=None):
        self.seed = seed
        self.rates = dict(rates or {})
        self.limits = dict(limits or {})
        unknown = [p for p in list(self.rates) + list(self.limits)
                   if p not in FAULT_POINTS]
        if unknown:
            raise FaultPlanError(
                f"unknown fault point(s) {sorted(set(unknown))}; "
                f"known: {sorted(FAULT_POINTS)}")
        self._streams = {
            point: Random(f"{seed}:{point}")
            for point in self.rates if self.rates[point] > 0}
        self.counts = {point: 0 for point in FAULT_POINTS}
        self.injections = []        # fired decisions, in firing order
        self._emitted = 0           # cursor for pending_events()

    # ------------------------------------------------------------------
    def fire(self, point, **context):
        """Whether the operation at ``point`` fails this time.

        ``context`` (cycle, tid, page...) is recorded with the decision
        when it fires; it never influences the draw.
        """
        stream = self._streams.get(point)
        if stream is None:
            return False
        if stream.random() >= self.rates[point]:
            return False
        limit = self.limits.get(point)
        if limit is not None and self.counts[point] >= limit:
            return False
        self.counts[point] += 1
        entry = {"seq": len(self.injections), "point": point}
        entry.update(context)
        self.injections.append(entry)
        return True

    # ------------------------------------------------------------------
    def pending_events(self):
        """Injections fired since the last call (observer flushing)."""
        new = self.injections[self._emitted:]
        self._emitted = len(self.injections)
        return new

    def fired_counts(self):
        """Nonzero firing counts by point (deterministic ordering)."""
        return {point: n for point, n in sorted(self.counts.items())
                if n}

    def log(self):
        """The full injection log as plain dicts (artifact payload)."""
        return [dict(entry) for entry in self.injections]
