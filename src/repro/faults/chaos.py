"""Chaos runs: seeded fault plans over the repair suite.

:func:`chaos_repair_suite` runs many :class:`~repro.faults.FaultPlan`
seeds across the Figure 9 repair workloads on the hardened grid and
holds every cell to the robustness invariant: *any* fault sequence must
leave the workload's final state equal to the fault-free pthreads
baseline (the metamorphic oracle via ``Workload.final_state``).  Each
cell's verdict is

- ``ok`` — completed, state matches, the degradation machinery never
  had to engage;
- ``degraded`` — completed and state matches, but the runtime took
  visible damage (failed repair episodes, ladder transitions,
  blacklisted pages) and recovered;
- ``fail`` — state diverged, the run died, or the harness cell itself
  failed/timed out.

Every plan is written back as a ``repro-fault-plan/1`` artifact (with
its injection log and verdict) under ``results/chaos/``, and failing
plans are immediately re-run to confirm they replay identically —
a chaos finding that does not reproduce is a determinism bug, which is
its own finding.

:func:`chaos_smoke` is the CI entry point: a small bounded plan set
with a positive control (injections must actually fire) and a replay
identity check.
"""

import time
from dataclasses import dataclass, field

from repro.eval.parallel import CELL_OK, run_cells_recorded
from repro.eval.runner import OK, run_workload
from repro.faults.plan import FaultPlan, default_rates
from repro.workloads import repair_suite_names

#: Cell verdicts, best to worst.
VERDICT_OK = "ok"
VERDICT_DEGRADED = "degraded"
VERDICT_FAIL = "fail"

#: Runtime-report keys whose nonzero value marks a cell ``degraded``.
_DAMAGE_KEYS = ("degradations", "repair_episode_failures",
                "pages_blacklisted")


def default_plans(seeds=16, workloads=None, system="tmi-protect",
                  scale=0.1, nthreads=None, schedule=None):
    """Build the stock chaos plan set.

    Seeds cycle over the repair-suite workloads with rate intensities
    stepping through 0.5x/1x/1.5x/2x, so sixteen plans exercise every
    workload family and every fault point at several pressures.
    ``seeds`` is an int (``range(seeds)``) or an explicit iterable.
    """
    workloads = list(workloads or repair_suite_names())
    seeds = range(seeds) if isinstance(seeds, int) else seeds
    plans = []
    for seed in seeds:
        plans.append(FaultPlan(
            workload=workloads[seed % len(workloads)], system=system,
            seed=seed, scale=scale, nthreads=nthreads,
            schedule=schedule,
            rates=default_rates(0.5 + 0.5 * (seed % 4))))
    return plans


def _cell_for(plan):
    """The ``run_workload`` keyword dict one plan describes."""
    return dict(name=plan.workload, system=plan.system,
                scale=plan.scale, nthreads=plan.nthreads,
                variant=plan.variant, schedule=plan.schedule,
                collect_state=True, faults=plan.spec())


@dataclass
class ChaosCell:
    """One plan's run, classified against the pthreads baseline."""

    plan: FaultPlan
    verdict: str
    detail: str = ""
    #: Harness-level CellRecord for the run (None for baseline gaps).
    record: object = None
    #: Whether the final state matched the baseline (None = no run).
    state_matches: object = None
    #: Injections that actually fired, by point.
    counts: dict = field(default_factory=dict)
    #: Whether a re-run reproduced the identical outcome (failing
    #: cells only; None = not checked).
    replay_identical: object = None
    #: Saved fault-plan artifact path.
    artifact: object = None


@dataclass
class ChaosReport:
    """Everything one :func:`chaos_repair_suite` call learned."""

    cells: list
    elapsed: float

    @property
    def ok(self):
        """True when no cell failed (``ok``/``degraded`` only)."""
        return all(c.verdict != VERDICT_FAIL for c in self.cells)

    def verdict_counts(self):
        """{verdict: count} over all cells (deterministic ordering)."""
        totals = {VERDICT_OK: 0, VERDICT_DEGRADED: 0, VERDICT_FAIL: 0}
        for cell in self.cells:
            totals[cell.verdict] += 1
        return totals

    def summary_lines(self):
        """Human-readable per-cell verdicts plus the totals line."""
        totals = self.verdict_counts()
        lines = [f"chaos: {len(self.cells)} plan(s) in "
                 f"{self.elapsed:.1f}s -> "
                 + ", ".join(f"{k}={v}" for k, v in totals.items())]
        for cell in self.cells:
            plan = cell.plan
            fired = sum(cell.counts.values())
            line = (f"  seed {plan.seed} {plan.workload}/{plan.system}:"
                    f" {cell.verdict} ({fired} injection(s))")
            if cell.replay_identical is not None:
                line += (" [replays identically]"
                         if cell.replay_identical
                         else " [REPLAY DIVERGED]")
            lines.append(line)
            if cell.detail:
                lines.append(f"    {cell.detail}")
            if cell.artifact:
                lines.append(f"    artifact: {cell.artifact}")
        return lines


def _classify(record, baseline_state):
    """(verdict, detail, state_matches) for one harness cell record."""
    if record.status != CELL_OK:
        return (VERDICT_FAIL,
                f"harness {record.status}: {record.error}", None)
    outcome = record.outcome
    if outcome.status != OK:
        return (VERDICT_FAIL,
                f"run ended {outcome.status}: {outcome.detail}", None)
    matches = (baseline_state is None
               or outcome.final_state == baseline_state)
    if not matches:
        diverged = sorted(
            key for key in
            set(baseline_state) | set(outcome.final_state or {})
            if baseline_state.get(key)
            != (outcome.final_state or {}).get(key))
        return (VERDICT_FAIL, "final state diverged from pthreads "
                "baseline: " + ", ".join(diverged), False)
    report = (outcome.result.runtime_report
              if outcome.result is not None else None) or {}
    damage = {key: report[key] for key in _DAMAGE_KEYS
              if report.get(key)}
    if damage or report.get("ladder_level") not in (None, "protect"):
        level = report.get("ladder_level")
        parts = [f"{k}={v}" for k, v in sorted(damage.items())]
        if level not in (None, "protect"):
            parts.append(f"ladder_level={level}")
        return (VERDICT_DEGRADED,
                "recovered with " + ", ".join(parts), True)
    return VERDICT_OK, "", True


def _outcome_fingerprint(outcome):
    """What a replay must reproduce exactly: simulated cycles, the
    injection record, and the final-state digest."""
    return (outcome.status,
            outcome.result.cycles if outcome.result else None,
            outcome.faults, outcome.final_state)


def chaos_repair_suite(seeds=16, workloads=None, scale=0.1,
                       nthreads=None, jobs=None, out_dir=None,
                       timeout=None, replay_failures=True,
                       baseline_system="pthreads"):
    """Run a seeded chaos campaign; returns a :class:`ChaosReport`.

    ``seeds`` is an int / iterable for :func:`default_plans`, or an
    explicit list of :class:`FaultPlan` objects.  Baseline digests run
    fault-free under ``baseline_system`` once per distinct workload
    coordinate; chaos cells fan out on the hardened grid
    (:func:`~repro.eval.parallel.run_cells_recorded`) with ``timeout``
    seconds of wall clock per cell.  With ``replay_failures`` every
    failing plan is re-run once and checked for an identical outcome.
    """
    start = time.monotonic()
    if seeds and not isinstance(seeds, int) \
            and isinstance(next(iter(seeds), None), FaultPlan):
        plans = list(seeds)
    else:
        plans = default_plans(seeds, workloads=workloads, scale=scale,
                              nthreads=nthreads)

    coords = []
    for plan in plans:
        coord = (plan.workload, plan.scale, plan.nthreads, plan.variant)
        if coord not in coords:
            coords.append(coord)
    baseline_records = run_cells_recorded(
        [dict(name=w, system=baseline_system, scale=s, nthreads=n,
              variant=v, collect_state=True)
         for w, s, n, v in coords], jobs=jobs, timeout=timeout)
    baselines = {}
    for coord, record in zip(coords, baseline_records):
        if record.status == CELL_OK and record.outcome.ok:
            baselines[coord] = record.outcome.final_state
        else:
            baselines[coord] = None

    records = run_cells_recorded([_cell_for(plan) for plan in plans],
                                 jobs=jobs, timeout=timeout)
    cells = []
    for plan, record in zip(plans, records):
        coord = (plan.workload, plan.scale, plan.nthreads, plan.variant)
        baseline_state = baselines.get(coord)
        verdict, detail, matches = _classify(record, baseline_state)
        if baseline_state is None:
            verdict = VERDICT_FAIL
            detail = (f"no fault-free {baseline_system} baseline for "
                      f"{plan.workload} (cannot check the metamorphic "
                      "oracle); " + detail)
        counts = {}
        outcome = record.outcome
        if outcome is not None and outcome.faults is not None:
            counts = dict(outcome.faults["counts"])
            plan.injections = list(outcome.faults["log"])
            plan.counts = counts
        plan.failure = ({} if verdict != VERDICT_FAIL
                        else {"kind": verdict, "detail": detail})
        cell = ChaosCell(plan=plan, verdict=verdict, detail=detail,
                         record=record, state_matches=matches,
                         counts=counts)
        if replay_failures and verdict == VERDICT_FAIL \
                and record.status == CELL_OK:
            replay = run_workload(**_cell_for(plan))
            cell.replay_identical = (
                _outcome_fingerprint(replay)
                == _outcome_fingerprint(outcome))
        cell.artifact = plan.save(out_dir=out_dir)
        cells.append(cell)
    return ChaosReport(cells=cells,
                       elapsed=time.monotonic() - start)


def replay_plan(plan):
    """Re-execute a saved :class:`FaultPlan` (or artifact path).

    Returns ``(matches, detail, outcome)``: the re-run must fire the
    recorded injection counts exactly and reach the recorded verdict
    (clean plans must stay clean, failing plans must fail again).
    """
    import os
    if isinstance(plan, (str, os.PathLike)):
        plan = FaultPlan.load(plan)
    outcome = run_workload(**_cell_for(plan))
    counts = dict((outcome.faults or {}).get("counts", {}))
    recorded = {point: n for point, n in (plan.counts or {}).items()
                if n}
    mismatches = []
    if plan.counts and counts != recorded:
        mismatches.append(f"injection counts {counts} != recorded "
                          f"{recorded}")
    failed = outcome.status != OK
    if plan.failure and not failed:
        mismatches.append(
            f"recorded failure {plan.failure.get('kind')!r} did not "
            "recur")
    detail = ("; ".join(mismatches) if mismatches
              else f"reproduced ({sum(counts.values())} injection(s), "
                   f"status {outcome.status})")
    return not mismatches, detail, outcome


# ----------------------------------------------------------------------
# CI chaos smoke
# ----------------------------------------------------------------------

@dataclass
class ChaosSmokeResult:
    """Pass/fail checks from one :func:`chaos_smoke` run."""

    checks: list                      # (name, passed, detail)
    report: ChaosReport

    @property
    def ok(self):
        """True when every check passed."""
        return all(passed for _, passed, _ in self.checks)

    def summary_lines(self):
        """Check verdicts, then the chaos cells behind them."""
        lines = []
        for name, passed, detail in self.checks:
            mark = "PASS" if passed else "FAIL"
            lines.append(f"[{mark}] {name}: {detail}")
        lines.extend(self.report.summary_lines())
        return lines


def chaos_smoke(seeds=6, scale=0.05, jobs=None, out_dir=None,
                timeout=None):
    """Bounded CI chaos smoke: the fault machinery must *work*, fast.

    - every cell must come back ``ok`` or cleanly ``degraded`` with
      its final state equal to the pthreads baseline;
    - positive control: the plans must actually inject (a chaos run
      where nothing fires tests nothing);
    - the busiest plan must replay identically when re-run.
    """
    plans = default_plans(seeds, workloads=("histogram", "histogramfs"),
                          scale=scale)
    report = chaos_repair_suite(plans, jobs=jobs, out_dir=out_dir,
                                timeout=timeout)
    checks = []
    totals = report.verdict_counts()
    checks.append((
        "chaos cells survive (ok or cleanly degraded)", report.ok,
        ", ".join(f"{k}={v}" for k, v in totals.items())))
    fired = sum(sum(c.counts.values()) for c in report.cells)
    checks.append((
        "fault plans actually inject", fired > 0,
        f"{fired} injection(s) across {len(report.cells)} cell(s)"))
    busiest = max(report.cells, default=None,
                  key=lambda c: sum(c.counts.values()))
    if busiest is not None and sum(busiest.counts.values()):
        matches, detail, _ = replay_plan(busiest.plan)
        checks.append(("busiest plan replays identically", matches,
                       f"seed {busiest.plan.seed}: {detail}"))
    else:
        checks.append(("busiest plan replays identically", False,
                       "no plan fired any injection"))
    return ChaosSmokeResult(checks=checks, report=report)
