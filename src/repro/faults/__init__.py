"""Deterministic fault injection and chaos harness (robustness layer).

``FaultInjector`` draws seeded per-point failure decisions at named
oskit/runtime fault points; ``FaultPlan`` is the versioned
``repro-fault-plan/1`` artifact that replays a failure sequence
exactly; ``chaos_repair_suite``/``chaos_smoke`` run plan campaigns over
the repair suite against the pthreads final-state oracle.  See
``docs/ROBUSTNESS.md``.
"""

from repro.faults.chaos import (ChaosCell, ChaosReport,
                                ChaosSmokeResult, chaos_repair_suite,
                                chaos_smoke, default_plans, replay_plan)
from repro.faults.harness import (HARNESS_FAULTS_ENV,
                                  HARNESS_FAULTS_FORMAT,
                                  HarnessFaultPlan, PoisonError)
from repro.faults.inject import FAULT_POINTS, FaultInjector
from repro.faults.plan import FAULT_PLAN_FORMAT, FaultPlan, default_rates

__all__ = [
    "FAULT_PLAN_FORMAT", "FAULT_POINTS", "HARNESS_FAULTS_ENV",
    "HARNESS_FAULTS_FORMAT", "ChaosCell", "ChaosReport",
    "ChaosSmokeResult", "FaultInjector", "FaultPlan",
    "HarnessFaultPlan", "PoisonError", "chaos_repair_suite",
    "chaos_smoke", "default_plans", "default_rates", "replay_plan",
]
