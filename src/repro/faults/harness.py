"""Harness-level fault seam: deterministic poison cells, worker kills.

The PR 5 fault injector perturbs the *simulated* substrate (perf
buffers, ptrace, shm) inside a run; this seam perturbs the *harness*
around the run, which is what the service-resilience chaos gate needs:
cells that fail every attempt (poison — quarantine fodder) and cells
that kill their worker process outright (a real
``BrokenProcessPool``).

A :class:`HarnessFaultPlan` is a versioned ``repro-harness-faults/1``
JSON artifact keyed by cell digest.  Arming is via the
``REPRO_HARNESS_FAULTS`` environment variable naming the plan file —
the one channel that reaches pool worker processes — and
:func:`repro.eval.parallel._run_cell` applies the plan before the
workload runs:

- ``poison`` digests raise :class:`PoisonError` in every process, so
  the cell fails identically under pooled and serial execution;
- ``kill`` digests call ``os._exit`` *only in a worker process* (the
  plan records the arming process's pid), so pooled execution loses a
  worker — and the hardened grid's serial re-run in the parent then
  succeeds — while serial execution never fires the kill.  Either
  way the cell's final result is its one deterministic value.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import FaultPlanError

#: Environment variable naming the armed plan file (reaches workers).
HARNESS_FAULTS_ENV = "REPRO_HARNESS_FAULTS"

#: Versioned harness-fault-plan format tag.
HARNESS_FAULTS_FORMAT = "repro-harness-faults/1"

#: Exit code a killed worker dies with (distinctive in pool forensics).
KILL_EXIT_CODE = 13


class PoisonError(RuntimeError):
    """The deterministic failure an armed poison cell raises."""


@dataclass
class HarnessFaultPlan:
    """Digest-keyed harness faults: poison raises, worker kills."""

    #: digest -> failure message raised as :class:`PoisonError`.
    poison: Dict[str, str] = field(default_factory=dict)
    #: digests whose worker process exits hard (pool-child only).
    kill: Tuple[str, ...] = ()
    #: Pid of the arming (parent) process; kills never fire in it.
    parent_pid: int = 0

    def __post_init__(self) -> None:
        self.kill = tuple(self.kill)

    def apply(self, cell: Dict[str, Any]) -> None:
        """Fire the plan's fault for ``cell``, if any."""
        # lazy: repro.service.store transitively imports the harness's
        # caller (repro.eval.parallel); binding at call time keeps the
        # import graph acyclic
        from repro.service.store import cell_digest
        digest = cell_digest(cell)
        if digest in self.kill and os.getpid() != self.parent_pid:
            os._exit(KILL_EXIT_CODE)
        message = self.poison.get(digest)
        if message is not None:
            raise PoisonError(message)

    def to_dict(self) -> Dict[str, Any]:
        """The artifact payload, format tag included."""
        return {"format": HARNESS_FAULTS_FORMAT,
                "poison": dict(self.poison),
                "kill": list(self.kill),
                "parent_pid": self.parent_pid}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HarnessFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (format-guarded)."""
        if not isinstance(data, dict) \
                or data.get("format") != HARNESS_FAULTS_FORMAT:
            tag = data.get("format") if isinstance(data, dict) else None
            raise FaultPlanError(
                f"unsupported harness fault plan format {tag!r} "
                f"(expected {HARNESS_FAULTS_FORMAT})")
        return cls(poison=dict(data.get("poison", {})),
                   kill=tuple(data.get("kill", ())),
                   parent_pid=int(data.get("parent_pid", 0)))

    def save(self, path: str) -> str:
        """Write the plan, stamping this process as the kill-exempt
        parent; returns ``path``."""
        self.parent_pid = os.getpid()
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "HarnessFaultPlan":
        """Read one saved plan (typed errors on malformed input)."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(
                f"harness fault plan {path}: unreadable ({exc})") \
                from exc
        return cls.from_dict(data)


#: Per-process plan memo: path -> loaded plan (workers load once).
_PLANS: Dict[str, HarnessFaultPlan] = {}


def active_plan() -> Optional[HarnessFaultPlan]:
    """The armed plan per ``REPRO_HARNESS_FAULTS``, or None.

    Misconfiguration (an armed path that does not parse) raises
    :class:`~repro.errors.FaultPlanError` loudly rather than silently
    running chaos-free.
    """
    path = os.environ.get(HARNESS_FAULTS_ENV, "").strip()
    if not path:
        return None
    plan = _PLANS.get(path)
    if plan is None:
        plan = _PLANS[path] = HarnessFaultPlan.load(path)
    return plan
