"""Memory allocators: Lockless-style baseline and TMI's shared-region
configuration."""

from repro.alloc.lockless import (CHUNK_BYTES, LocklessAllocator,
                                  RegionBump, SIZE_CLASSES)

__all__ = ["CHUNK_BYTES", "LocklessAllocator", "RegionBump",
           "SIZE_CLASSES"]
