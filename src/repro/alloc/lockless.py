"""Size-class memory allocator in the style of the Lockless Allocator.

The paper's baseline runs all benchmarks with the Lockless Allocator
(16% faster than glibc's on their suite); TMI replaces the allocator's
requests for system memory with memory from its process-shared region
(``tmi-alloc`` in Figure 7).  Placement policy matters for the repair
experiments:

- the baseline allocator returns 16-byte alignment for large blocks, so
  a large array is generally *not* cache-line aligned — this is the
  "mis-aligned allocation" the paper forces to expose false sharing in
  linear-regression and lu-ncb;
- TMI's shared-region allocator rounds large blocks to 64 bytes, which
  is why lu-ncb's false sharing is repaired by the allocator change
  alone (section 4.3).
"""

from repro.errors import AllocationError
from repro.sim.costs import LINE_SIZE

#: Small-object size classes (bytes).
SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Arena chunk carved from the region per (thread, class) refill.
CHUNK_BYTES = 64 * 1024


class RegionBump:
    """Bump-pointer suballocator over one virtual region."""

    def __init__(self, base, size, name=""):
        self.base = base
        self.size = size
        self.name = name
        self._next = base

    def take(self, nbytes, align=LINE_SIZE):
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + nbytes > self.base + self.size:
            raise AllocationError(
                f"region {self.name} exhausted "
                f"({addr + nbytes - self.base:#x} > {self.size:#x})")
        self._next = addr + nbytes
        return addr

    @property
    def used(self):
        return self._next - self.base


class LocklessAllocator:
    """Per-thread-arena size-class allocator.

    ``global_arena=True`` gives the glibc-style configuration: one
    shared arena protected by a (modelled) global lock, with the extra
    per-op cost and cross-thread interleaving that implies.

    ``line_align_large`` / ``large_offset`` control large-object
    placement (see module docstring).
    """

    def __init__(self, region, costs, name="lockless",
                 global_arena=False, line_align_large=False,
                 large_offset=16):
        self.region = region
        self.costs = costs
        self.name = name
        self.global_arena = global_arena
        self.line_align_large = line_align_large
        self.large_offset = 0 if line_align_large else large_offset
        self._arenas = {}          # arena key -> {class -> [free addrs]}
        self._bumps = {}           # arena key -> {class -> (next, end)}
        self._live = {}            # addr -> (size, size_class or None)
        self.allocated_bytes = 0   # live bytes
        self.peak_bytes = 0
        self.alloc_calls = 0
        self.free_calls = 0

    # ------------------------------------------------------------------
    def malloc(self, tid, size, align=0):
        """Allocate; returns ``(addr, cycles)``."""
        if size <= 0:
            raise AllocationError(f"malloc({size})")
        self.alloc_calls += 1
        cost = self.costs.alloc_fast
        if self.global_arena:
            cost += self.costs.glibc_alloc_extra
        size_class = self._class_for(size, align)
        if size_class is None:
            addr, slow = self._large(size, align)
            cost += slow
            self._live[addr] = (size, None)
        else:
            addr, slow = self._small(tid, size_class, align)
            cost += slow
            self._live[addr] = (size, size_class)
        self.allocated_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        return addr, cost

    def free(self, tid, addr):
        """Free; returns cycles."""
        self.free_calls += 1
        entry = self._live.pop(addr, None)
        if entry is None:
            raise AllocationError(f"free of unallocated {addr:#x}")
        size, size_class = entry
        self.allocated_bytes -= size
        if size_class is not None:
            key = 0 if self.global_arena else tid
            arena = self._arenas.setdefault(key, {})
            arena.setdefault(size_class, []).append(addr)
        return self.costs.alloc_fast

    # ------------------------------------------------------------------
    def _class_for(self, size, align):
        if align > LINE_SIZE:
            return None
        for cls in SIZE_CLASSES:
            if size <= cls and (align == 0 or cls % align == 0):
                return cls
        return None

    def _small(self, tid, size_class, align):
        key = 0 if self.global_arena else tid
        arena = self._arenas.setdefault(key, {})
        free_list = arena.setdefault(size_class, [])
        if free_list:
            return free_list.pop(), 0
        bumps = self._bumps.setdefault(key, {})
        nxt, end = bumps.get(size_class, (0, 0))
        if nxt + size_class > end:
            base = self.region.take(CHUNK_BYTES, align=size_class)
            nxt, end = base, base + CHUNK_BYTES
            slow = self.costs.alloc_slow
        else:
            slow = 0
        bumps[size_class] = (nxt + size_class, end)
        return nxt, slow

    def _large(self, size, align):
        if self.line_align_large:
            align = max(align, LINE_SIZE)
            return self.region.take(size, align=align), self.costs.alloc_slow
        # 16-byte ABI alignment; typically NOT line aligned — large
        # blocks begin large_offset bytes into a fresh line span.
        align = max(align, 16)
        span = self.region.take(size + self.large_offset,
                                align=max(align, LINE_SIZE))
        addr = span + self.large_offset
        if align > 16 and addr % align:
            addr = (addr + align - 1) & ~(align - 1)
        return addr, self.costs.alloc_slow

    # ------------------------------------------------------------------
    @property
    def arena_bytes(self):
        """Region bytes consumed by arenas and large blocks."""
        return self.region.used
