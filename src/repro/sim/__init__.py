"""Simulated multicore substrate: physical memory, virtual address
spaces, MESI coherence with HITM events, and the cycle cost model."""

from repro.sim.addrspace import AddressSpace, Backing, Mapping, PRIVATE, SHARED
from repro.sim.cache import CoherenceDirectory
from repro.sim.costs import (CostModel, DEFAULT_COSTS, LINE_SIZE, PAGE_2M,
                             PAGE_4K)
from repro.sim.events import CommitEvent, FaultEvent, HitmEvent
from repro.sim.machine import Machine
from repro.sim.physmem import PhysicalMemory

__all__ = [
    "AddressSpace", "Backing", "Mapping", "PRIVATE", "SHARED",
    "CoherenceDirectory", "CostModel", "DEFAULT_COSTS", "LINE_SIZE",
    "PAGE_2M", "PAGE_4K", "CommitEvent", "FaultEvent", "HitmEvent",
    "Machine", "PhysicalMemory",
]
