"""Invalidation-based cache coherence with HITM event generation.

Models the single-writer multiple-reader (SWMR) invariant of a MESI
protocol over *physical* cache lines (paper section 2).  The model is a
central directory: for each line, which cores hold it and in what state.
Capacity and conflict misses are out of scope — false sharing costs come
from coherence serialization, which this captures — but lines can be
flushed explicitly (PTSB commits, frame recycling).

Whenever an access finds the line Modified in a *remote* private cache,
the directory reports a HITM, the hardware event TMI's detector samples.
"""

from repro.sim.costs import LINE_SIZE

#: MESI states (Invalid is represented by absence).
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED_ST = "S"


class AccessOutcome:
    """Cost and coherence effects of one memory access."""

    __slots__ = ("cost", "hitm_remotes", "lines")

    def __init__(self):
        self.cost = 0
        self.hitm_remotes = []     # remote core ids that held M
        self.lines = 0

    @property
    def hitm(self):
        """Whether any accessed line hit remote-Modified."""
        return bool(self.hitm_remotes)


class CoherenceDirectory:
    """Directory-based MESI over physical line addresses.

    The dominant steady state in every workload is a core re-hitting a
    line it already owns in M/E with no other core in the line's recent
    contention history.  ``_fast`` is an *owner micro-cache* for exactly
    that case: line -> (owner core, holders dict, owner's ``_recent``
    timestamp cell).  A hit charges ``load_hit``/``store_hit``, performs
    the E->M upgrade in place, and refreshes the owner's contention
    timestamps — byte-for-byte what the slow path would compute —
    without walking ``_lines``/``_recent``.  Entries are evicted
    whenever the line takes the slow path (any other core touching it,
    or a multi-line access) and on :meth:`flush_range`; they are only
    (re)installed from the slow path once the sole-owner condition is
    re-established.  ``ReferenceDirectory`` in ``cache_ref.py`` keeps
    the unoptimized model for differential testing.
    """

    def __init__(self, costs, n_cores, topology=None, home_of=None):
        self.costs = costs
        self.n_cores = n_cores
        self._lines = {}           # line pa -> {core: state}
        self._recent = {}          # line pa -> {core: [last_any, last_wr]}
        self._fast = {}            # line pa -> (core, holders, mine)
        self._pool = AccessOutcome()
        # cost constants, snapshotted (CostModel instances are never
        # mutated after construction)
        self._contend_window = costs.contend_window
        self._contend_penalty = costs.contend_penalty
        self._contend_max_cores = costs.contend_max_cores
        # NUMA: with one socket (or no topology) _multi stays False and
        # no access ever takes a socket-aware branch, keeping single-
        # socket runs byte-identical to the pre-NUMA machine.
        self._multi = topology is not None and topology.sockets > 1
        self._socket_of = (topology.socket_map() if self._multi
                           else (0,) * n_cores)
        self._home_of = home_of
        self.hitm_load_count = 0
        self.hitm_store_count = 0
        self.access_count = 0
        self.contended_accesses = 0
        self.hitm_cross_socket_count = 0
        self.qpi_hops = 0
        self.remote_mem_fills = 0

    # ------------------------------------------------------------------
    def access(self, core, pa, width, is_write, now=0):
        """Perform one access; returns an :class:`AccessOutcome`.

        Accesses that straddle a line boundary are split and each line is
        charged independently (as hardware does for split accesses).
        ``now`` (the accessing core's clock) drives the hot-line
        contention model.

        The returned outcome is pooled: it is only valid until the next
        ``access`` call.  Callers must consume (or copy) its fields
        before performing another access.
        """
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + width - 1) & ~(LINE_SIZE - 1)
        out = self._pool
        out.cost = 0
        out.lines = 1
        if out.hitm_remotes:
            out.hitm_remotes = []

        if first == last:
            entry = self._fast.get(first)
            if entry is not None and entry[0] == core:
                _owner, holders, mine = entry
                mine[0] = now
                if is_write:
                    mine[1] = now
                    if holders[core] is EXCLUSIVE:
                        holders[core] = MODIFIED
                    out.cost = self.costs.store_hit
                else:
                    out.cost = self.costs.load_hit
                self.access_count += 1
                return out

            # single-line slow path (the overwhelmingly common shape)
            self._fast.pop(first, None)
            self._access_line(core, first, is_write, out)
            out.cost += self._contention(core, first, is_write, now)
            self.access_count += 1

            holders = self._lines.get(first)
            if holders is not None and len(holders) == 1:
                state = holders.get(core)
                if state is MODIFIED or state is EXCLUSIVE:
                    recent = self._recent.get(first)
                    if recent is not None and len(recent) == 1 \
                            and core in recent:
                        self._fast[first] = (core, holders, recent[core])
            return out

        out.lines = 0
        line = first
        while line <= last:
            self._fast.pop(line, None)
            self._access_line(core, line, is_write, out)
            out.cost += self._contention(core, line, is_write, now)
            out.lines += 1
            line += LINE_SIZE
        self.access_count += 1
        return out

    def _contention(self, core, line, is_write, now):
        """Hot-line queueing tax (see CostModel.contend_penalty).

        A serialized per-op simulation understates how badly a line that
        several cores conflict on behaves: in hardware, every access to
        such a line queues behind in-flight ownership transfers.  We
        charge each access a penalty per remote core that touched the
        line within a recent window, whenever the conflict involves a
        writer (SWMR serialization); read-only sharing stays free.
        """
        recent = self._recent.get(line)
        if recent is None:
            self._recent[line] = {core: [now, now if is_write else None]}
            return 0
        horizon = now - self._contend_window
        conflicting = 0
        stale = None
        for other, (last_any, last_write) in recent.items():
            if other == core:
                continue
            if last_any < horizon:
                stale = other if stale is None else stale
                continue
            if is_write or (last_write is not None
                            and last_write >= horizon):
                conflicting += 1
        if stale is not None and len(recent) > 4:
            for other in [o for o, (la, _lw) in recent.items()
                          if la < horizon and o != core]:
                del recent[other]
        mine = recent.get(core)
        if mine is None:
            recent[core] = [now, now if is_write else None]
        else:
            mine[0] = now
            if is_write:
                mine[1] = now
        if not conflicting:
            return 0
        self.contended_accesses += 1
        return self._contend_penalty * min(conflicting,
                                           self._contend_max_cores)

    def _access_line(self, core, line, is_write, out):
        costs = self.costs
        holders = self._lines.get(line)
        if holders is None:
            holders = {}
            self._lines[line] = holders
        mine = holders.get(core)

        if not is_write:
            if mine is not None:
                out.cost += costs.load_hit
                return
            remote_m = _modified_holder(holders, core)
            if remote_m is not None:
                # HITM: remote Modified line supplies the data.
                holders[remote_m] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.hitm_load
                out.hitm_remotes.append(remote_m)
                self.hitm_load_count += 1
                if self._multi and \
                        self._socket_of[remote_m] != self._socket_of[core]:
                    out.cost += costs.qpi_hop
                    self.qpi_hops += 1
                    self.hitm_cross_socket_count += 1
            elif holders:
                if self._multi:
                    my_socket = self._socket_of[core]
                    if all(self._socket_of[o] != my_socket
                           for o in holders):
                        out.cost += costs.qpi_hop
                        self.qpi_hops += 1
                for other in holders:
                    if holders[other] == EXCLUSIVE:
                        holders[other] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.shared_fill
            else:
                holders[core] = EXCLUSIVE
                out.cost += costs.mem_fill
                if self._multi and \
                        self._home_of(line, core) != self._socket_of[core]:
                    out.cost += costs.numa_remote_fill
                    self.remote_mem_fills += 1
            return

        # write
        if mine == MODIFIED:
            out.cost += costs.store_hit
            return
        if mine == EXCLUSIVE:
            holders[core] = MODIFIED
            out.cost += costs.store_hit
            return
        remote_m = _modified_holder(holders, core)
        if remote_m is not None:
            # store that invalidates a remote Modified line (store HITM)
            del holders[remote_m]
            holders[core] = MODIFIED
            out.cost += costs.hitm_store
            out.hitm_remotes.append(remote_m)
            self.hitm_store_count += 1
            if self._multi and \
                    self._socket_of[remote_m] != self._socket_of[core]:
                out.cost += costs.qpi_hop
                self.qpi_hops += 1
                self.hitm_cross_socket_count += 1
            return
        others = [c for c in holders if c != core]
        if mine == SHARED_ST or others:
            if self._multi:
                my_socket = self._socket_of[core]
                if any(self._socket_of[o] != my_socket for o in others):
                    out.cost += costs.qpi_hop
                    self.qpi_hops += 1
            for other in others:
                del holders[other]
            holders[core] = MODIFIED
            out.cost += costs.upgrade if mine == SHARED_ST else costs.mem_fill
            return
        holders[core] = MODIFIED
        out.cost += costs.mem_fill
        if self._multi and \
                self._home_of(line, core) != self._socket_of[core]:
            out.cost += costs.numa_remote_fill
            self.remote_mem_fills += 1

    # ------------------------------------------------------------------
    def flush_range(self, pa, nbytes):
        """Invalidate every copy of every line in [pa, pa+nbytes).

        Also drops the contention history for the flushed lines: after a
        PTSB commit or frame recycle the physical line is gone, so new
        accesses must not keep paying ``contend_penalty`` against its
        pre-flush sharers.
        """
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + nbytes - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            self._lines.pop(line, None)
            self._recent.pop(line, None)
            self._fast.pop(line, None)
            line += LINE_SIZE

    def invalidate_fast_path(self):
        """Drop every owner micro-cache entry (state stays intact).

        Called around events that re-home threads across address spaces
        (T2P forks): the MESI state itself is keyed by physical line and
        survives, but the micro-cache's owner assumptions are cheap to
        rebuild and this keeps the invalidation story auditable.
        """
        self._fast.clear()

    def line_holders(self, pa):
        """{core: state} for the line containing ``pa`` (test hook)."""
        return dict(self._lines.get(pa & ~(LINE_SIZE - 1), {}))

    def check_swmr(self):
        """Assert the SWMR invariant over every tracked line.

        Returns the number of lines checked; raises AssertionError on a
        violation.  Used by property-based tests.
        """
        for line, holders in self._lines.items():
            writers = [c for c, s in holders.items() if s == MODIFIED]
            if len(writers) > 1:
                raise AssertionError(
                    f"line {line:#x}: multiple writers {writers}")
            if writers and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: writer {writers[0]} coexists with "
                    f"readers {sorted(holders)}")
            exclusive = [c for c, s in holders.items() if s == EXCLUSIVE]
            if exclusive and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: E holder with other sharers")
        return len(self._lines)


def _modified_holder(holders, exclude):
    for core, state in holders.items():
        if core != exclude and state == MODIFIED:
            return core
    return None
