"""Invalidation-based cache coherence with HITM event generation.

Models the single-writer multiple-reader (SWMR) invariant of a MESI
protocol over *physical* cache lines (paper section 2).  The model is a
central directory: for each line, which cores hold it and in what state.
Capacity and conflict misses are out of scope — false sharing costs come
from coherence serialization, which this captures — but lines can be
flushed explicitly (PTSB commits, frame recycling).

Whenever an access finds the line Modified in a *remote* private cache,
the directory reports a HITM, the hardware event TMI's detector samples.
"""

from repro.sim.costs import LINE_SIZE

#: MESI states (Invalid is represented by absence).
MODIFIED = "M"
EXCLUSIVE = "E"
SHARED_ST = "S"


class AccessOutcome:
    """Cost and coherence effects of one memory access."""

    __slots__ = ("cost", "hitm_remotes", "lines")

    def __init__(self):
        self.cost = 0
        self.hitm_remotes = []     # remote core ids that held M
        self.lines = 0

    @property
    def hitm(self):
        return bool(self.hitm_remotes)


class CoherenceDirectory:
    """Directory-based MESI over physical line addresses."""

    def __init__(self, costs, n_cores):
        self.costs = costs
        self.n_cores = n_cores
        self._lines = {}           # line pa -> {core: state}
        self._recent = {}          # line pa -> {core: [last_any, last_wr]}
        self.hitm_load_count = 0
        self.hitm_store_count = 0
        self.access_count = 0
        self.contended_accesses = 0

    # ------------------------------------------------------------------
    def access(self, core, pa, width, is_write, now=0):
        """Perform one access; returns an :class:`AccessOutcome`.

        Accesses that straddle a line boundary are split and each line is
        charged independently (as hardware does for split accesses).
        ``now`` (the accessing core's clock) drives the hot-line
        contention model.
        """
        out = AccessOutcome()
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + width - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            self._access_line(core, line, is_write, out)
            out.cost += self._contention(core, line, is_write, now)
            out.lines += 1
            line += LINE_SIZE
        self.access_count += 1
        return out

    def _contention(self, core, line, is_write, now):
        """Hot-line queueing tax (see CostModel.contend_penalty).

        A serialized per-op simulation understates how badly a line that
        several cores conflict on behaves: in hardware, every access to
        such a line queues behind in-flight ownership transfers.  We
        charge each access a penalty per remote core that touched the
        line within a recent window, whenever the conflict involves a
        writer (SWMR serialization); read-only sharing stays free.
        """
        costs = self.costs
        recent = self._recent.get(line)
        if recent is None:
            self._recent[line] = {core: [now, now if is_write else None]}
            return 0
        horizon = now - costs.contend_window
        conflicting = 0
        stale = None
        for other, (last_any, last_write) in recent.items():
            if other == core:
                continue
            if last_any < horizon:
                stale = other if stale is None else stale
                continue
            if is_write or (last_write is not None
                            and last_write >= horizon):
                conflicting += 1
        if stale is not None and len(recent) > 4:
            for other in [o for o, (la, _lw) in recent.items()
                          if la < horizon and o != core]:
                del recent[other]
        mine = recent.get(core)
        if mine is None:
            recent[core] = [now, now if is_write else None]
        else:
            mine[0] = now
            if is_write:
                mine[1] = now
        if not conflicting:
            return 0
        self.contended_accesses += 1
        return costs.contend_penalty * min(conflicting,
                                           costs.contend_max_cores)

    def _access_line(self, core, line, is_write, out):
        costs = self.costs
        holders = self._lines.get(line)
        if holders is None:
            holders = {}
            self._lines[line] = holders
        mine = holders.get(core)

        if not is_write:
            if mine is not None:
                out.cost += costs.load_hit
                return
            remote_m = _modified_holder(holders, core)
            if remote_m is not None:
                # HITM: remote Modified line supplies the data.
                holders[remote_m] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.hitm_load
                out.hitm_remotes.append(remote_m)
                self.hitm_load_count += 1
            elif holders:
                for other in holders:
                    if holders[other] == EXCLUSIVE:
                        holders[other] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.shared_fill
            else:
                holders[core] = EXCLUSIVE
                out.cost += costs.mem_fill
            return

        # write
        if mine == MODIFIED:
            out.cost += costs.store_hit
            return
        if mine == EXCLUSIVE:
            holders[core] = MODIFIED
            out.cost += costs.store_hit
            return
        remote_m = _modified_holder(holders, core)
        if remote_m is not None:
            # store that invalidates a remote Modified line (store HITM)
            del holders[remote_m]
            holders[core] = MODIFIED
            out.cost += costs.hitm_store
            out.hitm_remotes.append(remote_m)
            self.hitm_store_count += 1
            return
        others = [c for c in holders if c != core]
        if mine == SHARED_ST or others:
            for other in others:
                del holders[other]
            holders[core] = MODIFIED
            out.cost += costs.upgrade if mine == SHARED_ST else costs.mem_fill
            return
        holders[core] = MODIFIED
        out.cost += costs.mem_fill

    # ------------------------------------------------------------------
    def flush_range(self, pa, nbytes):
        """Invalidate every copy of every line in [pa, pa+nbytes)."""
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + nbytes - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            self._lines.pop(line, None)
            line += LINE_SIZE

    def line_holders(self, pa):
        """{core: state} for the line containing ``pa`` (test hook)."""
        return dict(self._lines.get(pa & ~(LINE_SIZE - 1), {}))

    def check_swmr(self):
        """Assert the SWMR invariant over every tracked line.

        Returns the number of lines checked; raises AssertionError on a
        violation.  Used by property-based tests.
        """
        for line, holders in self._lines.items():
            writers = [c for c, s in holders.items() if s == MODIFIED]
            if len(writers) > 1:
                raise AssertionError(
                    f"line {line:#x}: multiple writers {writers}")
            if writers and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: writer {writers[0]} coexists with "
                    f"readers {sorted(holders)}")
            exclusive = [c for c, s in holders.items() if s == EXCLUSIVE]
            if exclusive and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: E holder with other sharers")
        return len(self._lines)


def _modified_holder(holders, exclude):
    for core, state in holders.items():
        if core != exclude and state == MODIFIED:
            return core
    return None
