"""Event records emitted by the simulated machine.

The coherence directory publishes :class:`HitmEvent` records whenever an
access hits a remote core's Modified line — the hardware event underlying
Intel's ``MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM`` PEBS counter that TMI
samples (paper section 2.1).  Fault events feed the memory-overhead and
huge-page experiments.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class HitmEvent:
    """One access that hit a remote Modified cache line.

    Attributes mirror what the real PEBS machinery can observe: the
    accessor's PC and virtual address, plus simulation-side truth (the
    physical address and remote core) that the detector must *not* use
    directly — it only sees sampled :class:`~repro.oskit.perf.PebsRecord`.
    """

    cycle: int
    core: int
    tid: int
    pc: int
    va: int
    pa: int
    width: int
    is_store: bool
    remote_core: int


@dataclass(frozen=True)
class FaultEvent:
    """A page fault serviced by the VM layer."""

    cycle: int
    tid: int
    va: int
    kind: str              # 'anon' | 'shared_file' | 'cow'
    page_size: int
    is_write: bool


@dataclass(frozen=True)
class CommitEvent:
    """One PTSB commit (diff + merge of all protected dirty pages)."""

    cycle: int
    pid: int
    tid: int
    pages: int
    bytes_merged: int
    reason: str  # 'lock' | 'unlock' | 'barrier' | 'atomic' | 'asm' | 'exit'
