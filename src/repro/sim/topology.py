"""Multi-socket NUMA topology for the simulated machine.

A :class:`Topology` describes how the machine's cores are grouped into
sockets.  The default — one socket holding every core — is the exact
machine every earlier PR simulated: with ``sockets == 1`` no NUMA code
path activates and every run stays byte-identical to the single-socket
goldens.  With ``sockets >= 2`` the coherence directory charges
QPI-style hop costs for cross-socket transfers and the physical memory
gains per-frame home nodes (see ``docs/HARDWARE.md``).

The topology is a frozen dataclass so it can ride inside eval grid
cells through ``ProcessPoolExecutor`` pickling unchanged.
"""

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class Topology:
    """Sockets x cores-per-socket layout of the simulated machine.

    Core ids are dense: socket ``s`` owns cores
    ``[s * cores_per_socket, (s+1) * cores_per_socket)``.  This matches
    how compact placement fills cores and keeps ``socket_of`` a single
    integer divide.
    """

    sockets: int = 1
    cores_per_socket: int = 8

    def __post_init__(self):
        if self.sockets < 1:
            raise SimulationError(f"topology needs >= 1 socket, "
                                  f"got {self.sockets}")
        if self.cores_per_socket < 1:
            raise SimulationError(f"topology needs >= 1 core per socket, "
                                  f"got {self.cores_per_socket}")

    @property
    def n_cores(self) -> int:
        """Total core count across every socket."""
        return self.sockets * self.cores_per_socket

    def socket_of(self, core: int) -> int:
        """Socket id owning ``core``."""
        return core // self.cores_per_socket

    def cores_of(self, socket: int) -> range:
        """The dense core-id range owned by ``socket``."""
        base = socket * self.cores_per_socket
        return range(base, base + self.cores_per_socket)

    def socket_map(self) -> tuple:
        """Per-core socket ids, indexable by core id (fast-path table)."""
        return tuple(core // self.cores_per_socket
                     for core in range(self.n_cores))

    @classmethod
    def fit(cls, n_cores: int, sockets: int = 1) -> "Topology":
        """Topology with ``sockets`` sockets covering >= ``n_cores``.

        Cores-per-socket is the ceiling division, so the last socket may
        have spare cores; core ids past ``n_cores`` simply never run a
        thread.
        """
        if sockets < 1:
            raise SimulationError(f"fit needs >= 1 socket, got {sockets}")
        per = max(1, -(-n_cores // sockets))
        return cls(sockets=sockets, cores_per_socket=per)


#: Degenerate single-socket topology (the pre-NUMA machine).
SINGLE_SOCKET = Topology(sockets=1, cores_per_socket=8)
