"""Batch cache-state transition kernels for the vector executor.

These kernels advance the :class:`~repro.sim.cache.CoherenceDirectory`
over a whole *fast-hit stretch* at once: a run of accesses by one core
to lines it already owns via the directory's owner micro-cache
(``_fast``).  For such a stretch the per-access slow path is provably a
no-op beyond timestamp refresh, the one-time E->M upgrade, and the
access counter — so ``k`` accesses on a line collapse to a single
in-place update whose observable directory state is byte-identical to
``k`` serial ``access()`` calls:

* ``mine[0]`` (owner's last-any timestamp) ends at the *last* access's
  pre-cost clock; earlier writes are overwritten by later ones.
* ``mine[1]`` (last-write) likewise, only touched when writing.
* ``holders[core]`` upgrades E->M at most once, on the first write.
* ``access_count`` grows by exactly ``k``; no HITM, no contention, no
  eviction — a fast hit never consults ``_recent`` beyond the shared
  ``mine`` cell and never evicts the entry.

The kernels never *install* fast entries and never handle misses: the
executor sizes each batch with :func:`fast_owned_line_count` so only
already-owned lines are touched, and falls back to the serial path on
the first line that is not.  ``tests/sim/test_cache_batch.py`` pins the
equivalence differentially against both ``CoherenceDirectory`` and the
unoptimized ``ReferenceDirectory``.
"""

from repro.sim.cache import EXCLUSIVE, MODIFIED


def fast_owned_line_count(directory, core, lines):
    """Count leading entries of ``lines`` fast-owned by ``core``.

    ``lines`` is an iterable of absolute line addresses (deduplicated,
    in access order).  Returns how many of its leading elements have an
    owner micro-cache entry held by ``core`` — the lines a batch may
    cover without ever entering the slow path.
    """
    fast = directory._fast
    owned = 0
    for line in lines:
        entry = fast.get(line)
        if entry is None or entry[0] != core:
            break
        owned += 1
    return owned


def apply_fast_mixed(directory, core, line_finals, total):
    """Apply a batch of mixed load/store fast hits in place.

    Like :func:`apply_fast_hits`, but for batches interleaving loads
    and stores on the same lines (the RMW sequences).  ``line_finals``
    maps ``line -> [last_any_now, last_write_now]`` — the accessing
    core's pre-cost clocks at the final access and final *write* the
    batch performs on that line (``last_write_now`` is None for lines
    the batch only read).  ``total`` is the number of accesses
    collapsed.  Every line must currently be fast-owned by ``core``.
    """
    fast = directory._fast
    for line, (last_any, last_write) in line_finals.items():
        entry = fast[line]
        entry[2][0] = last_any
        if last_write is not None:
            entry[2][1] = last_write
            holders = entry[1]
            if holders[core] is EXCLUSIVE:
                holders[core] = MODIFIED
    directory.access_count += total


def apply_fast_hits(directory, core, is_write, line_finals, total):
    """Apply a batch of fast hits to the directory in place.

    ``line_finals`` is a sequence of ``(line, last_now)`` pairs — one
    per distinct line in the batch, ``last_now`` being the accessing
    core's pre-cost clock at the *final* access the batch performs on
    that line.  ``total`` is the total number of accesses collapsed.
    Every line must currently be fast-owned by ``core`` (the caller
    guarantees this via :func:`fast_owned_line_count`).
    """
    fast = directory._fast
    for line, last_now in line_finals:
        mine = fast[line][2]
        mine[0] = last_now
        if is_write:
            mine[1] = last_now
            holders = fast[line][1]
            if holders[core] is EXCLUSIVE:
                holders[core] = MODIFIED
    directory.access_count += total
