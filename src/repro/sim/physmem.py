"""Physical memory for the simulated machine.

Physical memory is a flat byte-addressable space.  Contents are stored in
4 KB chunks that materialize lazily on first touch, so a workload can
*reserve* gigabytes (matching the paper's native inputs, e.g. ocean-ncp's
27 GB) while the host only pays for pages actually written.

Frame allocation is a bump pointer with an explicit free list; freed
ranges are recycled for COW copies and twins so long-running repairs do
not grow host memory without bound.
"""

import struct

from repro.errors import SimulationError

try:
    import numpy as _np
except ImportError:                                   # pragma: no cover
    _np = None

#: Storage chunk granularity; independent of the mapping page size.
_CHUNK = 4096
_CHUNK_MASK = _CHUNK - 1

#: Little-endian codecs for the power-of-two access widths.
_INT_CODEC = {1: struct.Struct("<B"), 2: struct.Struct("<H"),
              4: struct.Struct("<I"), 8: struct.Struct("<Q")}
_INT_MASK = {w: (1 << (8 * w)) - 1 for w in _INT_CODEC}


class PhysicalMemory:
    """Byte-addressable physical memory with lazy materialization."""

    def __init__(self):
        self._chunks = {}          # chunk base pa -> bytearray(_CHUNK)
        self._bump = _CHUNK        # pa 0..4095 reserved (null frame)
        self._free = {}            # size -> list of base addresses
        self._home_nodes = {}      # frame (pa >> 12) -> NUMA node
        self.reserved_bytes = 0    # allocated (possibly untouched)
        self.freed_bytes = 0

    # ------------------------------------------------------------------
    # NUMA home nodes (multi-socket topologies only)
    # ------------------------------------------------------------------
    def home_node(self, pa):
        """NUMA node owning the 4 KB frame holding ``pa`` (None = unset).

        Single-socket machines never assign home nodes; multi-socket
        machines assign one lazily per the page-placement policy on the
        frame's first coherence fill (see ``Machine``).
        """
        return self._home_nodes.get(pa >> 12)

    def set_home_node(self, pa, node):
        """Pin the 4 KB frame holding ``pa`` to NUMA ``node``."""
        self._home_nodes[pa >> 12] = node

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes, align=_CHUNK):
        """Reserve ``nbytes`` of physical address space, return base pa.

        The space is zero-filled on first touch.  ``align`` must be a
        power of two.
        """
        if nbytes <= 0:
            raise SimulationError(f"alloc of {nbytes} bytes")
        if align & (align - 1):
            raise SimulationError(f"alignment {align} not a power of two")
        nbytes = _round_up(nbytes, _CHUNK)
        bucket = self._free.get(nbytes)
        if bucket:
            for i, base in enumerate(bucket):
                if base % align == 0:
                    bucket.pop(i)
                    self.reserved_bytes += nbytes
                    self.freed_bytes -= nbytes
                    return base
        base = _round_up(self._bump, align)
        self._bump = base + nbytes
        self.reserved_bytes += nbytes
        return base

    def free(self, base, nbytes):
        """Return a previously allocated range to the free list.

        Cached contents are dropped; a recycled range reads as zeros.
        """
        nbytes = _round_up(nbytes, _CHUNK)
        for chunk in range(base & ~_CHUNK_MASK, base + nbytes, _CHUNK):
            self._chunks.pop(chunk, None)
        self._free.setdefault(nbytes, []).append(base)
        self.reserved_bytes -= nbytes
        self.freed_bytes += nbytes

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def read(self, pa, width):
        """Read ``width`` bytes at physical address ``pa``."""
        if pa + width <= ((pa & ~_CHUNK_MASK) + _CHUNK):
            chunk = self._chunks.get(pa & ~_CHUNK_MASK)
            if chunk is None:
                return b"\x00" * width
            off = pa & _CHUNK_MASK
            return bytes(chunk[off:off + width])
        return b"".join(
            self.read(a, n) for a, n in _split(pa, width)
        )

    def write(self, pa, data):
        """Write ``data`` (bytes) at physical address ``pa``."""
        width = len(data)
        if pa + width <= ((pa & ~_CHUNK_MASK) + _CHUNK):
            chunk = self._materialize(pa & ~_CHUNK_MASK)
            off = pa & _CHUNK_MASK
            chunk[off:off + width] = data
            return
        pos = 0
        for a, n in _split(pa, width):
            self.write(a, data[pos:pos + n])
            pos += n

    def read_int(self, pa, width):
        """Read a little-endian unsigned integer."""
        off = pa & _CHUNK_MASK
        codec = _INT_CODEC.get(width)
        if codec is not None and off + width <= _CHUNK:
            chunk = self._chunks.get(pa - off)
            if chunk is None:
                return 0
            return codec.unpack_from(chunk, off)[0]
        return int.from_bytes(self.read(pa, width), "little")

    def write_int(self, pa, value, width):
        """Write a little-endian unsigned integer (masked to width)."""
        off = pa & _CHUNK_MASK
        codec = _INT_CODEC.get(width)
        if codec is not None and off + width <= _CHUNK:
            base = pa - off
            chunk = self._chunks.get(base)
            if chunk is None:
                chunk = bytearray(_CHUNK)
                self._chunks[base] = chunk
            codec.pack_into(chunk, off, value & _INT_MASK[width])
            return
        mask = (1 << (8 * width)) - 1
        self.write(pa, (value & mask).to_bytes(width, "little"))

    def read_int_run(self, pa, stride, count, width):
        """Bulk :meth:`read_int`: ``count`` strided little-endian reads.

        Returns the list of unsigned values at ``pa + i*stride`` for
        ``i in range(count)``, element-for-element identical to serial
        ``read_int`` calls.  Accesses must not straddle a 4 KB chunk
        (the vector executor guarantees this — batched accesses never
        straddle a cache line, and lines never straddle chunks) and
        ``width`` must be a codec width; misuse raises
        :class:`SimulationError`.
        """
        if _np is None or width not in _INT_CODEC:
            raise SimulationError(
                f"read_int_run unsupported (width={width})")
        if stride == 0:
            return [self.read_int(pa, width)] * count
        out = []
        index = 0
        while index < count:
            first = pa + index * stride
            base = first & ~_CHUNK_MASK
            take = min(count - index,
                       (base + _CHUNK - width - first) // stride + 1)
            if take < 1:
                raise SimulationError("read_int_run chunk straddle")
            chunk = self._chunks.get(base)
            if chunk is None:
                out.extend([0] * take)
            else:
                buf = _np.frombuffer(chunk, dtype=_np.uint8)
                offs = ((first - base)
                        + _np.arange(take, dtype=_np.int64) * stride)
                grid = offs[:, None] + _np.arange(width,
                                                  dtype=_np.int64)
                weights = (_np.uint64(1)
                           << (_np.arange(width, dtype=_np.uint64) * 8))
                vals = (buf[grid].astype(_np.uint64) * weights)
                out.extend(vals.sum(axis=1, dtype=_np.uint64).tolist())
            index += take
        return out

    def write_int_run(self, pa, stride, count, value, width):
        """Bulk :meth:`write_int`: ``count`` strided stores of ``value``.

        Byte-identical to ``count`` serial ``write_int`` calls under the
        executor's preconditions: no chunk straddle, codec ``width``,
        and ``stride`` either 0 (all stores collapse onto one location)
        or >= ``width`` (no overlap, so store order is immaterial).
        """
        if _np is None or width not in _INT_CODEC:
            raise SimulationError(
                f"write_int_run unsupported (width={width})")
        if 0 < stride < width:
            raise SimulationError("write_int_run overlapping stride")
        if stride == 0:
            self.write_int(pa, value, width)
            return
        pattern = (value & _INT_MASK[width]).to_bytes(width, "little")
        index = 0
        while index < count:
            first = pa + index * stride
            base = first & ~_CHUNK_MASK
            take = min(count - index,
                       (base + _CHUNK - width - first) // stride + 1)
            if take < 1:
                raise SimulationError("write_int_run chunk straddle")
            chunk = self._materialize(base)
            off = first - base
            if stride == width:
                chunk[off:off + take * width] = pattern * take
            else:
                buf = _np.frombuffer(chunk, dtype=_np.uint8)
                offs = (off
                        + _np.arange(take, dtype=_np.int64) * stride)
                grid = offs[:, None] + _np.arange(width,
                                                  dtype=_np.int64)
                buf[grid] = _np.frombuffer(pattern, dtype=_np.uint8)
            index += take

    def copy_page(self, src_pa, dst_pa, page_size):
        """Copy ``page_size`` bytes from ``src_pa`` to ``dst_pa``."""
        for off in range(0, page_size, _CHUNK):
            src = self._chunks.get((src_pa + off) & ~_CHUNK_MASK)
            if src is None:
                self._chunks.pop((dst_pa + off) & ~_CHUNK_MASK, None)
            else:
                self._chunks[(dst_pa + off) & ~_CHUNK_MASK] = bytearray(src)

    def snapshot(self, pa, nbytes):
        """Return an immutable copy of ``nbytes`` starting at ``pa``."""
        return self.read(pa, nbytes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def touched_bytes(self):
        """Bytes of physical memory actually materialized."""
        return len(self._chunks) * _CHUNK

    def _materialize(self, chunk_base):
        chunk = self._chunks.get(chunk_base)
        if chunk is None:
            chunk = bytearray(_CHUNK)
            self._chunks[chunk_base] = chunk
        return chunk


def _round_up(value, align):
    return (value + align - 1) & ~(align - 1)


def _split(pa, width):
    """Split an access into per-chunk (address, length) pieces."""
    out = []
    while width > 0:
        room = ((pa & ~_CHUNK_MASK) + _CHUNK) - pa
        take = min(room, width)
        out.append((pa, take))
        pa += take
        width -= take
    return out
