"""Reference MESI directory: the straight-line pre-fast-path model.

This is the coherence model of :mod:`repro.sim.cache` *without* the
owner micro-cache and outcome pooling — every access walks the
directory dicts and the contention history, and every call returns a
fresh :class:`AccessOutcome`.  It exists so the differential test
(``tests/sim/test_fastpath_equiv.py``) can replay randomized access
traces through both implementations and assert identical costs, HITM
events, and SWMR state.  Keep its semantics in lockstep with any change
to the optimized directory.
"""

from repro.sim.costs import LINE_SIZE

MODIFIED = "M"
EXCLUSIVE = "E"
SHARED_ST = "S"


class RefOutcome:
    """Cost and coherence effects of one memory access (unpooled)."""

    __slots__ = ("cost", "hitm_remotes", "lines")

    def __init__(self):
        self.cost = 0
        self.hitm_remotes = []
        self.lines = 0

    @property
    def hitm(self):
        """Whether any accessed line hit remote-Modified."""
        return bool(self.hitm_remotes)


class ReferenceDirectory:
    """Directory-based MESI over physical line addresses (slow path)."""

    def __init__(self, costs, n_cores, topology=None, home_of=None):
        self.costs = costs
        self.n_cores = n_cores
        self._lines = {}           # line pa -> {core: state}
        self._recent = {}          # line pa -> {core: [last_any, last_wr]}
        self._multi = topology is not None and topology.sockets > 1
        self._socket_of = (topology.socket_map() if self._multi
                           else (0,) * n_cores)
        self._home_of = home_of
        self.hitm_load_count = 0
        self.hitm_store_count = 0
        self.access_count = 0
        self.contended_accesses = 0
        self.hitm_cross_socket_count = 0
        self.qpi_hops = 0
        self.remote_mem_fills = 0

    # ------------------------------------------------------------------
    def access(self, core, pa, width, is_write, now=0):
        """One access from ``core``; returns a costed RefOutcome."""
        out = RefOutcome()
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + width - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            self._access_line(core, line, is_write, out)
            out.cost += self._contention(core, line, is_write, now)
            out.lines += 1
            line += LINE_SIZE
        self.access_count += 1
        return out

    def _contention(self, core, line, is_write, now):
        costs = self.costs
        recent = self._recent.get(line)
        if recent is None:
            self._recent[line] = {core: [now, now if is_write else None]}
            return 0
        horizon = now - costs.contend_window
        conflicting = 0
        stale = None
        for other, (last_any, last_write) in recent.items():
            if other == core:
                continue
            if last_any < horizon:
                stale = other if stale is None else stale
                continue
            if is_write or (last_write is not None
                            and last_write >= horizon):
                conflicting += 1
        if stale is not None and len(recent) > 4:
            for other in [o for o, (la, _lw) in recent.items()
                          if la < horizon and o != core]:
                del recent[other]
        mine = recent.get(core)
        if mine is None:
            recent[core] = [now, now if is_write else None]
        else:
            mine[0] = now
            if is_write:
                mine[1] = now
        if not conflicting:
            return 0
        self.contended_accesses += 1
        return costs.contend_penalty * min(conflicting,
                                           costs.contend_max_cores)

    def _access_line(self, core, line, is_write, out):
        costs = self.costs
        holders = self._lines.get(line)
        if holders is None:
            holders = {}
            self._lines[line] = holders
        mine = holders.get(core)

        if not is_write:
            if mine is not None:
                out.cost += costs.load_hit
                return
            remote_m = _modified_holder(holders, core)
            if remote_m is not None:
                holders[remote_m] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.hitm_load
                out.hitm_remotes.append(remote_m)
                self.hitm_load_count += 1
                if self._multi and \
                        self._socket_of[remote_m] != self._socket_of[core]:
                    out.cost += costs.qpi_hop
                    self.qpi_hops += 1
                    self.hitm_cross_socket_count += 1
            elif holders:
                if self._multi:
                    my_socket = self._socket_of[core]
                    if all(self._socket_of[o] != my_socket
                           for o in holders):
                        out.cost += costs.qpi_hop
                        self.qpi_hops += 1
                for other in holders:
                    if holders[other] == EXCLUSIVE:
                        holders[other] = SHARED_ST
                holders[core] = SHARED_ST
                out.cost += costs.shared_fill
            else:
                holders[core] = EXCLUSIVE
                out.cost += costs.mem_fill
                if self._multi and \
                        self._home_of(line, core) != self._socket_of[core]:
                    out.cost += costs.numa_remote_fill
                    self.remote_mem_fills += 1
            return

        if mine == MODIFIED:
            out.cost += costs.store_hit
            return
        if mine == EXCLUSIVE:
            holders[core] = MODIFIED
            out.cost += costs.store_hit
            return
        remote_m = _modified_holder(holders, core)
        if remote_m is not None:
            del holders[remote_m]
            holders[core] = MODIFIED
            out.cost += costs.hitm_store
            out.hitm_remotes.append(remote_m)
            self.hitm_store_count += 1
            if self._multi and \
                    self._socket_of[remote_m] != self._socket_of[core]:
                out.cost += costs.qpi_hop
                self.qpi_hops += 1
                self.hitm_cross_socket_count += 1
            return
        others = [c for c in holders if c != core]
        if mine == SHARED_ST or others:
            if self._multi:
                my_socket = self._socket_of[core]
                if any(self._socket_of[o] != my_socket for o in others):
                    out.cost += costs.qpi_hop
                    self.qpi_hops += 1
            for other in others:
                del holders[other]
            holders[core] = MODIFIED
            out.cost += costs.upgrade if mine == SHARED_ST else costs.mem_fill
            return
        holders[core] = MODIFIED
        out.cost += costs.mem_fill
        if self._multi and \
                self._home_of(line, core) != self._socket_of[core]:
            out.cost += costs.numa_remote_fill
            self.remote_mem_fills += 1

    # ------------------------------------------------------------------
    def flush_range(self, pa, nbytes):
        """Drop every line overlapping [pa, pa+nbytes) (clflush)."""
        first = pa & ~(LINE_SIZE - 1)
        last = (pa + nbytes - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            self._lines.pop(line, None)
            self._recent.pop(line, None)
            line += LINE_SIZE

    def line_holders(self, pa):
        """{core: MESI state} for the line holding ``pa``."""
        return dict(self._lines.get(pa & ~(LINE_SIZE - 1), {}))

    def check_swmr(self):
        """Assert single-writer/multi-reader holds on every line."""
        for line, holders in self._lines.items():
            writers = [c for c, s in holders.items() if s == MODIFIED]
            if len(writers) > 1:
                raise AssertionError(
                    f"line {line:#x}: multiple writers {writers}")
            if writers and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: writer {writers[0]} coexists with "
                    f"readers {sorted(holders)}")
            exclusive = [c for c, s in holders.items() if s == EXCLUSIVE]
            if exclusive and len(holders) > 1:
                raise AssertionError(
                    f"line {line:#x}: E holder with other sharers")
        return len(self._lines)


def _modified_holder(holders, exclude):
    for core, state in holders.items():
        if core != exclude and state == MODIFIED:
            return core
    return None
