"""The simulated multicore machine.

Bundles physical memory, the coherence directory, per-core clocks, and an
event bus.  The execution engine drives it; runtimes (TMI, Sheriff,
LASER) observe it through listeners — most importantly ``on_hitm``, which
feeds the simulated PEBS machinery.
"""

from repro.errors import SimulationError
from repro.sim.cache import CoherenceDirectory
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.events import HitmEvent
from repro.sim.physmem import PhysicalMemory
from repro.sim.topology import Topology

#: Page-placement policies a multi-socket machine understands.
PAGE_POLICIES = ("first-touch", "interleave")


class Machine:
    """Cores + memory + coherence for one simulation run.

    ``topology`` groups the cores into sockets; the default single
    socket is the exact pre-NUMA machine (byte-identical costs).  With
    ``sockets >= 2`` the directory charges QPI hop and remote-fill
    costs, and ``pages`` selects how 4 KB frames acquire NUMA home
    nodes: ``"first-touch"`` homes a frame on the socket of the first
    core to miss on it; ``"interleave"`` stripes frames round-robin
    across sockets.
    """

    def __init__(self, n_cores=8, costs=None, topology=None,
                 pages="first-touch"):
        self.costs = costs or DEFAULT_COSTS
        self.n_cores = n_cores
        self.topology = topology or Topology(sockets=1,
                                             cores_per_socket=n_cores)
        if self.topology.n_cores < n_cores:
            raise SimulationError(
                f"topology covers {self.topology.n_cores} cores, "
                f"machine needs {n_cores}")
        if pages not in PAGE_POLICIES:
            raise SimulationError(f"unknown page policy {pages!r}")
        self.page_policy = pages
        self.physmem = PhysicalMemory()
        multi = self.topology.sockets > 1
        self.directory = CoherenceDirectory(
            self.costs, n_cores, topology=self.topology,
            home_of=self._home_of if multi else None)
        self.core_clock = [0] * n_cores
        self._hitm_listeners = []
        self.hitm_events = 0

    def _home_of(self, line, core):
        """Home node of ``line``'s frame, assigning it on first miss."""
        frame = line >> 12
        node = self.physmem._home_nodes.get(frame)
        if node is None:
            if self.page_policy == "interleave":
                node = frame % self.topology.sockets
            else:
                node = self.topology.socket_of(core)
            self.physmem._home_nodes[frame] = node
        return node

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_hitm_listener(self, callback):
        """``callback(HitmEvent)`` fires on every HITM the hardware sees.

        Returns the extra cycles the listener charges to the accessing
        thread (PEBS record/interrupt costs), or None.
        """
        self._hitm_listeners.append(callback)

    # ------------------------------------------------------------------
    # memory operations (physical level)
    # ------------------------------------------------------------------
    def mem_access(self, core, tid, pc, va, pa, width, is_write,
                   value=None):
        """One data access: coherence + data movement.

        Returns ``(cost, loaded_value)``; ``loaded_value`` is None for
        stores.  Fires HITM listeners and accumulates their costs.
        """
        now = self.core_clock[core]
        outcome = self.directory.access(core, pa, width, is_write, now=now)
        cost = outcome.cost
        if outcome.hitm_remotes:
            if not self._hitm_listeners:
                self.hitm_events += len(outcome.hitm_remotes)
            else:
                # snapshot: the outcome is pooled, and listeners may
                # re-enter mem_access (runtime instrumentation issuing
                # its own probes)
                for remote in tuple(outcome.hitm_remotes):
                    self.hitm_events += 1
                    event = HitmEvent(
                        cycle=now, core=core, tid=tid, pc=pc,
                        va=va, pa=pa, width=width, is_store=is_write,
                        remote_core=remote,
                    )
                    for listener in self._hitm_listeners:
                        extra = listener(event)
                        if extra:
                            cost += extra
        if is_write:
            self.physmem.write_int(pa, value, width)
            return cost, None
        return cost, self.physmem.read_int(pa, width)

    def advance(self, core, cycles):
        """Advance one core's clock."""
        self.core_clock[core] += cycles

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def fill_metrics(self, registry):
        """Fold machine state into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        This is the first-class replacement for reading the machine's
        counters ad hoc at the end of a run: HITM totals, the machine
        clock, and per-core clocks all land in one labeled namespace.
        """
        directory = self.directory
        registry.counter("machine.hitm.loads").inc(
            directory.hitm_load_count)
        registry.counter("machine.hitm.stores").inc(
            directory.hitm_store_count)
        registry.counter("machine.hitm.events").inc(self.hitm_events)
        registry.gauge("machine.cycles").set(self.now)
        registry.gauge("machine.cores").set(self.n_cores)
        for core, clock in enumerate(self.core_clock):
            registry.gauge("machine.core_cycles", core=core).set(clock)
        if self.topology.sockets > 1:
            # NUMA namespace only exists on multi-socket machines, so
            # single-socket metrics snapshots stay unchanged.
            registry.gauge("machine.sockets").set(self.topology.sockets)
            registry.counter("machine.hitm.cross_socket").inc(
                directory.hitm_cross_socket_count)
            registry.counter("machine.qpi.hops").inc(directory.qpi_hops)
            registry.counter("machine.numa.remote_fills").inc(
                directory.remote_mem_fills)
            for socket in range(self.topology.sockets):
                cores = [c for c in self.topology.cores_of(socket)
                         if c < self.n_cores]
                busiest = max((self.core_clock[c] for c in cores),
                              default=0)
                registry.gauge("machine.socket_cycles",
                               socket=socket).set(busiest)

    @property
    def now(self):
        """Machine time = the furthest core clock (wall-clock proxy)."""
        return max(self.core_clock)

    def elapsed_seconds(self):
        """Simulated wall-clock runtime so far."""
        return self.costs.seconds(self.now)
