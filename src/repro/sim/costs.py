"""Cycle cost model for the simulated multicore machine.

All performance numbers in the reproduction derive from this table.  The
constants are calibrated so that the *shapes* of the paper's results hold
(who wins, by what rough factor, where crossovers fall); they are not a
cycle-accurate model of any specific Haswell part.

The paper's machines run at 3.4 GHz (repair experiments, i7-4770K) and
3.0 GHz (detection experiments, i7-5960X); we use a single 3.4 GHz clock.
"""

from dataclasses import dataclass, field

#: Cache line size in bytes (Haswell).
LINE_SIZE = 64

#: Standard small page size in bytes.
PAGE_4K = 4096

#: Huge page size in bytes (MAP_HUGE_2MB).
PAGE_2M = 2 * 1024 * 1024


@dataclass
class CostModel:
    """Cycle costs charged by the machine, OS kit, and runtimes.

    Grouped by subsystem.  ``cycles_per_second`` converts simulated cycles
    to the seconds reported in tables and figures.
    """

    cycles_per_second: float = 3.4e9

    # --- cache / coherence (per access) ---
    #: Hit in the local private cache.
    load_hit: int = 2
    store_hit: int = 2
    #: Fill from memory, no other sharer (cold/capacity miss).
    mem_fill: int = 160
    #: Fill when another core holds the line Shared/Exclusive (clean).
    shared_fill: int = 60
    #: Load that hits a remote Modified line -> HITM event.
    hitm_load: int = 420
    #: Store that must invalidate a remote Modified line (store HITM).
    hitm_store: int = 500
    #: Upgrade S->M, invalidating clean remote copies.
    upgrade: int = 70
    #: Extra cost of any atomic RMW over a plain access (LOCK prefix).
    atomic_extra: int = 24
    #: Full fence.
    fence: int = 30
    #: Per-line cost of bulk streaming accesses (bandwidth-bound).
    stream_per_line: int = 12

    # --- NUMA / inter-socket interconnect (multi-socket only; with
    #     Topology(sockets=1) neither knob is ever charged) ---
    #: Extra cycles whenever a coherence transfer crosses a socket
    #: boundary (QPI/UPI hop): cross-socket HITM supply, cross-socket
    #: clean shared fill, and invalidating a remote socket's copies.
    qpi_hop: int = 120
    #: Extra cycles for a memory fill whose home node is a different
    #: socket than the accessing core (remote DRAM latency delta).
    numa_remote_fill: int = 100

    # --- hot-line contention (queueing on the SWMR serialization) ---
    #: Extra cycles per access to a line with an active cross-core
    #: conflict, per recently-conflicting remote core.  Models the
    #: continuous ping-pong of a falsely (or truly) shared line that a
    #: serialized per-op simulation otherwise understates.
    contend_penalty: int = 60
    #: How long (cycles) a remote access keeps a line "contended".
    contend_window: int = 3000
    #: Cap on how many remote cores compound the penalty.
    contend_max_cores: int = 3

    # --- virtual memory ---
    #: Minor fault on a private anonymous page.
    fault_anon: int = 1800
    #: Fault on a shared file-backed page (shm): dirties the backing file,
    #: measurably more expensive than an anonymous fault (paper section 4.4).
    fault_shared_file: int = 4200
    #: Base cost of a copy-on-write fault (plus per-byte copy below).
    fault_cow: int = 1200
    #: Per-byte cost of the COW page copy (and of twin creation).
    copy_per_byte: float = 0.06
    #: mmap/mprotect/munmap syscall cost.
    syscall_mm: int = 1200

    # --- process machinery ---
    #: Injected fork() for thread->process conversion (~40us of the
    #: sub-200us T2P latencies in paper Table 3).
    fork: int = 140_000
    #: ptrace attach/stop of one thread.
    ptrace_attach: int = 25_000
    #: ptrace get/set register context.
    ptrace_regs: int = 6_000
    #: ptrace detach/resume.
    ptrace_detach: int = 12_000
    #: Trampoline execution inside the new process (enable protection).
    trampoline: int = 20_000

    # --- PTSB (twin / diff / merge), paper sections 2.2 and 3.3 ---
    #: Per-byte cost of diffing a dirty page against its twin.
    diff_per_byte: float = 0.08
    #: Per-byte cost of the cheap memcmp prefilter used for huge pages.
    memcmp_per_byte: float = 0.02
    #: Per changed byte merged into shared memory.
    merge_per_byte: float = 1.0
    #: Fixed cost per committed page (TLB shootdown, remap).
    commit_page_fixed: int = 800

    # --- perf / PEBS ---
    #: Cost charged to the application thread per PEBS record written.
    pebs_record: int = 600
    #: Buffer-full interrupt servicing cost (charged to the faulting thread).
    pebs_interrupt: int = 9_000
    #: PEBS buffer capacity in records before an interrupt fires.
    pebs_buffer_records: int = 256
    #: Store HITMs produce PEBS records at a lower rate than loads
    #: (paper section 2.1): only every Nth store HITM is eligible.
    pebs_store_subsample: int = 3

    # --- detector ---
    #: Detector analysis pass: fixed plus per tracked line (runs on its
    #: own core; does not slow application threads).
    detect_fixed: int = 50_000
    detect_per_line: int = 120

    # --- synchronization (constant parts; coherence traffic on the lock
    #     word is simulated for real through the cache model) ---
    mutex_fast: int = 45
    mutex_slow: int = 900          # futex-style block/wake path
    barrier_op: int = 220
    #: Extra pointer-chase when a sync object is redirected to TMI's
    #: process-shared region (one extra load, charged via cache model too).
    pshared_indirect: int = 10

    # --- allocator ---
    alloc_fast: int = 60
    alloc_slow: int = 2200          # new arena chunk from the OS
    #: glibc-style allocator penalty per op (global lock; paper found
    #: Lockless ~16% faster overall).
    glibc_alloc_extra: int = 520

    extra: dict = field(default_factory=dict)

    def seconds(self, cycles):
        """Convert a cycle count to seconds under this model's clock."""
        return cycles / self.cycles_per_second

    def cycles(self, seconds):
        """Convert seconds to cycles under this model's clock."""
        return int(seconds * self.cycles_per_second)


#: Shared default instance used when callers do not supply a model.
DEFAULT_COSTS = CostModel()
