"""Per-process virtual address spaces.

Implements the memory machinery TMI depends on (paper section 3.2):

- mappings over shared, file-backed *backings* (the ``shm_open`` region
  that holds all application stacks, globals, and heap under TMI),
- private copy-on-write remapping of individual pages (the repair
  mechanism's "second mapping"),
- per-page permissions (read-only protection to intercept writes),
- 4 KB and 2 MB page sizes (section 4.4),
- fork() cloning for thread-to-process conversion.

Translation returns the *physical* address an access touches; the cache
model keys coherence state by physical line, so two processes with
private copies of the same virtual page genuinely stop contending —
exactly the paper's repair mechanism.
"""

import bisect
from dataclasses import dataclass, field

from repro.errors import InvalidMappingError, SegmentationFault
from repro.sim.costs import PAGE_4K

#: Mapping sharing modes.
SHARED = "shared"
PRIVATE = "private"


class Backing:
    """A contiguous range of physical memory backing mappings.

    ``file_backed`` distinguishes shm/file regions (whose first-touch
    faults are more expensive and which TMI can remap per-process) from
    anonymous memory.
    """

    _ids = 0

    def __init__(self, physmem, nbytes, name="", file_backed=False):
        if nbytes <= 0:
            raise InvalidMappingError(f"backing of {nbytes} bytes")
        Backing._ids += 1
        self.id = Backing._ids
        self.name = name or f"backing{self.id}"
        self.physmem = physmem
        self.nbytes = nbytes
        self.file_backed = file_backed
        self.base_pa = physmem.alloc(nbytes)

    def page_pa(self, offset):
        """Physical address of the byte at ``offset`` into the backing."""
        if not 0 <= offset < self.nbytes:
            raise InvalidMappingError(
                f"offset {offset:#x} outside backing {self.name}"
            )
        return self.base_pa + offset


@dataclass
class PageState:
    """Per-virtual-page state inside one address space."""

    writable: bool = True
    mode: str = SHARED
    private_pa: int = 0        # 0 = no private frame yet (COW pending)
    touched: bool = False      # first-touch fault already taken?


@dataclass
class Translation:
    """Result of a virtual->physical translation."""

    pa: int
    cost: int = 0
    faults: list = field(default_factory=list)   # (kind, page_va, page_size)


class Mapping:
    """One contiguous virtual mapping inside an address space."""

    def __init__(self, start, nbytes, backing, backing_offset=0,
                 mode=SHARED, page_size=PAGE_4K, name=""):
        if start % page_size or nbytes % page_size:
            raise InvalidMappingError(
                f"mapping [{start:#x}+{nbytes:#x}] not {page_size}-aligned"
            )
        if backing_offset + nbytes > backing.nbytes:
            raise InvalidMappingError("mapping extends past its backing")
        self.start = start
        self.nbytes = nbytes
        self.backing = backing
        self.backing_offset = backing_offset
        self.mode = mode
        self.page_size = page_size
        self.name = name or backing.name
        self.pages = {}            # page index -> PageState

    @property
    def end(self):
        """First VA past the mapping."""
        return self.start + self.nbytes

    def page_index(self, va):
        """Index of the page holding ``va`` within this mapping."""
        return (va - self.start) // self.page_size

    def page_state(self, index):
        """The (lazily created) per-page state for ``index``."""
        state = self.pages.get(index)
        if state is None:
            state = PageState(mode=self.mode)
            self.pages[index] = state
        return state

    def clone(self, physmem):
        """Deep-copy for fork(): shared pages stay shared; existing
        private frames are duplicated eagerly."""
        new = Mapping(self.start, self.nbytes, self.backing,
                      self.backing_offset, self.mode, self.page_size,
                      self.name)
        for index, state in self.pages.items():
            copy = PageState(state.writable, state.mode, 0, state.touched)
            if state.private_pa:
                copy.private_pa = physmem.alloc(self.page_size)
                physmem.copy_page(state.private_pa, copy.private_pa,
                                  self.page_size)
            new.pages[index] = copy
        return new


class AddressSpace:
    """A process's page tables.

    ``cow_hook(mapping, page_index, shared_pa, private_pa)`` is invoked
    whenever a copy-on-write fault materializes a private frame; TMI's
    PTSB uses it to capture twin pages.
    """

    def __init__(self, physmem, costs, name="as"):
        self.physmem = physmem
        self.costs = costs
        self.name = name
        self._starts = []          # sorted mapping start addresses
        self._maps = []            # mappings, parallel to _starts
        self.cow_hook = None
        self.fault_count = {"anon": 0, "shared_file": 0, "cow": 0}
        self.private_bytes = 0     # physical bytes in private frames
        # Translation micro-cache: (va >> 12) -> (pa - va, granule end).
        # An entry exists only for 4 KB granules in *steady state* —
        # touched, and either shared+writable or already-COWed private —
        # where translation is a constant offset with zero cost for both
        # reads and writes.  Any page-table mutation (mmap/munmap/split/
        # protect/unprotect) clears the whole cache; fork starts empty.
        self._tcache = {}

    # ------------------------------------------------------------------
    # mapping management
    # ------------------------------------------------------------------
    def mmap(self, start, nbytes, backing, backing_offset=0, mode=SHARED,
             page_size=PAGE_4K, name=""):
        """Install a mapping; returns the :class:`Mapping`."""
        mapping = Mapping(start, nbytes, backing, backing_offset, mode,
                          page_size, name)
        index = bisect.bisect_left(self._starts, start)
        if index < len(self._maps) and self._maps[index].start < mapping.end:
            raise InvalidMappingError(
                f"mapping [{start:#x}+{nbytes:#x}] overlaps "
                f"{self._maps[index].name}"
            )
        if index > 0 and self._maps[index - 1].end > start:
            raise InvalidMappingError(
                f"mapping [{start:#x}+{nbytes:#x}] overlaps "
                f"{self._maps[index - 1].name}"
            )
        self._starts.insert(index, start)
        self._maps.insert(index, mapping)
        self._tcache.clear()
        return mapping

    def munmap(self, start):
        """Remove the mapping that begins at ``start``."""
        index = bisect.bisect_left(self._starts, start)
        if index >= len(self._maps) or self._maps[index].start != start:
            raise InvalidMappingError(f"no mapping at {start:#x}")
        mapping = self._maps.pop(index)
        self._starts.pop(index)
        self._tcache.clear()
        for state in mapping.pages.values():
            if state.private_pa:
                self.physmem.free(state.private_pa, mapping.page_size)
                self.private_bytes -= mapping.page_size
        return mapping

    def split_mapping_page(self, va, new_page_size=PAGE_4K):
        """Split the huge page containing ``va`` out of its mapping and
        remap it with ``new_page_size`` pages.

        Used by targeted repair when the application region uses 2 MB
        pages: protection (and therefore diff/commit) then operates at
        4 KB granularity while the rest of the region keeps its huge
        pages.  Returns the new small-page mapping.  Pages with live
        private frames cannot be split (commit first).
        """
        mapping = self._require(va)
        if mapping.page_size <= new_page_size:
            return mapping
        index = mapping.page_index(va)
        state = mapping.pages.get(index)
        if state is not None and state.private_pa:
            raise InvalidMappingError(
                f"cannot split page {va:#x} with a live private frame")
        big = mapping.page_size
        split_start = mapping.start + index * big
        was_touched = bool(state and state.touched)

        pos = bisect.bisect_left(self._starts, mapping.start)
        self._starts.pop(pos)
        self._maps.pop(pos)
        self._tcache.clear()

        pieces = []
        if split_start > mapping.start:
            before = Mapping(mapping.start, split_start - mapping.start,
                             mapping.backing, mapping.backing_offset,
                             mapping.mode, big, mapping.name)
            for i, st in mapping.pages.items():
                if i < index:
                    before.pages[i] = st
            pieces.append(before)
        small = Mapping(split_start, big, mapping.backing,
                        mapping.backing_offset + index * big,
                        mapping.mode, new_page_size, mapping.name)
        if was_touched:
            for i in range(big // new_page_size):
                small.pages[i] = PageState(mode=mapping.mode,
                                           touched=True)
        pieces.append(small)
        if split_start + big < mapping.end:
            after = Mapping(split_start + big,
                            mapping.end - split_start - big,
                            mapping.backing,
                            mapping.backing_offset + (index + 1) * big,
                            mapping.mode, big, mapping.name)
            for i, st in mapping.pages.items():
                if i > index:
                    after.pages[i - index - 1] = st
            pieces.append(after)
        for piece in pieces:
            pos = bisect.bisect_left(self._starts, piece.start)
            self._starts.insert(pos, piece.start)
            self._maps.insert(pos, piece)
        if hasattr(mapping, "bulk_watermark"):
            # conservative: attribute the old watermark to the first piece
            pieces[0].bulk_watermark = min(mapping.bulk_watermark,
                                           pieces[0].nbytes)
        return small

    def mapping_at(self, va):
        """The mapping containing ``va``, or None."""
        index = bisect.bisect_right(self._starts, va) - 1
        if index < 0:
            return None
        mapping = self._maps[index]
        return mapping if va < mapping.end else None

    def mappings(self):
        """All mappings, ordered by start address."""
        return list(self._maps)

    # ------------------------------------------------------------------
    # page protection (the repair knobs)
    # ------------------------------------------------------------------
    def protect_page(self, va, writable=False, mode=PRIVATE):
        """Switch one page to ``mode`` with the given writability.

        TMI's targeted repair calls this with the defaults: the page
        becomes process-private and read-only, so the next write takes a
        COW fault that the PTSB intercepts.
        """
        mapping = self._require(va)
        state = mapping.page_state(mapping.page_index(va))
        state.mode = mode
        state.writable = writable
        self._tcache.clear()
        return state

    def unprotect_page(self, va):
        """Return one page to the shared, writable state, dropping any
        private frame (its contents are discarded — commit first)."""
        mapping = self._require(va)
        state = mapping.page_state(mapping.page_index(va))
        if state.private_pa:
            self.physmem.free(state.private_pa, mapping.page_size)
            self.private_bytes -= mapping.page_size
            state.private_pa = 0
        state.mode = SHARED
        state.writable = True
        self._tcache.clear()
        return state

    def page_base(self, va):
        """(page_va, page_size) of the page containing ``va``."""
        mapping = self._require(va)
        index = mapping.page_index(va)
        return mapping.start + index * mapping.page_size, mapping.page_size

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def fast_pa(self, va, width):
        """Physical address for a steady-state access, or None.

        Serves only accesses whose 4 KB granule has a cache entry — i.e.
        pages where :meth:`translate` would return the same constant
        offset with zero cost for reads *and* writes.  Accesses that
        cross the granule, or pages with pending faults or protection,
        fall back to the full walk (returns None).
        """
        entry = self._tcache.get(va >> 12)
        if entry is not None:
            delta, limit = entry
            if va + width <= limit:
                return va + delta
        return None

    def _cache_granule(self, va, pa):
        granule = va & ~0xFFF
        self._tcache[va >> 12] = (pa - va, granule + 4096)

    def invalidate_translations(self):
        """Drop the translation micro-cache.

        Must be called by any code that mutates page state without
        going through this class's methods (the PTSB re-arming a page
        after commit, the PTSB-everywhere ablation flipping whole
        mappings to PRIVATE); the mmap/protect/split methods here
        already do it themselves.
        """
        self._tcache.clear()

    def translate(self, va, width, is_write):
        """Translate an access; services faults; returns :class:`Translation`.

        Raises :class:`SegmentationFault` for unmapped addresses or
        un-serviceable permission violations.
        """
        mapping = self.mapping_at(va)
        if mapping is None:
            raise SegmentationFault(va, is_write, "unmapped")
        if va + width > mapping.end:
            raise SegmentationFault(va, is_write, "access crosses mapping end")
        index = mapping.page_index(va)
        if mapping.page_index(va + width - 1) != index:
            raise SegmentationFault(va, is_write, "access crosses page")
        state = mapping.page_state(index)
        result = Translation(pa=0)

        if not state.touched:
            state.touched = True
            kind = "shared_file" if mapping.backing.file_backed else "anon"
            result.cost += (self.costs.fault_shared_file
                            if kind == "shared_file"
                            else self.costs.fault_anon)
            result.faults.append((kind, mapping.start
                                  + index * mapping.page_size,
                                  mapping.page_size))
            self.fault_count[kind] += 1

        shared_pa = mapping.backing.page_pa(
            mapping.backing_offset + index * mapping.page_size)

        if state.mode == SHARED:
            if is_write and not state.writable:
                raise SegmentationFault(va, True, "write to read-only page")
            result.pa = shared_pa + (va - mapping.start
                                     - index * mapping.page_size)
            if state.writable:
                self._cache_granule(va, result.pa)
            return result

        # PRIVATE page
        if state.private_pa == 0:
            if not is_write:
                # reads before the copy still reference the shared frame
                result.pa = shared_pa + (va - mapping.start
                                         - index * mapping.page_size)
                return result
            # copy-on-write fault
            state.private_pa = self.physmem.alloc(mapping.page_size)
            self.physmem.copy_page(shared_pa, state.private_pa,
                                   mapping.page_size)
            self.private_bytes += mapping.page_size
            result.cost += self.costs.fault_cow
            result.cost += int(self.costs.copy_per_byte * mapping.page_size)
            result.faults.append(("cow", mapping.start
                                  + index * mapping.page_size,
                                  mapping.page_size))
            self.fault_count["cow"] += 1
            if self.cow_hook is not None:
                extra = self.cow_hook(self, mapping, index, shared_pa,
                                      state.private_pa)
                if extra:
                    result.cost += extra
            state.writable = True
        result.pa = state.private_pa + (va - mapping.start
                                        - index * mapping.page_size)
        # post-COW private frames translate identically for reads and
        # writes, so the granule is steady state
        self._cache_granule(va, result.pa)
        return result

    def shared_pa(self, va):
        """Physical address of ``va`` through the always-shared mapping.

        This is the paper's *first* mapping (Figure 6): always process-
        shared and writable, used by the runtime for diffs and merges
        regardless of per-process protection.
        """
        mapping = self._require(va)
        index = mapping.page_index(va)
        base = mapping.backing.page_pa(
            mapping.backing_offset + index * mapping.page_size)
        return base + (va - mapping.start - index * mapping.page_size)

    def private_pa(self, va):
        """Physical address of ``va``'s private frame, or None."""
        mapping = self._require(va)
        state = mapping.page_state(mapping.page_index(va))
        if not state.private_pa:
            return None
        index = mapping.page_index(va)
        return state.private_pa + (va - mapping.start
                                   - index * mapping.page_size)

    # ------------------------------------------------------------------
    # fork
    # ------------------------------------------------------------------
    def fork(self, name):
        """Clone this address space for a new process."""
        child = AddressSpace(self.physmem, self.costs, name)
        child.cow_hook = self.cow_hook
        for mapping in self._maps:
            cloned = mapping.clone(self.physmem)
            index = bisect.bisect_left(child._starts, cloned.start)
            child._starts.insert(index, cloned.start)
            child._maps.insert(index, cloned)
            for state in cloned.pages.values():
                if state.private_pa:
                    child.private_bytes += mapping.page_size
        return child

    def _require(self, va):
        mapping = self.mapping_at(va)
        if mapping is None:
            raise SegmentationFault(va, False, "unmapped")
        return mapping
