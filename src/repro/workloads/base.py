"""Workload framework.

Each workload mirrors the property the paper's evaluation relies on for
its namesake benchmark: its memory footprint class, synchronization
rate, use of atomics/inline assembly/volatile flags, and — for the
false-sharing suite — the specific layout bug and its manual fix.

A workload builds a fresh :class:`~repro.engine.program.Program` per
run.  ``variant="fixed"`` is the manual source fix (padding or
alignment); ``variant="default"`` forces the mis-aligned or packed
layout the paper injects so the bug manifests deterministically
(section 4.3: "we force the discovered false sharing behavior by
requiring a mis-aligned allocation when appropriate").
"""

from repro.engine.program import Program, WorkloadFeatures
from repro.isa.binary import Binary

MB = 1024 * 1024
GB = 1024 * MB

#: Canonical variants.
DEFAULT = "default"
FIXED = "fixed"


def spawn_join(t, nworkers, worker):
    """pthread_create/join scaffold for ``nworkers`` threads."""
    tids = []
    for i in range(nworkers):
        tid = yield from t.spawn(worker, f"w{i}")
        tids.append(tid)
    for tid in tids:
        yield from t.join(tid)


def worker_index(ctx, base_tid=1):
    """0-based worker index (main thread is tid 0)."""
    return ctx.tid - base_tid


class Workload:
    """Base class; subclasses define the program body."""

    #: Unique short name (Figure 7 x-axis label).
    name = "base"
    #: Benchmark suite: 'parsec' | 'phoenix' | 'splash2x' | 'app' | 'micro'.
    suite = "none"
    nthreads = 4
    #: Declared native-input footprint (Figures 8 and 10).
    footprint = 10 * MB
    heap_bytes = 1 * GB
    uses_atomics = False
    uses_asm = False
    uses_volatile_flags = False
    has_false_sharing = False
    has_true_sharing = False
    sync_rate = "low"
    #: Host-time knob: scales iteration counts uniformly.
    scale = 1.0

    def __init__(self, scale=None, nthreads=None):
        if scale is not None:
            self.scale = scale
        if nthreads is not None:
            self.nthreads = nthreads

    # ------------------------------------------------------------------
    def build(self, variant=DEFAULT):
        """Construct a fresh Program for one run."""
        binary = Binary(self.name)
        env = {}
        main = self.body(binary, env, variant)
        program = Program(
            name=self.name, binary=binary, main=main,
            nthreads=self.nthreads,
            features=WorkloadFeatures(
                uses_atomics=self.uses_atomics,
                uses_asm=self.uses_asm,
                uses_volatile_flags=self.uses_volatile_flags,
                has_false_sharing=(self.has_false_sharing
                                   and variant == DEFAULT),
                has_true_sharing=self.has_true_sharing,
                footprint_bytes=self.footprint,
                sync_rate=self.sync_rate,
            ),
            heap_bytes=self.heap_bytes,
            env=env,
        )
        validate = getattr(self, "validate", None)
        if validate is not None:
            program.validate = validate
        return program

    def body(self, binary, env, variant):
        """Return the main generator function ``main(ctx)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # final-state oracle (schedule fuzzing / metamorphic testing)
    # ------------------------------------------------------------------
    #: env keys whose final values are schedule-independent program
    #: results (commutative reductions, per-thread-disjoint outputs,
    #: invariant-checked totals).  Address-valued keys must stay out:
    #: allocation addresses legitimately differ across runtimes and
    #: malloc interleavings.
    result_env_keys = ()

    def final_state(self, env, engine):
        """Digest of the program's schedule-independent final state.

        The fuzz driver and the metamorphic tests compare this digest
        across scheduling policies and across runtimes (pthreads vs
        TMI-repaired): for a race-free workload whose shared updates
        commute, it must be identical for every legal interleaving.
        Overrides may read memory back through
        ``engine.read_memory`` — a debug view that charges no cycles.
        """
        return {key: env.get(key) for key in self.result_env_keys}

    def read_words(self, engine, base, count, stride, width=8):
        """Read ``count`` integers from the final shared memory image
        (helper for :meth:`final_state` overrides)."""
        return [engine.read_memory(base + i * stride, width)
                for i in range(count)]

    def iters(self, n):
        """Scale an iteration count by the workload's scale factor."""
        return max(1, int(n * self.scale))

    def __repr__(self):
        return f"<Workload {self.name} ({self.suite})>"
