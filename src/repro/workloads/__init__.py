"""Workloads: synthetic kernels mirroring the paper's 35 benchmarks."""

from repro.workloads.base import DEFAULT, FIXED, Workload
from repro.workloads.registry import (all_names, figure7_names, get,
                                      has, repair_suite_names)

__all__ = ["DEFAULT", "FIXED", "Workload", "all_names", "figure7_names",
           "get", "has", "repair_suite_names"]
