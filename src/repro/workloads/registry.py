"""Workload registry: every Figure 7 column plus the correctness-only
cholesky kernel and the racy-flag sanitizer control."""

from repro.workloads.apps import LevelDB
from repro.workloads.boost import MICROS
from repro.workloads.clique import CliqueCounters
from repro.workloads.parsec import PARSEC
from repro.workloads.phoenix import PHOENIX
from repro.workloads.racy import RacyCounters, RacyFlag
from repro.workloads.splash2x import Cholesky, SPLASH2X

#: The nine workloads of Figure 9 (automatic repair), in paper order.
REPAIR_SUITE = ("histogram", "histogramfs", "lreg", "stringmatch",
                "lu-ncb", "leveldb-fs", "spinlockpool", "shptr-relaxed",
                "shptr-lock")


def _build_registry():
    registry = {}
    for cls in PARSEC + PHOENIX + SPLASH2X + MICROS:
        workload = cls()
        registry[workload.name] = cls
    registry["leveldb"] = LevelDB
    registry["cholesky"] = Cholesky
    registry["racy-flag"] = RacyFlag
    registry["racy-counters"] = RacyCounters
    registry["clique-counters"] = CliqueCounters
    return registry


_REGISTRY = _build_registry()


def get(name, **kwargs):
    """Instantiate a workload by its Figure 7 name."""
    if name == "leveldb-fs":
        return LevelDB(inject_bug=True, **kwargs)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {sorted(_REGISTRY)}")
    return cls(**kwargs)


def has(name):
    """Whether ``name`` resolves in the registry (aliases included).

    The campaign-spec validator uses this to reject unknown workloads
    at submission time instead of deep inside a worker process.
    """
    return name == "leveldb-fs" or name in _REGISTRY


def figure7_names():
    """The 35 workloads of Figures 7, 8, and 10, in paper order."""
    parsec = [c().name for c in PARSEC]
    phoenix = [c().name for c in PHOENIX]
    splash = [c().name for c in SPLASH2X]
    micros = [c().name for c in MICROS]
    return parsec + phoenix + splash + ["leveldb"] + micros


def repair_suite_names():
    return list(REPAIR_SUITE)


def all_names():
    return figure7_names() + ["leveldb-fs", "cholesky", "racy-flag",
                              "racy-counters", "clique-counters"]
