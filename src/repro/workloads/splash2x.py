"""Splash2x workloads (Woo et al., ISCA'95).

Traits the paper leans on: lu-ncb's false sharing in the daxpy input
array that an allocator change alone repairs (section 4.3), ocean-ncp's
27 GB native footprint (far beyond Sheriff's reach, and the largest
page-fault load in Figure 10), the suite's barrier-heavy phase
structure, and cholesky's volatile-flag synchronization — the Figure 12
correctness case, which hangs under a PTSB without code-centric
consistency and is excluded from the timing suites (as in the paper).
"""

from repro.workloads.base import (FIXED, GB, MB, Workload, spawn_join,
                                  worker_index)


class _BarrierPhases(Workload):
    """Shared scaffold for the barrier-phased scientific kernels.

    Subclasses tune footprint, phase count, per-phase compute, and
    streamed bytes; each adds its own twist on top.
    """

    suite = "splash2x"
    phases = 12
    compute_per_phase = 30_000
    #: Per-worker working-set window streamed each phase.  Inputs are
    #: globally scaled ~1000x down from native, so the bytes a run
    #: actually faults in scale the same way; the declared footprint
    #: (Figure 8) stays at native size.
    touch_window = 128 * 1024

    def body(self, binary, env, variant):
        ld = binary.load_site("read_grid", 8)
        st = binary.store_site("write_grid", 8)
        nworkers = self.nthreads
        phases = self.iters(self.phases)
        window = self.touch_window

        def main(t):
            data = yield from t.malloc(
                min(self.footprint, self.heap_bytes // 2), align=4096)
            bar = yield from t.barrier(nworkers, "phase")

            def worker(w):
                wi = worker_index(w)
                mine = data + wi * window
                for p in range(phases):
                    yield from w.bulk_touch(mine, window, site=ld)
                    yield from w.compute(self.compute_per_phase)
                    yield from w.bulk_touch(mine, window // 4,
                                            is_write=True, site=st)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Barnes(_BarrierPhases):
    """N-body tree: tree-build locks on top of barrier phases."""

    name = "barnes"
    footprint = 300 * MB
    heap_bytes = 1 * GB
    sync_rate = "medium"
    phases = 10

    def body(self, binary, env, variant):
        base_main = super().body(binary, env, variant)
        ld = binary.load_site("read_body", 8)
        st = binary.store_site("insert_body", 8)
        nworkers = self.nthreads
        inserts = self.iters(120)

        def main(t):
            tree_lock = yield from t.mutex("tree")
            tree = yield from t.malloc(1 * MB, align=64)

            def builder(w):
                wi = worker_index(w)
                for i in range(inserts):
                    yield from w.compute(2_000)
                    yield from w.lock(tree_lock)
                    addr = tree + ((i * 37 + wi) % 4096) * 64
                    value = yield from w.load(addr, 8, site=ld)
                    yield from w.store(addr, value + 1, 8, site=st)
                    yield from w.unlock(tree_lock)

            yield from spawn_join(t, nworkers, builder)
            yield from base_main(t)

        return main


class FFT(_BarrierPhases):
    name = "fft"
    footprint = 800 * MB
    heap_bytes = 2 * GB
    phases = 8
    touch_window = 256 * 1024
    compute_per_phase = 60_000


class FMM(_BarrierPhases):
    name = "fmm"
    footprint = 400 * MB
    heap_bytes = 1 * GB
    phases = 10
    touch_window = 256 * 1024
    compute_per_phase = 45_000


class LuCb(_BarrierPhases):
    """Contiguous-block LU: block-private writes, no false sharing."""

    name = "lu-cb"
    footprint = 512 * MB
    heap_bytes = 1 * GB
    phases = 14
    touch_window = 128 * 1024
    compute_per_phase = 35_000


class LuNcb(Workload):
    """Non-contiguous-block LU.

    The daxpy input array is carved so consecutive threads' partitions
    straddle cache lines (the baseline allocator hands out 16-byte
    alignment).  The paper notes this bug is repaired by the allocator
    change alone — TMI's shared-region allocator rounds large blocks to
    64 bytes — so ``tmi-alloc`` already fixes it."""

    name = "lu-ncb"
    suite = "splash2x"
    footprint = 512 * MB
    heap_bytes = 1 * GB
    has_false_sharing = True
    steps = 110

    def body(self, binary, env, variant):
        ld = binary.load_site("daxpy_load", 8)
        st = binary.store_site("daxpy_store", 8)
        nworkers = self.nthreads
        steps = self.iters(self.steps)
        # per-thread partition of one 64-byte block; whether partitions
        # straddle lines is decided purely by the *base* alignment
        part = 64
        from repro.workloads.base import FIXED as _FIXED
        explicit_align = 64 if variant == _FIXED else 0

        def main(t):
            # the allocator decides the base alignment: the baseline
            # Lockless config returns 16-mod-64 addresses for large
            # blocks (partitions straddle lines); TMI's shared allocator
            # returns line-aligned ones, repairing the bug by itself.
            # The manual fix requests the alignment explicitly.
            daxpy = yield from t.malloc(256 * 1024, align=explicit_align)
            matrix = yield from t.malloc(48 * MB, align=4096)
            bar = yield from t.barrier(nworkers, "step")
            env["daxpy_base"] = daxpy

            def worker(w):
                wi = worker_index(w)
                base = daxpy + wi * part
                for s in range(steps):
                    yield from w.bulk_touch(
                        matrix + wi * (192 * 1024), 192 * 1024, site=ld)
                    for i in range(120):
                        off = (i % 8) * 8
                        value = yield from w.load(base + off, 8, site=ld)
                        yield from w.store(base + off, value + s, 8,
                                           site=st)
                        yield from w.compute(45)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main

    def final_state(self, env, engine):
        # each worker owns one 64-byte daxpy partition (8 words) and
        # accumulates a deterministic series into it
        return {"daxpy": [
            self.read_words(engine, env["daxpy_base"] + wi * 64, 8, 8)
            for wi in range(self.nthreads)]}


class OceanCp(_BarrierPhases):
    name = "ocean-cp"
    footprint = 1536 * MB
    heap_bytes = 3 * GB
    phases = 8
    touch_window = 320 * 1024
    compute_per_phase = 40_000


class OceanNcp(_BarrierPhases):
    """27 GB native footprint: the heaviest page-fault load (Fig. 10)."""

    name = "ocean-ncp"
    footprint = 27 * GB
    heap_bytes = 28 * GB
    phases = 6
    touch_window = 384 * 1024
    compute_per_phase = 50_000


class Radiosity(Workload):
    """Hierarchical radiosity: a lock-protected task queue."""

    name = "radiosity"
    suite = "splash2x"
    footprint = 300 * MB
    heap_bytes = 1 * GB
    sync_rate = "high"
    tasks = 420

    def body(self, binary, env, variant):
        ld = binary.load_site("read_patch", 8)
        st = binary.store_site("write_energy", 8)
        nworkers = self.nthreads
        tasks = self.iters(self.tasks)

        def main(t):
            patches = yield from t.malloc(128 * MB, align=4096)
            queue_lock = yield from t.mutex("taskq")

            def worker(w):
                wi = worker_index(w)
                for i in range(tasks):
                    yield from w.lock(queue_lock)
                    yield from w.unlock(queue_lock)
                    yield from w.bulk_touch(
                        patches + ((i * 7 + wi) % 16) * (64 * 1024),
                        64 * 1024, site=ld)
                    yield from w.compute(7_000)
                    yield from w.bulk_touch(
                        patches + (16 + wi) * (64 * 1024), 64 * 1024,
                        is_write=True, site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class Radix(_BarrierPhases):
    name = "radix"
    footprint = 2 * GB
    heap_bytes = 4 * GB
    phases = 7
    touch_window = 256 * 1024
    compute_per_phase = 25_000


class Raytrace(Workload):
    """Read-mostly scene + a work-queue lock."""

    name = "raytrace"
    suite = "splash2x"
    footprint = 300 * MB
    heap_bytes = 1 * GB
    sync_rate = "medium"
    tiles = 260

    def body(self, binary, env, variant):
        ld = binary.load_site("read_scene", 8)
        st = binary.store_site("write_pixel", 8)
        nworkers = self.nthreads
        tiles = self.iters(self.tiles)

        def main(t):
            scene = yield from t.malloc(192 * MB, align=4096)
            frame = yield from t.malloc(32 * MB, align=4096)
            work_lock = yield from t.mutex("work")

            def worker(w):
                wi = worker_index(w)
                for i in range(tiles):
                    yield from w.lock(work_lock)
                    yield from w.unlock(work_lock)
                    yield from w.bulk_touch(
                        scene + ((i * 11 + wi) % 12) * (128 * 1024),
                        128 * 1024, site=ld)
                    yield from w.compute(12_000)
                    yield from w.bulk_touch(
                        frame + wi * (64 * 1024), 64 * 1024,
                        is_write=True, site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class Volrend(_BarrierPhases):
    name = "volrend"
    footprint = 160 * MB
    heap_bytes = 1 * GB
    phases = 16
    touch_window = 64 * 1024
    compute_per_phase = 22_000


class WaterNsquare(_BarrierPhases):
    name = "water-nsquare"
    footprint = 480 * MB
    heap_bytes = 1 * GB
    phases = 10
    touch_window = 64 * 1024
    compute_per_phase = 38_000


class WaterSpatial(Workload):
    """Spatial-decomposition water: a lock per spatial cell (like
    fluidanimate, the pshared shadow cost shows in Figure 8)."""

    name = "water-spatial"
    suite = "splash2x"
    footprint = 480 * MB
    heap_bytes = 1 * GB
    sync_rate = "high"
    ncells = 800
    steps = 16

    def body(self, binary, env, variant):
        ld = binary.load_site("read_mol", 8)
        st = binary.store_site("write_mol", 8)
        nworkers = self.nthreads
        # native inputs have orders of magnitude more cells; the lock
        # count scales with the input so one-time init costs stay
        # proportionate
        ncells = max(16 * self.nthreads, self.iters(self.ncells))
        steps = max(1, self.iters(self.steps))

        def main(t):
            cells = yield from t.malloc(64 * MB, align=4096)
            locks = []
            for c in range(ncells):
                lock = yield from t.mutex(f"cell{c}")
                locks.append(lock)
            bar = yield from t.barrier(nworkers, "step")

            def worker(w):
                wi = worker_index(w)
                span = ncells // nworkers
                for s in range(steps):
                    for c in range(wi * span, (wi + 1) * span, 3):
                        yield from w.lock(locks[c])
                        addr = cells + c * 4096
                        value = yield from w.load(addr, 8, site=ld)
                        yield from w.store(addr, value + 1, 8, site=st)
                        yield from w.unlock(locks[c])
                        yield from w.compute(900)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Cholesky(Workload):
    """Figure 12: flag-based synchronization with C ``volatile``.

    T0 spins while ``flag`` is true; T1 clears it, then both meet at a
    barrier.  Under a PTSB without code-centric consistency T0 never
    sees the update in its private page and the program hangs.  The
    paper excludes cholesky from timing (400 ms, unscalable input); we
    keep it for the correctness study only."""

    name = "cholesky"
    suite = "splash2x"
    footprint = 30 * MB
    uses_volatile_flags = True
    max_spins = 4_000

    def body(self, binary, env, variant):
        ld_f = binary.load_site("flag_read", 4)
        st_f = binary.store_site("flag_write", 4)
        st_d = binary.store_site("factor_write", 8)
        nworkers = 2
        max_spins = self.max_spins

        def main(t):
            flags = yield from t.malloc(4096, align=64)
            flag = flags + 128
            yield from t.store(flag, 1, 4, site=st_f)
            bar = yield from t.barrier(nworkers, "sync")
            env["flag"] = flag

            def waiter(w):
                # dirty the flag's page first so a whole-memory PTSB
                # gives this thread a stale private copy (mf.C:135)
                yield from w.store(flags + 8, w.tid, 8, site=st_d)
                yield from w.spin_while_equal(flag, 1, 4, site=ld_f,
                                              max_spins=max_spins)
                yield from w.barrier_wait(bar)

            def clearer(w):
                yield from w.compute(40_000)       # do a factor step
                yield from w.volatile_store(flag, 0, 4, site=st_f)
                yield from w.barrier_wait(bar)

            tid0 = yield from t.spawn(waiter, "waiter")
            tid1 = yield from t.spawn(clearer, "clearer")
            yield from t.join(tid0)
            yield from t.join(tid1)
            env["completed"] = True

        return main

    def build(self, variant=FIXED):
        program = super().build(variant)
        program.nthreads = 2
        return program


SPLASH2X = (Barnes, FFT, FMM, LuCb, LuNcb, OceanCp, OceanNcp, Radiosity,
            Radix, Raytrace, Volrend, WaterNsquare, WaterSpatial)
