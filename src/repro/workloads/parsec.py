"""PARSEC 3.0 workloads (Bienia '11).

Traits the paper leans on: canneal's atomic pointer swaps through
inline assembly (the Figure 11 correctness case — Sheriff corrupts its
result), dedup's openssl assembly and queue-heavy pipeline,
fluidanimate's ocean of fine-grained locks (TMI's pshared redirection
cost shows in Figure 8), and the suite's native-input footprints that
Sheriff's whole-heap protection cannot handle.
"""

from repro.workloads.base import (FIXED, GB, MB, Workload, spawn_join,
                                  worker_index)


class Blackscholes(Workload):
    """Embarrassingly parallel option pricing: private chunks only."""

    name = "blackscholes"
    suite = "parsec"
    footprint = 600 * MB
    heap_bytes = 1 * GB
    options = 90

    def body(self, binary, env, variant):
        ld = binary.load_site("read_option", 8)
        st = binary.store_site("write_price", 8)
        nworkers = self.nthreads
        options = self.iters(self.options)

        def main(t):
            data = yield from t.malloc(512 * MB, align=4096)
            prices = yield from t.malloc(64 * MB, align=4096)

            def worker(w):
                wi = worker_index(w)
                window = 192 * 1024
                mine = data + wi * window
                out = prices + wi * (64 * 1024)
                for i in range(options):
                    yield from w.bulk_touch(mine, window, site=ld)
                    yield from w.compute(40_000)      # CNDF evaluation
                    yield from w.bulk_touch(out, 64 * 1024,
                                            is_write=True, site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class Bodytrack(Workload):
    """Particle filter: barrier-phased rounds with a shared model."""

    name = "bodytrack"
    suite = "parsec"
    footprint = 400 * MB
    heap_bytes = 1 * GB
    sync_rate = "medium"
    frames = 24

    def body(self, binary, env, variant):
        ld = binary.load_site("read_frame", 8)
        st = binary.store_site("write_particle", 8)
        nworkers = self.nthreads
        frames = self.iters(self.frames)

        def main(t):
            video = yield from t.malloc(256 * MB, align=4096)
            particles = yield from t.malloc(8 * MB, align=4096)
            bar = yield from t.barrier(nworkers, "frame")

            def worker(w):
                wi = worker_index(w)
                window = 256 * 1024
                for f in range(frames):
                    yield from w.bulk_touch(
                        video + wi * window, window, site=ld)
                    yield from w.compute(60_000)
                    yield from w.bulk_touch(
                        particles + wi * (64 * 1024), 64 * 1024,
                        is_write=True, site=st)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Canneal(Workload):
    """Simulated annealing with lock-free element swaps.

    The swaps use atomic exchanges implemented with inline assembly
    (the paper found 6 instances).  Under a PTSB without code-centric
    consistency the swaps don't synchronize through shared memory and
    elements are lost or duplicated (Figure 11) — ``validate`` checks
    the grid is still a permutation."""

    name = "canneal"
    suite = "parsec"
    footprint = 200 * MB
    heap_bytes = 1 * GB
    uses_asm = True
    uses_atomics = True
    swaps = 700
    elements = 256

    def body(self, binary, env, variant):
        ld = binary.load_site("read_netlist", 8)
        cas = binary.atomic_site("elem_lock_cas", 8)
        a_ld = binary.atomic_site("swap_load", 8)
        a_st = binary.atomic_site("swap_store", 8)
        nworkers = self.nthreads
        swaps = self.iters(self.swaps)
        elements = self.elements

        def main(t):
            netlist = yield from t.malloc(128 * MB, align=4096)
            grid = yield from t.malloc(elements * 8, align=64)
            elocks = yield from t.malloc(elements * 8, align=64)
            env["grid"] = grid
            env["elements"] = elements
            for i in range(elements):
                yield from t.store(grid + i * 8, i + 1, 8)

            def acquire(w, lock_addr):
                for _ in range(50_000):
                    old = yield from w.atomic_cas(lock_addr, 0, 1, 8,
                                                  site=cas)
                    if old == 0:
                        return
                    yield from w.compute(60)
                raise AssertionError("canneal element lock livelock")

            def worker(w):
                wi = worker_index(w)
                for s in range(swaps):
                    if s % 64 == 0:
                        yield from w.bulk_touch(
                            netlist + wi * (256 * 1024), 256 * 1024,
                            site=ld)
                    h = (s * 48271 + wi * 1009) & 0x7FFFFFFF
                    i, j = h % elements, (h // 7) % elements
                    if i == j:
                        continue
                    i, j = min(i, j), max(i, j)
                    yield from w.compute(900)     # routing cost estimate
                    # lock-free-style swap via inline-assembly atomics:
                    # CAS element locks, exchange, release
                    yield from w.asm_begin()
                    yield from acquire(w, elocks + i * 8)
                    yield from acquire(w, elocks + j * 8)
                    va = yield from w.atomic_load(grid + i * 8, 8,
                                                  site=a_ld)
                    vb = yield from w.atomic_load(grid + j * 8, 8,
                                                  site=a_ld)
                    yield from w.atomic_store(grid + i * 8, vb, 8,
                                              site=a_st)
                    yield from w.atomic_store(grid + j * 8, va, 8,
                                              site=a_st)
                    yield from w.atomic_store(elocks + j * 8, 0, 8,
                                              site=a_st)
                    yield from w.atomic_store(elocks + i * 8, 0, 8,
                                              site=a_st)
                    yield from w.asm_end()

            yield from spawn_join(t, nworkers, worker)
            seen = yield from t.load_run(grid, elements, 8, 8)
            env["final_grid"] = seen

        return main

    def validate(self, env, engine):
        grid = sorted(env["final_grid"])
        expected = list(range(1, env["elements"] + 1))
        assert grid == expected, (
            "canneal grid corrupted: elements lost or duplicated "
            f"({len(set(grid))} unique of {env['elements']})")


class Dedup(Workload):
    """Deduplication pipeline: queue locks, openssl SHA assembly,
    allocation churn; 1.5 GB native footprint."""

    name = "dedup"
    suite = "parsec"
    footprint = 1536 * MB
    heap_bytes = 3 * GB
    uses_asm = True
    sync_rate = "high"
    chunks = 700

    def body(self, binary, env, variant):
        ld = binary.load_site("read_chunk", 8)
        st = binary.store_site("write_hash", 8)
        nworkers = self.nthreads
        chunks = self.iters(self.chunks)

        def main(t):
            data = yield from t.malloc(1 * GB, align=4096)
            hashes = yield from t.malloc(1 * MB, align=64)
            queue_lock = yield from t.mutex("queue")

            def worker(w):
                wi = worker_index(w)
                for c in range(chunks):
                    yield from w.lock(queue_lock)      # pop work item
                    yield from w.unlock(queue_lock)
                    yield from w.bulk_touch(
                        data + wi * (256 * 1024) , 256 * 1024, site=ld)
                    # SHA1 via openssl inline assembly
                    yield from w.asm_begin()
                    yield from w.compute(6_000)
                    yield from w.store(hashes + ((c * 5 + wi) % 1024) * 64,
                                       c, 8, site=st)
                    yield from w.asm_end()
                    buf = yield from w.malloc(1024)
                    yield from w.free(buf)
                    yield from w.lock(queue_lock)      # push result
                    yield from w.unlock(queue_lock)

            yield from spawn_join(t, nworkers, worker)

        return main


class Facesim(Workload):
    """Physics phases over a large mesh, barrier synchronized."""

    name = "facesim"
    suite = "parsec"
    footprint = 800 * MB
    heap_bytes = 2 * GB
    sync_rate = "medium"
    frames = 16

    def body(self, binary, env, variant):
        ld = binary.load_site("read_mesh", 8)
        st = binary.store_site("write_forces", 8)
        nworkers = self.nthreads
        frames = self.iters(self.frames)

        def main(t):
            mesh = yield from t.malloc(512 * MB, align=4096)
            bar = yield from t.barrier(nworkers, "phase")

            def worker(w):
                wi = worker_index(w)
                for f in range(frames):
                    for phase in range(3):
                        yield from w.bulk_touch(
                            mesh + wi * (768 * 1024)
                            + phase * (256 * 1024), 256 * 1024, site=ld)
                        yield from w.compute(45_000)
                        yield from w.bulk_touch(
                            mesh + wi * (768 * 1024), 64 * 1024,
                            is_write=True, site=st)
                        yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Ferret(Workload):
    """Similarity-search pipeline: stage queues under locks."""

    name = "ferret"
    suite = "parsec"
    footprint = 500 * MB
    heap_bytes = 1 * GB
    sync_rate = "high"
    queries = 260

    def body(self, binary, env, variant):
        ld = binary.load_site("read_image", 8)
        st = binary.store_site("write_rank", 8)
        nworkers = self.nthreads
        queries = self.iters(self.queries)

        def main(t):
            database = yield from t.malloc(384 * MB, align=4096)
            ranks = yield from t.malloc(1 * MB, align=64)
            stage_locks = []
            for s in range(3):
                lock = yield from t.mutex(f"stage{s}")
                stage_locks.append(lock)

            def worker(w):
                wi = worker_index(w)
                for q in range(queries):
                    for lock in stage_locks:
                        yield from w.lock(lock)
                        yield from w.unlock(lock)
                    yield from w.bulk_touch(
                        database + ((q * 13 + wi) % 24) * (64 * 1024),
                        64 * 1024, site=ld)
                    yield from w.compute(14_000)
                    yield from w.store(ranks + ((q + wi * 251) % 2048) * 64,
                                       q, 8, site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class Fluidanimate(Workload):
    """Grid-cell fluid simulation with thousands of fine-grained locks.

    TMI must shadow every lock in process-shared memory, which is why
    fluidanimate's memory overhead stands out in Figure 8."""

    name = "fluidanimate"
    suite = "parsec"
    footprint = 500 * MB
    heap_bytes = 1 * GB
    sync_rate = "high"
    ncells = 1200
    steps = 10

    def body(self, binary, env, variant):
        ld = binary.load_site("read_cell", 8)
        st = binary.store_site("write_cell", 8)
        nworkers = self.nthreads
        # native inputs have orders of magnitude more cells; the lock
        # count scales with the input so one-time init costs stay
        # proportionate
        ncells = max(16 * self.nthreads, self.iters(self.ncells))
        steps = max(1, self.iters(self.steps))

        def main(t):
            cells = yield from t.malloc(256 * MB, align=4096)
            locks = []
            for c in range(ncells):
                lock = yield from t.mutex(f"cell{c}")
                locks.append(lock)
            bar = yield from t.barrier(nworkers, "step")

            def worker(w):
                wi = worker_index(w)
                span = ncells // nworkers
                for s in range(steps):
                    for c in range(wi * span, (wi + 1) * span, 2):
                        lock = locks[c]
                        yield from w.lock(lock)
                        addr = cells + c * 4096
                        value = yield from w.load(addr, 8, site=ld)
                        yield from w.store(addr, value + 1, 8, site=st)
                        yield from w.unlock(lock)
                        yield from w.compute(700)
                    yield from w.bulk_touch(
                        cells + wi * (128 * 1024), 128 * 1024, site=ld)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Streamcluster(Workload):
    """Online clustering: read-mostly shared centers + barriers."""

    name = "streamcluster"
    suite = "parsec"
    footprint = 110 * MB
    heap_bytes = 1 * GB
    has_true_sharing = True
    sync_rate = "medium"
    rounds = 14

    def body(self, binary, env, variant):
        ld = binary.load_site("read_point", 8)
        ld_c = binary.load_site("read_center", 8)
        st_c = binary.store_site("open_center", 8)
        nworkers = self.nthreads
        rounds = self.iters(self.rounds)

        def main(t):
            points = yield from t.malloc(64 * MB, align=4096)
            centers = yield from t.malloc(4096, align=64)
            cost_lock = yield from t.mutex("cost")
            bar = yield from t.barrier(nworkers, "round")

            def worker(w):
                wi = worker_index(w)
                for r in range(rounds):
                    yield from w.bulk_touch(
                        points + wi * (192 * 1024), 192 * 1024, site=ld)
                    for i in range(40):
                        yield from w.load(centers + (i % 8) * 64, 8,
                                          site=ld_c)
                        yield from w.compute(600)
                    yield from w.lock(cost_lock)
                    value = yield from w.load(centers, 8, site=ld_c)
                    yield from w.store(centers, value + 1, 8, site=st_c)
                    yield from w.unlock(cost_lock)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class Swaptions(Workload):
    """Monte-Carlo swaption pricing: tiny footprint, pure compute."""

    name = "swaptions"
    suite = "parsec"
    footprint = 5 * MB
    swaptions = 32

    def body(self, binary, env, variant):
        ld = binary.load_site("read_swaption", 8)
        st = binary.store_site("write_value", 8)
        nworkers = self.nthreads
        swaptions = self.iters(self.swaptions)

        def main(t):
            data = yield from t.malloc(2 * MB, align=64)

            def worker(w):
                wi = worker_index(w)
                for s in range(swaptions):
                    yield from w.load(data + (wi * swaptions + s) * 128,
                                      8, site=ld)
                    yield from w.compute(90_000)      # MC simulations
                    yield from w.store(
                        data + (wi * swaptions + s) * 128 + 64, s, 8,
                        site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


PARSEC = (Blackscholes, Bodytrack, Canneal, Dedup, Facesim, Ferret,
          Fluidanimate, Streamcluster, Swaptions)
