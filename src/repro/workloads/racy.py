"""Deliberately racy micro-workload: the sanitizer's positive control.

A producer fills a payload buffer with plain stores and then raises a
C-``volatile`` flag; a consumer spins on the flag and reads the
payload.  ``volatile`` is not a synchronization primitive: it keeps the
compiler from caching the flag but establishes no happens-before, so
the payload accesses race (the classic broken double-checked handoff).
The ``fixed`` variant inserts full fences on both sides of the handoff,
which the simulator models as globally ordered — that is the
race-free companion the sanitizer must pass.

The race is benign under the simulator's sequential interleaving (the
payload values always arrive), so the run itself succeeds either way;
only the vector-clock analysis tells the variants apart.
"""

from repro.workloads.base import (DEFAULT, MB, Workload, spawn_join,
                                  worker_index)


class RacyFlag(Workload):
    """Volatile-flag payload handoff, fence-free by default."""

    name = "racy-flag"
    suite = "micro"
    nthreads = 2
    footprint = 1 * MB
    uses_volatile_flags = True
    has_true_sharing = True
    payload_words = 32
    rounds = 6
    max_spins = 50_000

    def body(self, binary, env, variant):
        ld = binary.load_site("payload_read", 8)
        st = binary.store_site("payload_write", 8)
        ld_f = binary.load_site("flag_read", 4)
        st_f = binary.store_site("flag_write", 4)
        fenced = variant != DEFAULT
        words = self.payload_words
        rounds = self.iters(self.rounds)
        max_spins = self.max_spins

        def main(t):
            buf = yield from t.malloc(4096, align=64)
            payload = buf                 # one line per round, below
            flag = buf + 2048             # far from every payload line
            env["payload"] = payload
            env["rounds"] = rounds

            def producer(w):
                for r in range(rounds):
                    base = payload + (r % 8) * 256
                    for i in range(words):
                        yield from w.store(base + i * 8, r * 100 + i, 8,
                                           site=st)
                    if fenced:
                        yield from w.fence()
                    yield from w.volatile_store(flag, r + 1, 4,
                                                site=st_f)

            def consumer(w):
                total = 0
                for r in range(rounds):
                    yield from w.spin_while_equal(
                        flag, r, 4, site=ld_f, max_spins=max_spins)
                    if fenced:
                        yield from w.fence()
                    base = payload + (r % 8) * 256
                    for i in range(words):
                        value = yield from w.load(base + i * 8, 8,
                                                  site=ld)
                        total += value
                env["consumed"] = total

            tid0 = yield from t.spawn(producer, "producer")
            tid1 = yield from t.spawn(consumer, "consumer")
            yield from t.join(tid0)
            yield from t.join(tid1)
            env["completed"] = True

        return main

    def validate(self, env, engine):
        assert env.get("completed"), "racy-flag did not complete"
        rounds = env["rounds"]
        words = self.payload_words
        expected = sum((r * 100 + i) for r in range(rounds)
                       for i in range(words))
        assert env.get("consumed") == expected, (
            f"consumer read {env.get('consumed')} != {expected}")

    #: The handoff is racy but value-deterministic in any legal
    #: interleaving that completes (the consumer spins until each round
    #: is published), so the totals are usable as an oracle.
    result_env_keys = ("consumed", "completed", "rounds")

    def build(self, variant=DEFAULT):
        program = super().build(variant)
        program.nthreads = 2
        return program


class RacyCounters(Workload):
    """Packed per-thread counters: the repair planner's positive control.

    Every worker read-modify-writes its own 8-byte counter, but the
    default layout packs all of them into one cache line -- the textbook
    injected false-sharing bug, with zero data races (each counter has
    exactly one toucher).  The planner must fix 100% of it: one falsely
    shared line, equal-length single-owner atoms, a per-thread split.
    The ``fixed`` variant strides the counters a line apart, which is
    precisely the layout the planner's rewrite synthesizes dynamically.
    """

    name = "racy-counters"
    suite = "micro"
    nthreads = 4
    footprint = 1 * MB
    has_false_sharing = True
    sync_rate = "low"
    # thread creation staggers worker start times by a few thousand
    # cycles each; the increment loops must outlast that stagger or the
    # workers never overlap and the "contended" line sees no
    # parallel-phase HITM at all (a vacuous positive control)
    increments = 8000

    def body(self, binary, env, variant):
        ld = binary.load_site("counter_read", 8)
        st = binary.store_site("counter_incr", 8)
        stride = 8 if variant == DEFAULT else 64
        nworkers = self.nthreads
        iters = self.iters(self.increments)

        def main(t):
            buf = yield from t.malloc(
                max(64, nworkers * stride) + 64, align=64)
            env["counters"] = buf
            env["stride"] = stride
            env["workers"] = nworkers
            env["iters"] = iters

            def worker(w):
                addr = buf + worker_index(w) * stride
                for _ in range(iters):
                    value = yield from w.load(addr, 8, site=ld)
                    yield from w.store(addr, value + 1, 8, site=st)

            yield from spawn_join(t, nworkers, worker)
            total = 0
            for index in range(nworkers):
                value = yield from t.load(buf + index * stride, 8,
                                          site=ld)
                total += value
            env["total"] = total

        return main

    def validate(self, env, engine):
        expected = env["workers"] * env["iters"]
        assert env.get("total") == expected, (
            f"counters sum to {env.get('total')} != {expected}")

    result_env_keys = ("total", "workers", "iters")

    def final_state(self, env, engine):
        state = super().final_state(env, engine)
        state["counters"] = tuple(self.read_words(
            engine, env["counters"], env["workers"], env["stride"]))
        return state
