"""Boost 1.62 microbenchmarks (paper section 4.1).

- ``spinlockpool``: the well-known false sharing bug in
  ``boost::detail::spinlock_pool`` — a static array of 41 small locks
  packed into a handful of cache lines.  Threads hammering *different*
  locks falsely share.  TMI's pthread_mutex redirection (a cache-line-
  sized shadow in process-shared memory) fixes it automatically.
- ``shptr-relaxed``: smart-pointer reference counts updated with
  relaxed atomics (Boost's default) on one page, while unrelated false
  sharing lives on a separate page.  Code-centric consistency lets the
  relaxed atomics run without PTSB flushes, so the repair keeps its
  4.4x benefit.
- ``shptr-lock``: the same program with mutex-protected refcounts:
  every lock/unlock commits the PTSB and the repair benefit collapses
  to ~4%.
"""

from repro.isa.ops import RELAXED
from repro.sync.objects import Mutex
from repro.workloads.base import (FIXED, MB, Workload, spawn_join,
                                  worker_index)


class SpinlockPool(Workload):
    """41 pool locks packed into adjacent cache lines."""

    name = "spinlockpool"
    suite = "micro"
    footprint = 8 * MB
    has_false_sharing = True
    sync_rate = "high"
    ops = 5_000
    pool_size = 41

    def body(self, binary, env, variant):
        ld = binary.load_site("read_obj", 8)
        st = binary.store_site("write_obj", 8)
        nworkers = self.nthreads
        ops = self.iters(self.ops)
        pool = self.pool_size
        # pthread_mutex_t is 40 bytes; the pool packs them; FIXED pads
        # each lock to its own line.
        stride = 64 if variant == FIXED else Mutex.SIZE
        objs_stride = 64

        def main(t):
            pool_mem = yield from t.malloc(stride * pool + 64, align=64)
            objects = yield from t.malloc(objs_stride * nworkers + 64,
                                          align=64)
            env["objects"] = objects
            env["objs_stride"] = objs_stride
            locks = []
            for i in range(pool):
                locks.append(t.mutex_at(pool_mem + i * stride,
                                        f"pool{i}"))

            def worker(w):
                wi = worker_index(w)
                obj = objects + wi * objs_stride
                value = 0
                for i in range(ops):
                    # boost hashes the object address into the pool: each
                    # thread's object lands on its own lock, but the
                    # packed locks of different threads share lines
                    lock = locks[(wi + (i % 2) * nworkers) % pool]
                    yield from w.lock(lock)
                    yield from w.compute(90)       # guarded read-side work
                    yield from w.unlock(lock)
                    if i % 64 == 0:
                        yield from w.store(obj, value, 8, site=st)
                    yield from w.compute(140)

            yield from spawn_join(t, nworkers, worker)

        return main

    def final_state(self, env, engine):
        # per-thread object slots, written only by their owner
        return {"objects": self.read_words(
            engine, env["objects"], self.nthreads,
            env["objs_stride"])}


class _SharedPtrBase(Workload):
    """Common scaffold: false sharing on one page, refcount traffic on
    another.  Subclasses choose the refcount protection."""

    suite = "micro"
    footprint = 8 * MB
    has_false_sharing = True
    ops = 14_000

    def body(self, binary, env, variant):
        ld = binary.load_site("load_slot", 8)
        st = binary.store_site("store_slot", 8)
        rc = binary.atomic_site("refcount", 8)
        nworkers = self.nthreads
        ops = self.iters(self.ops)
        stride = 64 if variant == FIXED else 8
        refcount_mutex = self.use_mutex

        def main(t):
            # page A: per-thread slots (falsely shared by default)
            slots = yield from t.malloc(4096, align=4096)
            # page B: the shared_ptr control block (one refcount that
            # every thread updates — genuine sharing)
            control = yield from t.malloc(4096, align=4096)
            env["refcount"] = control
            env["slots"] = slots
            env["slot_stride"] = stride
            rc_lock = None
            if refcount_mutex:
                rc_lock = yield from t.mutex("rc")

            def worker(w):
                wi = worker_index(w)
                slot = slots + wi * stride
                for i in range(ops):
                    value = yield from w.load(slot, 8, site=ld)
                    yield from w.store(slot, value + 1, 8, site=st)
                    value = yield from w.load(slot, 8, site=ld)
                    yield from w.store(slot, value ^ i, 8, site=st)
                    if i % 6 == 0:
                        # smart-pointer copy: bump the shared refcount
                        if refcount_mutex:
                            yield from w.lock(rc_lock)
                            v = yield from w.load(control, 8, site=ld)
                            yield from w.store(control, v + 1, 8,
                                               site=st)
                            yield from w.unlock(rc_lock)
                        else:
                            yield from w.atomic_add(
                                control, 1, 8, ordering=RELAXED,
                                site=rc)
                    yield from w.compute(110)

            yield from spawn_join(t, nworkers, worker)
            env["refcount_final"] = yield from t.load(control, 8,
                                                      site=ld)
            env["expected_refcount"] = nworkers * ((ops + 5) // 6)

        return main

    def validate(self, env, engine):
        assert env["refcount_final"] == env["expected_refcount"], (
            "shared_ptr refcount corrupted: "
            f"{env['refcount_final']} != {env['expected_refcount']}")

    #: The refcount is a commutative counter; slots are per-thread.
    result_env_keys = ("refcount_final", "expected_refcount")

    def final_state(self, env, engine):
        state = super().final_state(env, engine)
        state["slots"] = self.read_words(
            engine, env["slots"], self.nthreads, env["slot_stride"])
        return state


class SharedPtrRelaxed(_SharedPtrBase):
    """Relaxed-atomic refcounts (Boost's default on modern platforms)."""

    name = "shptr-relaxed"
    uses_atomics = True
    use_mutex = False


class SharedPtrLock(_SharedPtrBase):
    """Mutex-protected refcounts: every acquire/release commits the
    PTSB, negating the repair (paper: 1.04x)."""

    name = "shptr-lock"
    sync_rate = "high"
    use_mutex = True


MICROS = (SpinlockPool, SharedPtrRelaxed, SharedPtrLock)
