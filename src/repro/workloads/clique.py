"""Parity-clique counters: the placement grid's discriminating case.

Two disjoint sharing cliques whose members *interleave* by thread
index: even-index workers pack their counters into line A, odd-index
workers into line B.  Each line is falsely shared inside its clique
(single-owner 8-byte slots), and the cliques never touch each other's
line.

Why it exists: the repair-suite workloads assign contiguous thread
ranges to shared structures, so compact placement — which fills socket
0 with the first threads — is already near-optimal for them and a
placement grid cannot distinguish "packs sockets" from "packs
*sharers*".  Here compact splits both cliques across the socket
boundary (every line ping-pongs over QPI), while sharing-aware
placement groups each clique onto one socket and eliminates the
cross-socket HITM traffic entirely.  See EXPERIMENTS.md, "Placement
vs repair".
"""

from repro.workloads.base import (DEFAULT, MB, Workload, spawn_join,
                                  worker_index)

#: Number of parity cliques (and falsely shared lines).
CLIQUES = 2


class CliqueCounters(Workload):
    """Interleaved two-clique false sharing for placement studies."""

    name = "clique-counters"
    suite = "micro"
    nthreads = 8
    footprint = 1 * MB
    has_false_sharing = True
    sync_rate = "low"
    # like racy-counters, the loops must outlast the thread-creation
    # stagger so the cliques actually overlap in the parallel phase --
    # the 8-spawn stagger swallows ~8k iterations per worker, and the
    # placement grid runs this workload scaled down to 0.3
    increments = 40000

    def body(self, binary, env, variant):
        ld = binary.load_site("clique_read", 8)
        st = binary.store_site("clique_incr", 8)
        # default: clique members packed into one line (8B slots);
        # fixed: every counter on its own line (what repair would do)
        stride = 8 if variant == DEFAULT else 64
        nworkers = self.nthreads
        per_clique = nworkers // CLIQUES
        iters = self.iters(self.increments)

        def main(t):
            buf = yield from t.malloc(
                CLIQUES * max(64, per_clique * stride) + 64, align=64)
            clique_bytes = max(64, per_clique * stride)
            env["counters"] = buf
            env["stride"] = stride
            env["clique_bytes"] = clique_bytes
            env["workers"] = nworkers
            env["iters"] = iters

            def worker(w):
                index = worker_index(w)
                clique = index % CLIQUES
                slot = index // CLIQUES
                addr = buf + clique * clique_bytes + slot * stride
                for _ in range(iters):
                    value = yield from w.load(addr, 8, site=ld)
                    yield from w.store(addr, value + 1, 8, site=st)

            yield from spawn_join(t, nworkers, worker)
            total = 0
            for index in range(nworkers):
                clique = index % CLIQUES
                slot = index // CLIQUES
                addr = buf + clique * clique_bytes + slot * stride
                value = yield from t.load(addr, 8, site=ld)
                total += value
            env["total"] = total

        return main

    def validate(self, env, engine):
        """Every increment must land: counters sum to workers*iters."""
        expected = env["workers"] * env["iters"]
        assert env.get("total") == expected, (
            f"clique counters sum to {env.get('total')} != {expected}")

    result_env_keys = ("total", "workers", "iters")

    def final_state(self, env, engine):
        """Digest includes each counter word (layout-independent)."""
        state = super().final_state(env, engine)
        per_clique = env["workers"] // CLIQUES
        words = []
        for index in range(env["workers"]):
            clique = index % CLIQUES
            slot = index // CLIQUES
            addr = (env["counters"] + clique * env["clique_bytes"]
                    + slot * env["stride"])
            words.extend(self.read_words(engine, addr, 1, env["stride"]))
        state["counters"] = tuple(words)
        return state
