"""leveldb 1.20: the paper's real-world workload.

Traits from the paper (sections 4.2-4.3):

- a writer queue (``std::deque`` guarded by the db mutex) with heavy
  synchronization — leveldb shows ~10x more HITM events from *true*
  sharing than false sharing, and the minor false sharing TMI finds in
  the deque is not worth repairing;
- atomic pointers implemented with inline assembly (8 instances);
- the injected bug (``leveldb-fs`` variant): per-thread operation
  counters packed into a single cache line — "emblematic of many of
  the false sharing bugs we have seen in other programs."  TMI repairs
  it for a 3.8x speedup, 88% of the manual fix.
"""

from repro.workloads.base import (FIXED, GB, MB, Workload, spawn_join,
                                  worker_index)

#: Variant name for the injected false sharing bug.
FSBUG = "fsbug"


class LevelDB(Workload):
    """Key-value store: batched writer queue + block-cache reads."""

    name = "leveldb"
    suite = "app"
    footprint = 300 * MB
    heap_bytes = 1 * GB
    uses_atomics = True
    uses_asm = True
    has_true_sharing = True
    sync_rate = "high"
    ops = 4_000

    def __init__(self, inject_bug=False, **kwargs):
        super().__init__(**kwargs)
        self.inject_bug = inject_bug
        if inject_bug:
            self.name = "leveldb-fs"
            self.has_false_sharing = True

    def body(self, binary, env, variant):
        ld_blk = binary.load_site("read_block", 8)
        st_mem = binary.store_site("memtable_put", 8)
        ld_q = binary.load_site("deque_front", 8)
        st_q = binary.store_site("deque_push", 8)
        ld_cnt = binary.load_site("load_opcount", 8)
        st_cnt = binary.store_site("incr_opcount", 8)
        a_ver = binary.atomic_site("version_ptr", 8)
        nworkers = self.nthreads
        ops = self.iters(self.ops)
        injected = self.inject_bug and variant != FIXED
        counter_stride = 8 if injected else 64

        def main(t):
            sst = yield from t.malloc(256 * MB, align=4096)
            memtable = yield from t.malloc(8 * MB, align=4096)
            deque = yield from t.malloc(4096, align=64)
            version = yield from t.malloc(64, align=64)
            counters = yield from t.malloc(
                counter_stride * nworkers + 64, align=64)
            db_lock = yield from t.mutex("dbmu")
            env["counters"] = counters
            env["stride"] = counter_stride

            def worker(w):
                wi = worker_index(w)
                my_count = counters + wi * counter_stride
                for i in range(ops):
                    h = (i * 1103515245 + wi * 12345) & 0x7FFFFFFF
                    if h % 64 == 0:
                        # write path: batched group commit through
                        # the db mutex (writers batch in leveldb)
                        yield from w.lock(db_lock)
                        slot = deque + (h % 32) * 64
                        value = yield from w.load(slot, 8, site=ld_q)
                        yield from w.store(slot, value + 1, 8, site=st_q)
                        yield from w.store(
                            memtable + (h % 1024) * 512, h, 8,
                            site=st_mem)
                        yield from w.unlock(db_lock)
                        # publish the new version (asm atomic pointer)
                        yield from w.asm_begin()
                        yield from w.atomic_store(version, h, 8,
                                                  site=a_ver)
                        yield from w.asm_end()
                    else:
                        # read path: readers revalidate the cached
                        # version pointer occasionally (asm atomics)
                        if i % 32 == 0:
                            yield from w.asm_begin()
                            yield from w.atomic_load(version, 8,
                                                     site=a_ver)
                            yield from w.asm_end()
                        yield from w.bulk_touch(
                            sst + (h % 96) * (16 * 1024), 8 * 1024,
                            site=ld_blk)
                        yield from w.compute(300)
                    # per-thread op statistics (the injected bug packs
                    # these into one line); leveldb bumps several fields
                    # per operation
                    for _ in range(3):
                        value = yield from w.load(my_count, 8,
                                                  site=ld_cnt)
                        yield from w.store(my_count, value + 1, 8,
                                           site=st_cnt)

            yield from spawn_join(t, nworkers, worker)
            values = yield from t.load_run(counters, nworkers,
                                           counter_stride, 8, site=ld_cnt)
            env["total_ops"] = sum(values)

        return main

    def validate(self, env, engine):
        expected = 3 * self.iters(self.ops) * self.nthreads
        assert env.get("total_ops") == expected, (
            f"leveldb op counters corrupted: {env.get('total_ops')} "
            f"!= {expected}")

    #: Per-thread op counters take a fixed number of increments each.
    result_env_keys = ("total_ops",)

    def final_state(self, env, engine):
        # the memtable/deque contents are last-writer-wins and thus
        # schedule-dependent; only the per-thread counters are part of
        # the schedule-independent state
        state = super().final_state(env, engine)
        state["op_counters"] = self.read_words(
            engine, env["counters"], self.nthreads, env["stride"])
        return state
