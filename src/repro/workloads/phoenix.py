"""Phoenix 1.0 workloads (Ranger et al., HPCA'07).

The suite's false-sharing bugs are the paper's repair stars (section
4.3):

- ``histogram``: per-thread histogram counters land on shared cache
  lines; how badly depends on which colors the input image exercises
  (``histogramfs`` is the paper's alternative input that accentuates
  the bug);
- ``lreg`` (linear-regression): the per-thread ``args`` array is not
  64-byte aligned by default, so neighbouring threads' accumulators
  share lines in the hottest loop of the program;
- ``stringmatch``: two per-thread structs, ``cur_word`` and
  ``cur_word_final``, partially overlap on the same line.

The remaining kernels (kmeans, matrix, pca, reverse, wordcount) carry
the suite's other traits: small footprints, allocator churn, and
kmeans's lock-protected true sharing (the paper's worst tmi-detect
overhead at 17%).
"""

from repro.workloads.base import (FIXED, GB, MB, Workload,
                                  spawn_join, worker_index)

#: Counters per histogram (256 bins x 3 channels).
_BINS = 768


class Histogram(Workload):
    """Per-thread histogram counters; boundary lines falsely share."""

    name = "histogram"
    suite = "phoenix"
    footprint = 12 * MB
    has_false_sharing = True
    #: Fraction of increments aimed at thread-boundary counters.
    boundary_bias = 0.10
    pixels = 40_000

    def body(self, binary, env, variant):
        ld_px = binary.load_site("read_pixel", 1)
        ld_c = binary.load_site("load_counter", 4)
        st_c = binary.store_site("incr_counter", 4)
        nworkers = self.nthreads
        stride = _BINS * 4 + (0 if variant == FIXED else 16)
        if variant == FIXED:
            stride = ((stride + 63) // 64) * 64
        pixels = self.iters(self.pixels)
        bias = self.boundary_bias

        def main(t):
            image = yield from t.malloc(4 * MB, align=64)
            counters = yield from t.malloc(stride * nworkers + 64,
                                           align=64)
            env["counters"] = counters
            env["stride"] = stride

            def worker(w):
                wi = worker_index(w)
                base = counters + wi * stride
                # the first and last lines of my block are shared with
                # my neighbours' blocks (stride is not line-aligned)
                top_bin = (stride // 4) - 4
                chunk = image + wi * (1 * MB)
                # the bin stream is a pure function of (i, wi):
                # precompute each 512-pixel chunk's addresses and issue
                # the load/increment/compute bodies as one RmwSeq —
                # cycle-for-cycle identical to the per-pixel yields
                for start in range(0, pixels, 512):
                    yield from w.bulk_touch(chunk, 64 * 512,
                                            site=ld_px)
                    addrs = []
                    for i in range(start, min(start + 512, pixels)):
                        h = (i * 2654435761 + wi * 97) & 0xFFFFFFFF
                        if (h % 1000) < bias * 1000:
                            bin_index = ((h % 4) if h & 8
                                         else top_bin + (h % 4))
                        else:
                            bin_index = h % _BINS
                        addrs.append(base + bin_index * 4)
                    yield from w.rmw_seq(addrs, 4, 1, 40,
                                         load_site=ld_c,
                                         store_site=st_c)

            yield from spawn_join(t, nworkers, worker)
            total = 0
            sample_count = (_BINS + 96) // 97
            for wi in range(nworkers):
                values = yield from t.load_run(
                    counters + wi * stride, sample_count, 97 * 4, 4,
                    site=ld_c)
                total += sum(values)
            env["checksum"] = total

        return main

    def validate(self, env, engine):
        assert env.get("checksum", 0) > 0, "histogram produced no counts"

    #: Each worker's bins receive a deterministic per-thread increment
    #: stream, so every counter value is schedule-independent.
    result_env_keys = ("checksum",)

    def final_state(self, env, engine):
        state = super().final_state(env, engine)
        stride = env["stride"]
        state["counters"] = [
            self.read_words(engine, env["counters"] + wi * stride,
                            stride // 4, 4, width=4)
            for wi in range(self.nthreads)]
        return state


class HistogramFS(Histogram):
    """The paper's alternative input: increments concentrate on the
    thread-boundary counters, accentuating the false sharing."""

    name = "histogramfs"
    boundary_bias = 0.65
    pixels = 40_000


class LinearRegression(Workload):
    """Misaligned per-thread accumulator structs (the ``args`` array)."""

    name = "lreg"
    suite = "phoenix"
    footprint = 10 * MB
    has_false_sharing = True
    points = 45_000

    def body(self, binary, env, variant):
        ld = binary.load_site("load_acc", 8)
        st = binary.store_site("store_acc", 8)
        ld_pt = binary.load_site("read_point", 8)
        nworkers = self.nthreads
        # struct { SX, SY, SXX, SYY, SXY, n } = 48 bytes
        stride = 64 if variant == FIXED else 48
        points = self.iters(self.points)

        def main(t):
            data = yield from t.malloc(8 * MB, align=64)
            args = yield from t.malloc(stride * nworkers + 64, align=64)
            env["args"] = args
            env["stride"] = stride

            def worker(w):
                wi = worker_index(w)
                base = args + wi * stride
                # field rotation and increments are pure functions of
                # (i, wi): batch each 1024-point chunk's accumulator
                # bodies as one RmwSeq (cycle-identical to the yields)
                for start in range(0, points, 1024):
                    yield from w.bulk_touch(
                        data + wi * MB, 64 * 1024, site=ld_pt)
                    addrs = []
                    deltas = []
                    for i in range(start, min(start + 1024, points)):
                        addrs.append(base + (i % 5) * 8)
                        deltas.append((i * 7 + wi) & 0xFFFF)
                    yield from w.rmw_seq(addrs, 8, deltas, 12,
                                         load_site=ld, store_site=st)

            yield from spawn_join(t, nworkers, worker)
            values = yield from t.load_run(args, nworkers, stride, 8,
                                           site=ld)
            env["sx_total"] = sum(values)

        return main

    def validate(self, env, engine):
        assert env.get("sx_total", 0) > 0

    #: Accumulator structs are per-thread with deterministic inputs.
    result_env_keys = ("sx_total",)

    def final_state(self, env, engine):
        state = super().final_state(env, engine)
        stride = env["stride"]
        state["accumulators"] = [
            self.read_words(engine, env["args"] + wi * stride,
                            stride // 8, 8)
            for wi in range(self.nthreads)]
        return state


class StringMatch(Workload):
    """``cur_word`` / ``cur_word_final`` structs overlap on a line."""

    name = "stringmatch"
    suite = "phoenix"
    footprint = 10 * MB
    has_false_sharing = True
    keys = 22_000

    def body(self, binary, env, variant):
        st_w = binary.store_site("cur_word", 8)
        st_f = binary.store_site("cur_word_final", 8)
        ld_k = binary.load_site("read_key", 1)
        nworkers = self.nthreads
        # two 32-byte structs per thread; default packs them so
        # different threads' structs straddle lines
        stride = 64 if variant == FIXED else 32
        keys = self.iters(self.keys)

        def main(t):
            corpus = yield from t.malloc(4 * MB, align=64)
            words = yield from t.malloc(stride * nworkers + 64, align=64)
            finals = yield from t.malloc(stride * nworkers + 64, align=64)
            env["words"] = words
            env["finals"] = finals
            env["stride"] = stride

            def worker(w):
                wi = worker_index(w)
                my_word = words + wi * stride
                my_final = finals + wi * stride
                # key hashes are a pure function of (i, wi): batch the
                # store/hash bodies between final-word publishes as
                # StoreSeq segments (cycle-identical to the yields)
                for start in range(0, keys, 512):
                    yield from w.bulk_touch(
                        corpus + wi * MB, 64 * 256, site=ld_k)
                    segment = []
                    for i in range(start, min(start + 512, keys)):
                        h = (i * 40503 + wi) & 0xFFFF
                        segment.append(h)
                        if h % 16 == 0:
                            yield from w.store_seq(my_word, segment, 8,
                                                   90, site=st_w)
                            yield from w.store(my_final, h, 8,
                                               site=st_f)
                            segment = []
                    yield from w.store_seq(my_word, segment, 8, 90,
                                           site=st_w)

            yield from spawn_join(t, nworkers, worker)

        return main

    def final_state(self, env, engine):
        # one cur_word / cur_word_final slot per thread, written only
        # by its owner with a deterministic key stream
        stride = env["stride"]
        return {
            "words": self.read_words(engine, env["words"],
                                     self.nthreads, stride),
            "finals": self.read_words(engine, env["finals"],
                                      self.nthreads, stride),
        }


class KMeans(Workload):
    """Lock-protected centroid updates: true sharing + allocator churn.

    kmeans is the paper's worst case for tmi-detect overhead (17%):
    its true sharing generates a steady HITM stream whose PEBS records
    the application threads pay for."""

    name = "kmeans"
    suite = "phoenix"
    footprint = 500 * MB
    heap_bytes = 1 * GB
    has_true_sharing = True
    sync_rate = "high"
    rounds = 12
    points_per_round = 500

    def body(self, binary, env, variant):
        ld_pt = binary.load_site("read_point", 8)
        ld_c = binary.load_site("load_centroid", 8)
        st_c = binary.store_site("update_centroid", 8)
        nworkers = self.nthreads
        clusters = 8
        rounds = self.iters(self.rounds)
        points = self.points_per_round

        def main(t):
            data = yield from t.malloc(8 * MB, align=64)
            centroids = yield from t.malloc(clusters * 64, align=64)
            locks = []
            for c in range(clusters):
                lock = yield from t.mutex(f"cluster{c}")
                locks.append(lock)
            bar = yield from t.barrier(nworkers, "round")

            def worker(w):
                wi = worker_index(w)
                for r in range(rounds):
                    scratch = yield from w.malloc(32 * 1024)
                    yield from w.bulk_touch(data + wi * MB, 64 * 1024,
                                            site=ld_pt)
                    for i in range(points):
                        c = (i * 31 + wi + r) % clusters
                        yield from w.compute(60)
                        if i % 8 == 0:
                            yield from w.lock(locks[c])
                            addr = centroids + c * 64
                            value = yield from w.load(addr, 8, site=ld_c)
                            yield from w.store(addr, value + i, 8,
                                               site=st_c)
                            yield from w.unlock(locks[c])
                    yield from w.free(scratch)
                    yield from w.barrier_wait(bar)

            yield from spawn_join(t, nworkers, worker)

        return main


class MatrixMultiply(Workload):
    """Blocked matmul: private blocks, no sharing, bulk streaming."""

    name = "matrix"
    suite = "phoenix"
    footprint = 24 * MB
    blocks = 40

    def body(self, binary, env, variant):
        ld = binary.load_site("read_block", 8)
        st = binary.store_site("write_block", 8)
        nworkers = self.nthreads
        blocks = self.iters(self.blocks)

        def main(t):
            a = yield from t.malloc(8 * MB, align=64)
            b = yield from t.malloc(8 * MB, align=64)
            c = yield from t.malloc(8 * MB, align=64)

            def worker(w):
                wi = worker_index(w)
                for blk in range(blocks):
                    yield from w.bulk_touch(a + wi * (128 * 1024),
                                            128 * 1024, site=ld)
                    yield from w.bulk_touch(b + wi * (128 * 1024),
                                            128 * 1024, site=ld)
                    yield from w.compute(52_000)      # inner product
                    yield from w.bulk_touch(c + wi * (64 * 1024),
                                            64 * 1024, is_write=True,
                                            site=st)

            yield from spawn_join(t, nworkers, worker)

        return main


class PCA(Workload):
    """Covariance: private partials, one reduction lock."""

    name = "pca"
    suite = "phoenix"
    footprint = 16 * MB
    rows = 160

    def body(self, binary, env, variant):
        ld = binary.load_site("read_row", 8)
        st = binary.store_site("acc_partial", 8)
        nworkers = self.nthreads
        rows = self.iters(self.rows)

        def main(t):
            data = yield from t.malloc(8 * MB, align=64)
            lock = yield from t.mutex("reduce")
            result = yield from t.malloc(4096, align=64)

            def worker(w):
                wi = worker_index(w)
                partial = yield from w.malloc(4096, align=64)
                for r in range(rows):
                    yield from w.bulk_touch(
                        data + wi * (64 * 512), 64 * 512, site=ld)
                    yield from w.compute(18_000)
                    yield from w.store(partial + (r % 64) * 64, r, 8,
                                       site=st)
                yield from w.lock(lock)
                value = yield from w.load(result, 8, site=ld)
                yield from w.store(result, value + 1, 8, site=st)
                yield from w.unlock(lock)

            yield from spawn_join(t, nworkers, worker)

        return main


class ReverseIndex(Workload):
    """Link-list construction: allocation-heavy, ~1 GB of file data."""

    name = "reverse"
    suite = "phoenix"
    footprint = 1 * GB
    heap_bytes = 2 * GB
    files = 220

    def body(self, binary, env, variant):
        ld = binary.load_site("parse", 1)
        st = binary.store_site("link", 8)
        nworkers = self.nthreads
        files = self.iters(self.files)

        def main(t):
            corpus = yield from t.malloc(1 * GB, align=4096)

            def worker(w):
                wi = worker_index(w)
                links = []
                window = 768 * 1024
                for f in range(files):
                    yield from w.bulk_touch(
                        corpus + wi * window, window, site=ld)
                    for _ in range(6):
                        node = yield from w.malloc(48)
                        yield from w.store(node, f, 8, site=st)
                        links.append(node)
                    yield from w.compute(9_000)
                for node in links[: len(links) // 2]:
                    yield from w.free(node)

            yield from spawn_join(t, nworkers, worker)

        return main


class WordCount(Workload):
    """Bucketized hash-table updates under per-range locks."""

    name = "wordcount"
    suite = "phoenix"
    footprint = 12 * MB
    has_true_sharing = True
    sync_rate = "medium"
    words = 6_000

    def body(self, binary, env, variant):
        ld = binary.load_site("bucket_load", 8)
        st = binary.store_site("bucket_store", 8)
        ld_w = binary.load_site("read_word", 1)
        nworkers = self.nthreads
        nlocks = 16
        words = self.iters(self.words)

        def main(t):
            corpus = yield from t.malloc(4 * MB, align=64)
            table = yield from t.malloc(64 * 1024, align=64)
            locks = []
            for i in range(nlocks):
                lock = yield from t.mutex(f"range{i}")
                locks.append(lock)

            def worker(w):
                wi = worker_index(w)
                for i in range(words):
                    if i % 256 == 0:
                        yield from w.bulk_touch(corpus + wi * MB,
                                                64 * 128, site=ld_w)
                    h = (i * 0x9E3779B1 + wi * 13) & 0xFFFFF
                    bucket = h % 1024
                    yield from w.compute(80)
                    if i % 4 == 0:
                        lock = locks[bucket % nlocks]
                        yield from w.lock(lock)
                        addr = table + bucket * 64
                        value = yield from w.load(addr, 8, site=ld)
                        yield from w.store(addr, value + 1, 8, site=st)
                        yield from w.unlock(lock)

            yield from spawn_join(t, nworkers, worker)

        return main


PHOENIX = (Histogram, HistogramFS, LinearRegression, KMeans,
           MatrixMultiply, PCA, ReverseIndex, StringMatch, WordCount)
