"""The TMI runtime system (paper section 3).

Three stages match the evaluation's configurations:

- ``alloc`` (*tmi-alloc*): only the allocator change — all application
  memory (globals, heap, stacks) lives in a shared, file-backed region
  so repair remains possible later;
- ``detect`` (*tmi-detect*): adds process-shared synchronization
  redirection, per-thread PEBS HITM sampling, and the detection thread;
- ``protect`` (*tmi-protect*, full TMI): adds online repair — thread-to-
  process conversion and targeted PTSB page protection — gated on the
  detector, i.e. compatible-by-default.
"""

from repro.alloc import LocklessAllocator, RegionBump
from repro.core.config import TmiConfig
from repro.core.consistency import CodeCentricPolicy
from repro.core.detector import FalseSharingDetector
from repro.core.ladder import DegradationLadder
from repro.core.repair import RepairManager
from repro.core.stats import TmiStats
from repro.errors import ShmExhaustedError
from repro.engine import layout
from repro.engine.hooks import RuntimeHooks
from repro.isa.disasm import Disassembler
from repro.oskit.loader import CallbackTable
from repro.oskit.perf import PerfSession
from repro.oskit.procmaps import AddressMap
from repro.oskit.shm import SharedMemoryNamespace
from repro.sim.addrspace import AddressSpace, Translation
from repro.sim.costs import PAGE_4K

STAGE_ALLOC = "alloc"
STAGE_DETECT = "detect"
STAGE_PROTECT = "protect"
_STAGES = (STAGE_ALLOC, STAGE_DETECT, STAGE_PROTECT)

#: Maximum application threads whose stacks the shared region reserves.
MAX_THREADS = 64


class TmiRuntime(RuntimeHooks):
    """TMI at one of its three deployment stages."""

    def __init__(self, stage=STAGE_PROTECT, config=None):
        if stage not in _STAGES:
            raise ValueError(f"unknown TMI stage {stage!r}")
        self.stage = stage
        self.config = config or TmiConfig()
        self.name = f"tmi-{stage}"
        self.stats = TmiStats()
        self.policy = CodeCentricPolicy(
            enabled=self.config.code_centric,
            flush_relaxed=self.config.extra.get("flush_relaxed", False))
        self.callbacks = CallbackTable()
        self.perf = None
        self.detector = None
        self.repair = None
        self.ladder = None
        self._engine = None
        if stage != STAGE_ALLOC:
            self.tick_cycles = self.config.detect_interval_cycles

    # ------------------------------------------------------------------
    # setup: the shared-memory layout of Figure 6
    # ------------------------------------------------------------------
    def setup(self, engine):
        machine = engine.machine
        costs = engine.costs
        program = engine.program
        page_size = self.config.app_page_size
        self._engine = engine

        self.shm = SharedMemoryNamespace(machine.physmem,
                                         faults=self.faults)
        heap_bytes = program.heap_bytes
        stacks_bytes = MAX_THREADS * layout.STACK_SIZE
        app_bytes = layout.GLOBALS_SIZE + heap_bytes + stacks_bytes
        self.shm_degraded = False
        self.app_backing = self._shm_open_with_retry(
            machine, "tmi-app", app_bytes)
        self.internal_backing = self._shm_open_with_retry(
            machine, "tmi-internal", layout.INTERNAL_SIZE)

        aspace = AddressSpace(machine.physmem, costs, name="app")
        aspace.mmap(layout.GLOBALS_BASE, layout.GLOBALS_SIZE,
                    self.app_backing, backing_offset=0,
                    page_size=page_size, name="globals")
        aspace.mmap(layout.HEAP_BASE, heap_bytes, self.app_backing,
                    backing_offset=layout.GLOBALS_SIZE,
                    page_size=page_size, name="heap")
        aspace.mmap(layout.INTERNAL_BASE, layout.INTERNAL_SIZE,
                    self.internal_backing, name="tmi-internal")
        from repro.sim.addrspace import Backing
        libc_backing = Backing(machine.physmem, layout.LIBC_SIZE, "libc")
        aspace.mmap(layout.LIBC_BASE, layout.LIBC_SIZE, libc_backing,
                    name="libc")
        engine.root_aspace = aspace

        heap_region = RegionBump(layout.HEAP_BASE, heap_bytes, "heap")
        engine.allocator = LocklessAllocator(
            heap_region, costs, name="tmi-shared", line_align_large=True)
        self._internal_bump = RegionBump(
            layout.INTERNAL_BASE, layout.INTERNAL_SIZE, "tmi-internal")
        self._stack_offset_base = layout.GLOBALS_SIZE + heap_bytes
        self._stacks_mapped = set()

        if self.stage != STAGE_ALLOC:
            self.perf = PerfSession(
                costs, period=self.config.period, faults=self.faults,
                queue_limit=self.config.perf_queue_limit)
            machine.add_hitm_listener(self.perf.on_hitm)
            self.callbacks.install(
                self.name,
                atomic_begin=lambda *a: 0, atomic_end=lambda *a: 0,
                asm_begin=lambda *a: 0, asm_end=lambda *a: 0)
            self.detector = FalseSharingDetector(
                Disassembler(program.binary),
                AddressMap.from_aspace(aspace),
                aspace, self.config)
            self.ladder = DegradationLadder(
                self.config,
                start=(STAGE_PROTECT if self.stage == STAGE_PROTECT
                       else STAGE_DETECT),
                on_transition=self._on_ladder_transition)
        if self.stage == STAGE_PROTECT:
            self.repair = RepairManager(engine, self.config, self.stats,
                                        faults=self.faults,
                                        ladder=self.ladder)
            if self.shm_degraded:
                # without the shared file-backed region a forked
                # process could never publish its writes: repair is
                # permanently off; detection still runs
                self.ladder.force_level(STAGE_DETECT, 0, 0,
                                        "shm-exhausted",
                                        permanent=True)

    def _shm_open_with_retry(self, machine, name, nbytes):
        """``shm_open`` with retries; persistent exhaustion falls back
        to a private (non-file-backed) region and flags degradation."""
        from repro.sim.addrspace import Backing
        for _attempt in range(self.config.fault_retry_limit + 1):
            try:
                return self.shm.shm_open(name, nbytes)
            except ShmExhaustedError:
                continue
        self.shm_degraded = True
        return Backing(machine.physmem, nbytes, name=name)

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def on_thread_created(self, engine, thread):
        tid = thread.tid
        if tid not in self._stacks_mapped and tid < MAX_THREADS:
            self._stacks_mapped.add(tid)
            engine.root_aspace.mmap(
                layout.stack_base(tid), layout.STACK_SIZE,
                self.app_backing,
                backing_offset=self._stack_offset_base
                + tid * layout.STACK_SIZE,
                name=f"stack:{tid}")
        if self.perf is not None:
            self.perf.attach_thread(tid)
        if self.repair is not None:
            self.repair.adopt_thread(engine, thread)

    def on_thread_exit(self, engine, thread):
        ptsb = thread.process.ptsb
        if ptsb is not None:
            cost = ptsb.commit(thread.core, "exit")
            self.stats.commit_cycles += cost
            engine.machine.advance(thread.core, cost)

    # ------------------------------------------------------------------
    # memory: code-centric routing
    # ------------------------------------------------------------------
    def translate(self, engine, thread, op, va, width, is_write):
        aspace = thread.process.aspace
        if thread.process.ptsb is not None and \
                self.policy.access_bypasses_ptsb(thread, op):
            return Translation(pa=aspace.shared_pa(va), cost=0)
        pa = aspace.fast_pa(va, width)
        if pa is not None:
            return Translation(pa=pa, cost=0)
        return aspace.translate(va, width, is_write)

    # ------------------------------------------------------------------
    # synchronization interposition
    # ------------------------------------------------------------------
    def on_sync_object_init(self, engine, thread, obj):
        """pthread_*_init wrapper: allocate a cache-line-sized shadow in
        process-shared memory and point the application object at it."""
        if self.stage == STAGE_ALLOC:
            return 0
        shadow = self._internal_bump.take(64, align=64)
        obj.shadow_addr = shadow
        aspace = thread.process.aspace
        cost, _ = engine.machine.mem_access(
            thread.core, thread.tid, 0, obj.addr,
            aspace.shared_pa(obj.addr), 8, True, shadow)
        # the pointer line is written once at init and read thereafter;
        # by the time workers run it has left the initializer's cache
        engine.machine.directory.flush_range(
            aspace.shared_pa(obj.addr), 8)
        return cost + engine.costs.alloc_fast

    def sync_cost_extra(self, engine, thread, obj):
        if self.stage == STAGE_ALLOC or not obj.shadow_addr:
            return 0
        # pointer chase through the application object
        aspace = thread.process.aspace
        cost, _ = engine.machine.mem_access(
            thread.core, thread.tid, 0, obj.addr,
            aspace.shared_pa(obj.addr), 8, False)
        return cost + engine.costs.pshared_indirect

    def on_sync_acquired(self, engine, thread, obj, kind):
        return self._commit(thread, kind)

    def on_sync_release(self, engine, thread, obj, kind):
        return self._commit(thread, kind)

    def _commit(self, thread, reason):
        ptsb = thread.process.ptsb
        if ptsb is None:
            return 0
        cost = ptsb.commit(thread.core, reason)
        if cost and self.faults is not None and self.faults.fire(
                "ptsb.delayed_flush", tid=thread.tid, reason=reason):
            # the commit path stalled (contended directory, write-back
            # pressure): the flush completes late but completes
            cost += self.config.delayed_flush_cycles
        self.stats.commit_cycles += cost
        self.stats.twin_bytes_peak = max(self.stats.twin_bytes_peak,
                                         ptsb.twin_bytes_peak)
        return cost

    # ------------------------------------------------------------------
    # code-centric consistency callbacks
    # ------------------------------------------------------------------
    def on_region_begin(self, engine, thread, kind, ordering):
        self.callbacks.fire(f"{kind}_begin", thread)
        decision = self.policy.on_region_begin(thread, kind, ordering)
        cost = 0
        if decision.flush_ptsb:
            cost += self._commit(thread, kind)
            self.stats.ptsb_flushes += 1
            observer = engine._observer
            if observer is not None:
                observer.on_ptsb_flush({"tid": thread.tid,
                                        "region": kind})
        return cost

    def on_region_end(self, engine, thread, kind):
        self.callbacks.fire(f"{kind}_end", thread)
        self.policy.on_region_end(thread, kind)
        return 0

    # ------------------------------------------------------------------
    # the detection thread's periodic analysis
    # ------------------------------------------------------------------
    def on_tick(self, engine, now):
        if self.detector is None:
            return
        self.stats.intervals += 1
        observer = engine._observer
        if self.ladder is not None \
                and not self.ladder.allows_detection():
            # degraded to the alloc level: the sampling pipeline is
            # untrusted, so drain and discard without analysis; the
            # interval still counts and the cooldown clock still runs
            self.perf.drain()
            self._tick_fault_work(engine, observer, now)
            return
        records = self.perf.drain()
        self.stats.records_seen += len(records)
        if observer is not None and records:
            observer.on_pebs_records(records)
        self.detector.address_map = AddressMap.from_aspace(
            engine.root_aspace)
        self.detector.add_records(records)
        report = self.detector.analyze(self.stats.intervals,
                                       self.config.period)
        engine.machine.advance(engine.service_core,
                               self.detector.analysis_cost(engine.costs))
        if observer is not None:
            observer.on_detect_interval(report, now)
        if (self.repair is not None and self.config.enable_repair
                and report.targets):
            self.repair.request_repair(engine, report.targets,
                                       self.stats.intervals)
        self._tick_fault_work(engine, observer, now)

    def _tick_fault_work(self, engine, observer, now):
        """Per-tick fault bookkeeping: demotions, retries, budgets.

        Every branch is a no-op in a fault-free run (no pending work,
        no drops, ladder at its ceiling), so the cycle-exactness
        goldens are unaffected.
        """
        if self.repair is not None:
            self.repair.schedule_demotions(engine)
            self.repair.resume(engine)
        if self.faults is not None:
            self.stats.records_dropped = self.perf.records_dropped
            if self.ladder is not None:
                self.ladder.note_perf_drops(self.perf.records_dropped,
                                            now, self.stats.intervals)
            if observer is not None:
                for event in self.faults.pending_events():
                    observer.on_fault(event)
        if self.ladder is not None:
            self.ladder.tick(now, self.stats.intervals)

    def _on_ladder_transition(self, info):
        """Ladder callback: record, surface, and abandon stale work."""
        self.stats.degradations.append(dict(info))
        if (info["from"] == STAGE_PROTECT
                and info["to"] != STAGE_PROTECT
                and self.repair is not None
                and self.detector is not None):
            self.repair.abandon_pending(self.detector)
        engine = self._engine
        observer = engine._observer if engine is not None else None
        if observer is not None:
            observer.on_degradation(dict(info))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_report(self, engine):
        if self.stage == STAGE_ALLOC:
            return {}
        report = {
            "perf_buffers": self.perf.buffer_memory_bytes(),
            "detector": self.detector.memory_bytes(),
            "pshared_sync": len(engine.sync_objects) * 128,
        }
        if self.repair is not None and self.repair.converted:
            report["ptsb"] = self.stats.twin_bytes_peak * 2
        return report

    def fill_metrics(self, engine, registry):
        """Typed TMI metrics on top of the generic report ingestion.

        Adds counters for the detection/repair pipeline (intervals,
        PEBS records, commits, flushes) and a histogram of per-commit
        merged byte counts, so commit behaviour is visible as a
        distribution rather than only a total.
        """
        super().fill_metrics(engine, registry)
        stats = self.stats
        system = self.name
        registry.counter("tmi.intervals", system=system).inc(
            stats.intervals)
        registry.counter("tmi.pebs_records", system=system).inc(
            stats.records_seen)
        registry.counter("tmi.commits", system=system).inc(stats.commits)
        registry.counter("tmi.commit_pages", system=system).inc(
            stats.commit_pages)
        registry.counter("tmi.commit_bytes", system=system).inc(
            stats.commit_bytes)
        registry.counter("tmi.ptsb_flushes", system=system).inc(
            stats.ptsb_flushes)
        registry.gauge("tmi.protected_pages", system=system).set(
            stats.protected_pages)
        registry.gauge("tmi.twin_bytes_peak", system=system).set(
            stats.twin_bytes_peak)
        histogram = registry.histogram("tmi.commit_size_bytes",
                                       system=system)
        for size in stats.commit_sizes:
            histogram.observe(size)
        registry.counter("tmi.records_dropped", system=system).inc(
            stats.records_dropped)
        registry.counter("tmi.repair_episodes", system=system).inc(
            stats.repair_episodes)
        registry.counter("tmi.repair_episode_failures",
                         system=system).inc(
            stats.repair_episode_failures)
        registry.counter("tmi.commit_conflicts", system=system).inc(
            stats.commit_conflicts)
        registry.counter("tmi.pages_blacklisted", system=system).inc(
            stats.pages_blacklisted)
        registry.counter("tmi.degradations", system=system).inc(
            len(stats.degradations))
        if self.ladder is not None:
            registry.gauge("tmi.ladder_level", system=system).set(
                self.ladder.level_index)
        if self.faults is not None:
            for point, count in self.faults.fired_counts().items():
                registry.counter("tmi.faults", system=system,
                                 point=point).inc(count)

    def report(self, engine):
        out = {"stage": self.stage}
        out.update(self.stats.report(engine.costs))
        out["consistency_flushes"] = self.policy.flushes
        out["relaxed_fast_path"] = self.policy.relaxed_fast_path
        machine = engine.machine
        if machine.topology.sockets > 1:
            # socket-aware coherence the runtime is paying for: every
            # cross-socket HITM it samples costs an extra QPI hop, which
            # changes the repair-vs-placement tradeoff (EXPERIMENTS.md)
            out["hitm_cross_socket"] = \
                machine.directory.hitm_cross_socket_count
            out["qpi_hops"] = machine.directory.qpi_hops
        if self.perf is not None:
            out["perf_events_seen"] = self.perf.events_seen
            out["perf_records"] = self.perf.records_made
            out["perf_estimated_events"] = self.perf.estimated_events()
        if self.detector is not None:
            out["sharing_summary"] = self.detector.sharing_summary()
            out["targeted_pages"] = sorted(
                hex(p) for p in self.detector.targeted_pages)
        if self.ladder is not None:
            out["ladder_level"] = self.ladder.level
        if self.faults is not None:
            out["faults_injected"] = self.faults.fired_counts()
        return out
