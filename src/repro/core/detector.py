"""TMI's false sharing detector (paper section 3.1).

Runs as the per-application detection thread: at start-up it reads the
/proc maps analog to build its address filter and disassembles the
binary; each detection interval it consumes sampled PEBS records,
aggregates them per cache line, scales counts by the sampling period,
classifies lines as true or false sharing, and nominates pages for
repair when a line's *estimated* HITM rate crosses the significance
threshold and the sharing is mostly false.
"""

from dataclasses import dataclass, field

from repro.core.classify import FALSE_SHARING, LineStats, TRUE_SHARING
from repro.sim.costs import LINE_SIZE


@dataclass
class RepairTarget:
    """A page the detector wants protected."""

    page_va: int
    page_size: int
    line_va: int
    estimated_rate: float      # estimated HITM events per interval


@dataclass
class IntervalReport:
    """Outcome of one detection interval (one 'second')."""

    interval: int
    records: int
    filtered: int
    estimated_events: float
    false_lines: int = 0
    true_lines: int = 0
    targets: list = field(default_factory=list)


class FalseSharingDetector:
    """Aggregation + classification + repair policy."""

    def __init__(self, disassembler, address_map, aspace, config):
        self.disasm = disassembler
        self.address_map = address_map
        self.aspace = aspace
        self.config = config
        self.lines = {}                    # line va -> LineStats
        self.reports = []
        self.records_total = 0
        self.filtered_total = 0
        self.unknown_pc_total = 0
        self._interval_counts = {}         # line va -> records this interval
        self._cumulative = {}              # line va -> records, all time
        self._decode_table = disassembler.analyze_all()
        self._targeted_pages = set()

    # ------------------------------------------------------------------
    def add_records(self, records):
        """Feed one batch of drained PEBS records."""
        for record in records:
            decoded = self.disasm.decode(record.pc)
            if decoded is None:
                self.unknown_pc_total += 1
                continue
            if not self.address_map.repair_eligible(record.va):
                self.filtered_total += 1
                continue
            line_va = record.va & ~(LINE_SIZE - 1)
            stats = self.lines.get(line_va)
            if stats is None:
                stats = LineStats(line_va)
                self.lines[line_va] = stats
            stats.add(record.tid, record.va - line_va, decoded.width,
                      decoded.is_store, pc=record.pc)
            self._interval_counts[line_va] = \
                self._interval_counts.get(line_va, 0) + 1
            self.records_total += 1

    # ------------------------------------------------------------------
    def analyze(self, interval_index, period):
        """End-of-interval pass; returns an :class:`IntervalReport`.

        A period of n producing r records is assumed to correspond to
        n*r actual events (section 3.1).
        """
        report = IntervalReport(
            interval=interval_index,
            records=sum(self._interval_counts.values()),
            filtered=self.filtered_total,
            estimated_events=sum(self._interval_counts.values()) * period,
        )
        threshold = self.config.repair_threshold_events
        for line_va, count in self._interval_counts.items():
            self._cumulative[line_va] = \
                self._cumulative.get(line_va, 0) + count
            # estimate over the accumulated window: at native-input
            # scale this converges to the paper's per-second rate test;
            # at our scaled inputs it keeps slowly-sampled hot lines
            # from slipping under the bar every interval
            estimated = self._cumulative[line_va] * period
            stats = self.lines[line_va]
            label, false_w, true_w = stats.classify()
            if label == FALSE_SHARING:
                report.false_lines += 1
            elif label == TRUE_SHARING:
                report.true_lines += 1
            if estimated < threshold or label != FALSE_SHARING:
                continue
            total = false_w + true_w
            if total and false_w / total < self.config.min_false_fraction:
                continue
            page_va, page_size = self.aspace.page_base(line_va)
            if line_va in self._targeted_pages:
                continue
            if len(self._targeted_pages) >= self.config.max_repair_pages:
                continue
            self._targeted_pages.add(line_va)
            report.targets.append(RepairTarget(
                page_va=page_va, page_size=page_size, line_va=line_va,
                estimated_rate=estimated))
        self._interval_counts = {}
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def analysis_cost(self, costs):
        """Cycles one analysis pass takes (runs on the detector core)."""
        return costs.detect_fixed + costs.detect_per_line * len(self.lines)

    def sharing_summary(self):
        """{classification: estimated events} across the whole run."""
        summary = {"false": 0, "true": 0, "none": 0}
        for stats in self.lines.values():
            label, _f, _t = stats.classify()
            summary[label] += stats.records
        return summary

    def memory_bytes(self):
        """Detector data-structure footprint (Figure 8).

        Dominated by the static-instruction decode table and per-line
        dynamic records — the paper attributes most of TMI's memory
        overhead to these structures (~90 MB on small benchmarks).
        """
        base = 24 * 1024 * 1024
        static = len(self._decode_table) * 256
        dynamic = len(self.lines) * 512 + self.records_total * 16
        return base + static + dynamic

    def untarget(self, line_va):
        """Forget that ``line_va`` was nominated for repair.

        The repair manager calls this when it abandons a queued target
        (degradation below ``protect``), so a later analysis pass can
        re-nominate the line if it is still hot once repair re-arms.
        """
        self._targeted_pages.discard(line_va)

    @property
    def targeted_pages(self):
        return set(self._targeted_pages)
