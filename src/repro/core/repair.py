"""TMI's repair mechanism (paper sections 3.2-3.3).

When the detector nominates pages, the repair manager asks the ptrace
monitor to stop the world; on the first episode every application
thread is converted into a process (T2P) and given a PTSB; then the
nominated pages are protected — process-private and copy-on-write — in
*every* application process.  Unprotected pages continue to hit shared
memory at native speed: repair is targeted (section 3.3).

``targeted=False`` reproduces the PTSB-everywhere ablation of section
4.3: every heap/globals/stack page is protected on the first episode.
"""

from repro.core.ptsb import PageTwinningStoreBuffer
from repro.oskit.ptrace import PtraceMonitor


class RepairManager:
    """Orchestrates T2P conversion and targeted page protection."""

    def __init__(self, engine, config, stats):
        self.engine = engine
        self.config = config
        self.stats = stats
        self.monitor = PtraceMonitor(engine)
        self.converted = False
        self.protected_pages = {}      # page va -> page size
        self.protected_lines = set()   # line vas already handled

    # ------------------------------------------------------------------
    @property
    def active(self):
        return self.converted

    def request_repair(self, engine, targets, interval_index):
        """Schedule a stop-the-world repair episode for ``targets``."""
        new = [t for t in targets
               if t.line_va not in self.protected_lines]
        if not new:
            return
        if not self.stats.repair_trigger_interval:
            self.stats.repair_trigger_interval = interval_index

        def action(eng, stop_time):
            if not self.converted:
                record = self.monitor.convert_all_threads(eng, stop_time)
                self.stats.conversions.append(record)
                self.stats.repair_trigger_cycle = stop_time
                observer = eng._observer
                if observer is not None:
                    observer.on_t2p({
                        "cycle": stop_time,
                        "threads": record.thread_count,
                        "cycles": record.total_cycles,
                        "mode": "initial"})
                for process in self._app_processes(eng):
                    self._install_ptsb(process)
                self.converted = True
            if self.config.targeted:
                for target in new:
                    self._protect_target(eng, target)
            else:
                self._protect_all_memory(eng)

        self.monitor.stop_all_and(action)

    def adopt_thread(self, engine, thread):
        """A thread created after repair began: convert it immediately
        so its address space carries the same protections (the forked
        page table inherits them)."""
        if not self.converted:
            return
        parent_ptsb = thread.process.ptsb
        if parent_ptsb is not None:
            thread.pending_penalty += parent_ptsb.commit(
                thread.core, "thread_create")
        process = engine.convert_thread_to_process(thread)
        self._install_ptsb(process)
        cost = engine.costs.fork + engine.costs.trampoline
        thread.pending_penalty += cost
        observer = engine._observer
        if observer is not None:
            observer.on_t2p({"cycle": engine.machine.now, "threads": 1,
                             "cycles": cost, "mode": "adopt"})

    # ------------------------------------------------------------------
    def _app_processes(self, engine):
        seen = set()
        for thread in engine.threads.values():
            if thread.process.pid not in seen:
                seen.add(thread.process.pid)
                yield thread.process

    def _install_ptsb(self, process):
        if process.ptsb is None:
            PageTwinningStoreBuffer(
                process, self.engine.machine, self.engine.costs,
                self.config.huge_commit_optimization,
                on_commit=self._on_commit)

    def _on_commit(self, info):
        self.stats.note_commit(info)
        observer = self.engine._observer
        if observer is not None:
            observer.on_ptsb_commit(info)

    def _protect_target(self, engine, target):
        from repro.sim.costs import PAGE_4K

        self.protected_lines.add(target.line_va)
        page_va, page_size = target.page_va, target.page_size
        if page_size > PAGE_4K and self.config.repair_page_split:
            # the application region uses huge pages: remap the hot
            # 2 MB page as 4 KB pages so diff/commit stay cheap, then
            # protect only the 4 KB page holding the hot line
            processes = list(self._app_processes(engine))
            for process in processes:
                small = process.aspace.split_mapping_page(target.page_va)
                page_va, page_size = process.aspace.page_base(
                    target.line_va)
        if page_va in self.protected_pages:
            return
        for process in self._app_processes(engine):
            process.aspace.protect_page(page_va)
        self.protected_pages[page_va] = page_size
        self.stats.protected_pages = len(self.protected_pages)

    def _protect_all_memory(self, engine):
        """PTSB-everywhere ablation: protect heap, globals, and stacks."""
        from repro.sim.addrspace import PRIVATE

        for process in self._app_processes(engine):
            for mapping in process.aspace.mappings():
                kind = mapping.name.split(":")[0]
                if kind not in ("heap", "globals", "stack"):
                    continue
                mapping.mode = PRIVATE
                for state in mapping.pages.values():
                    state.mode = PRIVATE
            process.aspace.invalidate_translations()
        self.stats.protected_pages = -1        # sentinel: everything
