"""TMI's repair mechanism (paper sections 3.2-3.3).

When the detector nominates pages, the repair manager asks the ptrace
monitor to stop the world; on the first episode every application
thread is converted into a process (T2P) and given a PTSB; then the
nominated pages are protected — process-private and copy-on-write — in
*every* application process.  Unprotected pages continue to hit shared
memory at native speed: repair is targeted (section 3.3).

``targeted=False`` reproduces the PTSB-everywhere ablation of section
4.3: every heap/globals/stack page is protected on the first episode.

Under an armed fault plan (:mod:`repro.faults`) repair actions can
fail: ptrace attach rounds time out, per-thread fork() fails mid
conversion, PTSB commits hit conflicts.  Each action retries with
exponential backoff in simulated cycles; an episode that exhausts its
budget aborts cleanly — targets return to a pending queue and are
re-attempted on a later detection tick — and a page that keeps
conflicting past ``page_conflict_budget`` is demoted back to shared
memory and blacklisted.  Repeated episode failures feed the
degradation ladder (:mod:`repro.core.ladder`).
"""

from repro.core.ptsb import PageTwinningStoreBuffer
from repro.oskit.ptrace import PtraceMonitor


class RepairManager:
    """Orchestrates T2P conversion and targeted page protection."""

    def __init__(self, engine, config, stats, faults=None, ladder=None):
        self.engine = engine
        self.config = config
        self.stats = stats
        self.faults = faults           # armed FaultInjector or None
        self.ladder = ladder           # DegradationLadder or None
        self.monitor = PtraceMonitor(engine)
        self.converted = False
        self.protected_pages = {}      # page va -> page size
        self.protected_lines = set()   # line vas already handled
        #: Targets awaiting a (retried) episode.
        self.pending = []
        #: Pages demoted after exhausting their conflict budget.
        self.blacklisted_pages = set()
        #: Page vas awaiting a stop-the-world demotion.
        self.pending_demotions = []
        #: Thread ids still to convert after a partial (fork-failed)
        #: conversion batch; None once conversion is complete or before
        #: it starts.
        self.unconverted = None
        self._conflict_counts = {}     # page va -> commit conflicts
        self._episode_scheduled = False
        self._demotion_scheduled = False

    # ------------------------------------------------------------------
    @property
    def active(self):
        return self.converted

    def request_repair(self, engine, targets, interval_index):
        """Queue ``targets`` and schedule a repair episode for them."""
        queued = {t.line_va for t in self.pending}
        new = [t for t in targets
               if t.line_va not in self.protected_lines
               and t.line_va not in queued
               and t.page_va not in self.blacklisted_pages]
        if not new and not self.pending:
            return
        if not self.stats.repair_trigger_interval:
            self.stats.repair_trigger_interval = interval_index
        self.pending.extend(new)
        self._schedule_episode(engine)

    def resume(self, engine):
        """Re-attempt pending work (failed episodes) on a later tick."""
        if self.pending or (self.unconverted and not self.converted):
            self._schedule_episode(engine)

    # ------------------------------------------------------------------
    # the repair episode (stop-the-world action)
    # ------------------------------------------------------------------
    def _schedule_episode(self, engine):
        if self._episode_scheduled:
            return
        if self.ladder is not None and not self.ladder.allows_repair():
            return
        self._episode_scheduled = True
        self.monitor.stop_all_and(self._episode)

    def _episode(self, eng, stop_time):
        self._episode_scheduled = False
        targets, self.pending = self.pending, []
        if not self._attach_with_retries(eng, stop_time):
            self.pending = targets
            self._note_failure(stop_time, "attach-timeout")
            return
        if not self.converted:
            record = self.monitor.convert_all_threads(
                eng, stop_time, faults=self.faults,
                fork_retries=self.config.fault_retry_limit,
                only_tids=self.unconverted)
            self.stats.conversions.append(record)
            if not self.stats.repair_trigger_cycle:
                self.stats.repair_trigger_cycle = stop_time
            observer = eng._observer
            if observer is not None:
                observer.on_t2p({
                    "cycle": stop_time,
                    "threads": record.thread_count
                    - len(record.failed_tids),
                    "cycles": record.total_cycles,
                    "mode": "initial"})
            if record.failed_tids:
                # partial conversion: protecting pages now would lose
                # the unconverted threads' writes (no PTSB to commit
                # them).  Convert the stragglers on a later episode.
                self.unconverted = set(record.failed_tids)
                self.pending = targets
                self._note_failure(stop_time, "fork-fail")
                return
            self.unconverted = None
            for process in self._app_processes(eng):
                self._install_ptsb(process)
            self.converted = True
        if self.config.targeted:
            for target in targets:
                self._protect_target(eng, target)
        else:
            self._protect_all_memory(eng)
        self.stats.repair_episodes += 1
        if self.ladder is not None:
            self.ladder.note_episode_success()

    def _attach_with_retries(self, eng, stop_time):
        """PM's attach round; injected timeouts retry with backoff.

        Every retry charges a fresh attach plus an exponentially
        growing backoff (in simulated cycles) to each stopped thread.
        Returns False when the retry budget is exhausted.
        """
        if self.faults is None:
            return True
        for attempt in range(self.config.fault_retry_limit + 1):
            if not self.faults.fire("ptrace.attach_timeout",
                                    cycle=stop_time, attempt=attempt):
                return True
            penalty = (eng.costs.ptrace_attach
                       + self.config.fault_backoff_cycles
                       * (2 ** attempt))
            for thread in eng.threads.values():
                if thread.state != "done":
                    thread.pending_penalty += penalty
        return False

    def _note_failure(self, stop_time, reason):
        self.stats.repair_episode_failures += 1
        if self.ladder is not None:
            interval = self.stats.intervals
            self.ladder.note_episode_failure(stop_time, interval,
                                             reason)

    def abandon_pending(self, detector):
        """Drop queued targets (ladder degraded below ``protect``).

        The targets' lines are un-nominated in the detector so that a
        cooldown re-arm can re-nominate them if they are still hot.
        """
        for target in self.pending:
            detector.untarget(target.line_va)
        self.pending = []

    # ------------------------------------------------------------------
    # conflict accounting and page demotion
    # ------------------------------------------------------------------
    def note_conflict(self, page_va):
        """One injected commit conflict on ``page_va``; demote the page
        once it exhausts its budget."""
        self.stats.commit_conflicts += 1
        count = self._conflict_counts.get(page_va, 0) + 1
        self._conflict_counts[page_va] = count
        if count > self.config.page_conflict_budget \
                and page_va not in self.blacklisted_pages:
            self.blacklisted_pages.add(page_va)
            self.pending_demotions.append(page_va)

    def schedule_demotions(self, engine):
        """Stop the world and demote every blacklisted page: commit all
        PTSBs (the private frames' changes must land first), return the
        pages to shared mode everywhere, and never re-protect them."""
        if self._demotion_scheduled or not self.pending_demotions:
            return
        self._demotion_scheduled = True

        def action(eng, stop_time):
            self._demotion_scheduled = False
            pages, self.pending_demotions = self.pending_demotions, []
            for thread in eng.threads.values():
                if thread.state == "done":
                    continue
                ptsb = thread.process.ptsb
                if ptsb is not None:
                    thread.pending_penalty += ptsb.commit(
                        thread.core, "demote")
            for process in self._app_processes(eng):
                for page_va in pages:
                    if page_va in self.protected_pages:
                        process.aspace.unprotect_page(page_va)
            observer = eng._observer
            for page_va in pages:
                if self.protected_pages.pop(page_va, None) is None:
                    continue
                self.stats.pages_blacklisted += 1
                if observer is not None:
                    observer.on_fault({
                        "point": "repair.page_demoted", "seq": None,
                        "cycle": stop_time, "page_va": page_va})
            self.stats.protected_pages = len(self.protected_pages)

        self.monitor.stop_all_and(action)

    # ------------------------------------------------------------------
    def adopt_thread(self, engine, thread):
        """A thread created after repair began: convert it immediately
        so its address space carries the same protections (the forked
        page table inherits them)."""
        if not self.converted:
            if self.unconverted is not None:
                # mid partial conversion: the new thread joins the set
                # the next episode converts
                self.unconverted.add(thread.tid)
            return
        parent_ptsb = thread.process.ptsb
        if parent_ptsb is not None:
            thread.pending_penalty += parent_ptsb.commit(
                thread.core, "thread_create")
        process = engine.convert_thread_to_process(thread)
        self._install_ptsb(process)
        cost = engine.costs.fork + engine.costs.trampoline
        thread.pending_penalty += cost
        observer = engine._observer
        if observer is not None:
            observer.on_t2p({"cycle": engine.machine.now, "threads": 1,
                             "cycles": cost, "mode": "adopt"})

    # ------------------------------------------------------------------
    def _app_processes(self, engine):
        seen = set()
        for thread in engine.threads.values():
            if thread.process.pid not in seen:
                seen.add(thread.process.pid)
                yield thread.process

    def _install_ptsb(self, process):
        if process.ptsb is None:
            PageTwinningStoreBuffer(
                process, self.engine.machine, self.engine.costs,
                self.config.huge_commit_optimization,
                on_commit=self._on_commit, faults=self.faults,
                on_conflict=self.note_conflict)

    def _on_commit(self, info):
        self.stats.note_commit(info)
        observer = self.engine._observer
        if observer is not None:
            observer.on_ptsb_commit(info)

    def _protect_target(self, engine, target):
        from repro.sim.costs import PAGE_4K

        self.protected_lines.add(target.line_va)
        page_va, page_size = target.page_va, target.page_size
        if page_size > PAGE_4K and self.config.repair_page_split:
            # the application region uses huge pages: remap the hot
            # 2 MB page as 4 KB pages so diff/commit stay cheap, then
            # protect only the 4 KB page holding the hot line
            processes = list(self._app_processes(engine))
            for process in processes:
                small = process.aspace.split_mapping_page(target.page_va)
                page_va, page_size = process.aspace.page_base(
                    target.line_va)
        if page_va in self.protected_pages \
                or page_va in self.blacklisted_pages:
            return
        for process in self._app_processes(engine):
            process.aspace.protect_page(page_va)
        self.protected_pages[page_va] = page_size
        self.stats.protected_pages = len(self.protected_pages)

    def _protect_all_memory(self, engine):
        """PTSB-everywhere ablation: protect heap, globals, and stacks."""
        from repro.sim.addrspace import PRIVATE

        for process in self._app_processes(engine):
            for mapping in process.aspace.mappings():
                kind = mapping.name.split(":")[0]
                if kind not in ("heap", "globals", "stack"):
                    continue
                mapping.mode = PRIVATE
                for state in mapping.pages.values():
                    state.mode = PRIVATE
            process.aspace.invalidate_translations()
        self.stats.protected_pages = -1        # sentinel: everything
