"""Per-cache-line sample aggregation and sharing classification.

Works purely from detector-visible information: sampled (tid, PC, va)
records plus disassembly of the PC (access kind and width).  Two
threads making conflicting accesses to one line are *truly* sharing if
their byte ranges overlap and *falsely* sharing if they are disjoint
(paper sections 2 and 3.1).
"""

from dataclasses import dataclass, field

from repro.sim.costs import LINE_SIZE

FALSE_SHARING = "false"
TRUE_SHARING = "true"
NO_SHARING = "none"


@dataclass
class _ThreadAccess:
    """One thread's sampled access pattern within a line."""

    reads: dict = field(default_factory=dict)    # (offset, width) -> count
    writes: dict = field(default_factory=dict)

    @property
    def count(self):
        return sum(self.reads.values()) + sum(self.writes.values())

    def ranges(self, writes_only=False):
        source = [self.writes] if writes_only else [self.reads, self.writes]
        out = []
        for table in source:
            out.extend(table)
        return out


class LineStats:
    """Aggregated samples for one cache line."""

    __slots__ = ("line_va", "by_tid", "records", "pcs")

    def __init__(self, line_va):
        self.line_va = line_va
        self.by_tid = {}
        self.records = 0
        self.pcs = set()       # sampled instruction addresses (LASER
                               # instruments these; TMI ignores them)

    def add(self, tid, offset, width, is_store, pc=None):
        acc = self.by_tid.get(tid)
        if acc is None:
            acc = _ThreadAccess()
            self.by_tid[tid] = acc
        # clamp skid-displaced offsets into the line
        offset = max(0, min(offset, LINE_SIZE - 1))
        width = max(1, min(width, LINE_SIZE - offset))
        table = acc.writes if is_store else acc.reads
        key = (offset, width)
        table[key] = table.get(key, 0) + 1
        if pc is not None:
            self.pcs.add(pc)
        self.records += 1

    # ------------------------------------------------------------------
    def classify(self):
        """(classification, false_weight, true_weight).

        Weights count conflicting sample pairs between threads: pairs
        with overlapping byte ranges score as true sharing, disjoint
        pairs as false sharing.
        """
        tids = list(self.by_tid)
        if len(tids) < 2:
            return NO_SHARING, 0, 0
        false_weight = 0
        true_weight = 0
        for i, t1 in enumerate(tids):
            for t2 in tids[i + 1:]:
                a, b = self.by_tid[t1], self.by_tid[t2]
                f, t = _pair_weights(a, b)
                false_weight += f
                true_weight += t
        if false_weight == 0 and true_weight == 0:
            return NO_SHARING, 0, 0
        label = (FALSE_SHARING if false_weight >= true_weight
                 else TRUE_SHARING)
        return label, false_weight, true_weight


def _pair_weights(a, b):
    """Conflicting-sample weights between two threads on one line.

    Every sample here came from a HITM — the access hit a line some
    core held Modified — so a writer is implied even when the sampled
    accesses themselves are loads (PEBS under-reports store HITMs,
    section 2.1).  All cross-thread sample pairs therefore count as
    conflicts: disjoint byte ranges score as false sharing, overlapping
    ranges as true sharing.
    """
    false_weight = 0
    true_weight = 0
    for (off1, w1), c1 in _all_accesses(a):
        for (off2, w2), c2 in _all_accesses(b):
            weight = min(c1, c2)
            if off1 + w1 <= off2 or off2 + w2 <= off1:
                false_weight += weight
            else:
                true_weight += weight
    return false_weight, true_weight


def _all_accesses(acc):
    items = list(acc.writes.items())
    items.extend(acc.reads.items())
    return items
