"""Statistics collected by the TMI runtime (Table 3, Figures 4/7/8)."""

from dataclasses import dataclass, field


@dataclass
class TmiStats:
    """Everything the evaluation reads out of one TMI run."""

    intervals: int = 0
    records_seen: int = 0
    #: First interval whose analysis produced repair targets (1-based);
    #: Table 3's "Unrepaired (s)" in interval-seconds.
    repair_trigger_interval: int = 0
    repair_trigger_cycle: int = 0
    conversions: list = field(default_factory=list)
    commits: int = 0
    commit_pages: int = 0
    commit_bytes: int = 0
    commit_cycles: int = 0
    protected_pages: int = 0
    ptsb_flushes: int = 0
    relaxed_fast_path: int = 0
    twin_bytes_peak: int = 0
    #: Per-commit merged byte counts (feeds the commit-size histogram
    #: on the metrics surface).
    commit_sizes: list = field(default_factory=list)
    #: PEBS records lost to overflow/injection (satellite: bounded
    #: perf buffers surface their drops instead of hiding them).
    records_dropped: int = 0
    #: Repair episodes that completed / that failed and were retried.
    repair_episodes: int = 0
    repair_episode_failures: int = 0
    #: Injected PTSB commit conflicts observed.
    commit_conflicts: int = 0
    #: Pages demoted and blacklisted as unrepairable.
    pages_blacklisted: int = 0
    #: Degradation-ladder transition log (dicts; see core/ladder.py).
    degradations: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def note_commit(self, info):
        self.commits += 1
        self.commit_pages += info.get("pages", 0)
        self.commit_bytes += info.get("bytes", 0)
        self.commit_sizes.append(info.get("bytes", 0))

    def t2p_microseconds(self, costs):
        """Mean thread->process conversion latency (Table 3, T2P us)."""
        if not self.conversions:
            return 0.0
        return sum(r.t2p_microseconds(costs) for r in self.conversions) \
            / len(self.conversions)

    def commits_per_interval(self):
        """Commit rate in the paper's commits/s units (interval = 1 s)."""
        active = self.intervals - max(self.repair_trigger_interval - 1, 0)
        if active <= 0 or not self.commits:
            return 0.0
        return self.commits / active

    def report(self, costs):
        return {
            "intervals": self.intervals,
            "records_seen": self.records_seen,
            "repaired": bool(self.conversions),
            "unrepaired_intervals": self.repair_trigger_interval,
            "t2p_us": round(self.t2p_microseconds(costs), 1),
            "commits": self.commits,
            "commits_per_interval": round(self.commits_per_interval(), 2),
            "commit_pages": self.commit_pages,
            "commit_bytes": self.commit_bytes,
            "protected_pages": self.protected_pages,
            "ptsb_flushes": self.ptsb_flushes,
            "relaxed_fast_path": self.relaxed_fast_path,
            "records_dropped": self.records_dropped,
            "repair_episodes": self.repair_episodes,
            "repair_episode_failures": self.repair_episode_failures,
            "commit_conflicts": self.commit_conflicts,
            "pages_blacklisted": self.pages_blacklisted,
            "degradations": len(self.degradations),
        }
