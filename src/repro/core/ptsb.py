"""The Page Twinning Store Buffer (PTSB).

The repair mechanism TMI borrows from Sheriff and deploys *targeted*
(sections 2.2, 3.3, Figure 2): a protected page is process-private and
copy-on-write; the first write captures a read-only *twin* (snapshot of
the shared page) and a mutable working copy; at synchronization
operations the working copy is diffed against the twin and only the
changed bytes are merged into shared memory, after which the page is
re-armed (private frame dropped, next write re-twins).

Because the diff cannot see a byte overwritten with an identical value,
an aligned multi-byte store can be torn into per-byte stores — the
AMBSA violation of Figure 3.  This module reproduces that faithfully:
merging changes *only* the bytes identified by the diff (updating other
bytes would fabricate stores the program never performed).
"""

from repro.sim.costs import LINE_SIZE, PAGE_4K


class PageTwinningStoreBuffer:
    """Per-process PTSB state and commit machinery."""

    def __init__(self, process, machine, costs,
                 huge_commit_optimization=True, on_commit=None,
                 faults=None, on_conflict=None):
        self.process = process
        self.machine = machine
        self.costs = costs
        self.huge_commit_optimization = huge_commit_optimization
        self.on_commit = on_commit           # callback(CommitEvent-ish dict)
        self.faults = faults                 # armed FaultInjector or None
        self.on_conflict = on_conflict       # callback(page_va)
        self.conflicts = 0
        self._twins = {}     # (mapping id, page index) -> entry
        self.commit_count = 0
        self.committed_pages = 0
        self.merged_bytes = 0
        self.twin_bytes_peak = 0
        process.aspace.cow_hook = self.capture_twin
        process.ptsb = self

    # ------------------------------------------------------------------
    # twin capture (invoked from the COW fault path)
    # ------------------------------------------------------------------
    def capture_twin(self, aspace, mapping, index, shared_pa, private_pa):
        """Snapshot the pre-write page; returns extra fault cycles."""
        twin = self.machine.physmem.snapshot(shared_pa, mapping.page_size)
        self._twins[(id(mapping), index)] = (mapping, index, twin)
        live = sum(m.page_size for m, _i, _t in self._twins.values())
        self.twin_bytes_peak = max(self.twin_bytes_peak, live)
        # the twin is a second page copy on top of the COW copy
        return int(self.costs.copy_per_byte * mapping.page_size)

    @property
    def dirty_pages(self):
        return len(self._twins)

    # ------------------------------------------------------------------
    # commit (diff + merge), at synchronization operations
    # ------------------------------------------------------------------
    def commit(self, core, reason):
        """Diff and merge every dirty page; returns cycle cost.

        The merge performs real stores into the shared frames, so other
        processes observe exactly the changed bytes — and only those.
        """
        self.commit_count += 1
        if not self._twins:
            return 0
        costs = self.costs
        physmem = self.machine.physmem
        total = 0
        pages = 0
        merged = 0
        spans = [] if self.on_commit is not None else None
        for mapping, index, twin in self._twins.values():
            page_size = mapping.page_size
            state = mapping.pages[index]
            if not state.private_pa:
                continue
            working = physmem.read(state.private_pa, page_size)
            total += self._diff_cost(page_size, twin, working)
            if self.faults is not None and self.faults.fire(
                    "ptsb.commit_conflict", pid=self.process.pid,
                    page_va=mapping.start + index * page_size):
                # a concurrent writer dirtied the shared page between
                # diff and merge: the commit re-diffs and retries (the
                # merged bytes are still exactly the diffed bytes, so
                # correctness is unaffected -- the page just pays twice)
                self.conflicts += 1
                total += self._diff_cost(page_size, twin, working)
                total += costs.commit_page_fixed
                if self.on_conflict is not None:
                    self.on_conflict(mapping.start + index * page_size)
            shared_base = mapping.backing.page_pa(
                mapping.backing_offset + index * page_size)
            changed = _changed_runs(twin, working)
            touched_lines = set()
            for start, end in changed:
                physmem.write(shared_base + start, working[start:end])
                if spans is not None:
                    spans.append((shared_base + start, shared_base + end))
                merged += end - start
                total += int(costs.merge_per_byte * (end - start))
                first = (shared_base + start) & ~(LINE_SIZE - 1)
                last = (shared_base + end - 1) & ~(LINE_SIZE - 1)
                line = first
                while line <= last:
                    touched_lines.add(line)
                    line += LINE_SIZE
            now = self.machine.core_clock[core]
            for line in sorted(touched_lines):
                outcome = self.machine.directory.access(core, line, 1,
                                                        True, now=now)
                total += outcome.cost
            # re-arm the page: drop the working copy, stay protected
            self.machine.directory.flush_range(state.private_pa, page_size)
            physmem.free(state.private_pa, page_size)
            self.process.aspace.private_bytes -= page_size
            state.private_pa = 0
            total += costs.commit_page_fixed
            pages += 1
        self._twins.clear()
        if pages:
            # the re-arm dropped private frames behind translate's back
            self.process.aspace.invalidate_translations()
        self.committed_pages += pages
        self.merged_bytes += merged
        if self.on_commit is not None:
            self.on_commit({"pid": self.process.pid, "core": core,
                            "reason": reason, "pages": pages,
                            "bytes": merged, "spans": spans})
        return total

    def _diff_cost(self, page_size, twin, working):
        """Cycle cost of diffing one page.

        Huge pages first memcmp 4 KB chunks and scan bytes only in
        chunks that differ (section 4.4's commit optimization).
        """
        costs = self.costs
        if page_size <= PAGE_4K or not self.huge_commit_optimization:
            return int(costs.diff_per_byte * page_size)
        cost = int(costs.memcmp_per_byte * page_size)
        for off in range(0, page_size, PAGE_4K):
            if twin[off:off + PAGE_4K] != working[off:off + PAGE_4K]:
                cost += int(costs.diff_per_byte * PAGE_4K)
        return cost


def _changed_runs(twin, working):
    """Byte ranges [start, end) where ``working`` differs from ``twin``.

    Chunked equality tests keep the scan fast; the byte-level walk only
    happens inside unequal 64-byte spans.
    """
    runs = []
    n = len(twin)
    start = None
    for base in range(0, n, LINE_SIZE):
        span_t = twin[base:base + LINE_SIZE]
        span_w = working[base:base + LINE_SIZE]
        if span_t == span_w:
            if start is not None:
                runs.append((start, base))
                start = None
            continue
        for i in range(len(span_t)):
            if span_t[i] != span_w[i]:
                if start is None:
                    start = base + i
            elif start is not None:
                runs.append((start, base + i))
                start = None
    if start is not None:
        runs.append((start, n))
    return runs
