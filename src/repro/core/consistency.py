"""Code-centric memory consistency (paper section 3.4).

A program is partitioned into *regular*, *atomic*, and *assembly* code
regions; the consistency model in force changes at region boundaries.
Table 2 gives the semantics of concurrent conflicting accesses between
region kinds and determines where a PTSB may be used:

- regular/regular, regular/atomic conflicts are data races → undefined
  behaviour → PTSB permitted (case 1);
- atomic/atomic is race-free and guarantees atomicity → PTSB forbidden
  (case 2);
- assembly interactions guarantee aligned multi-byte store atomicity
  (TSO) → PTSB forbidden (cases 3-5; case 3 is technically undefined
  but TMI flushes anyway for uniformity).

TMI's policy: flush and disable the PTSB around atomic and assembly
regions, with the refinement that ``memory_order_relaxed`` atomics need
atomicity only — they run directly against shared memory without
forcing a flush (the shptr-relaxed speedup).
"""

from dataclasses import dataclass

from repro.isa.ops import (AtomicLoad, AtomicRMW, AtomicStore, RELAXED,
                           REGION_ASM, REGION_ATOMIC)

#: Region kinds as they appear in Table 2 (regular, atomic, x86 asm).
REGULAR = "regular"
ATOMIC = REGION_ATOMIC
ASM = REGION_ASM

#: Table 2 of the paper: semantics of concurrent conflicting accesses
#: between code-region kinds, and whether PTSB use is permitted there
#: (the shaded cells).  Keys are unordered pairs.
TABLE2 = {
    frozenset([REGULAR]): ("undefined", True),            # case 1
    frozenset([REGULAR, ATOMIC]): ("undefined", True),    # case 1
    frozenset([ATOMIC]): ("atomic", False),                # case 2
    frozenset([REGULAR, ASM]): ("unknown", False),         # case 3
    frozenset([ATOMIC, ASM]): ("unknown", False),          # case 4
    frozenset([ASM]): ("TSO", False),                      # case 5
}


def table2_semantics(kind_a, kind_b):
    """(semantics, ptsb_permitted) for a pair of region kinds."""
    return TABLE2[frozenset([kind_a, kind_b])]


@dataclass
class ConsistencyDecision:
    """What the runtime must do for one access or region event."""

    flush_ptsb: bool = False
    bypass_ptsb: bool = False      # route access to shared memory


class CodeCentricPolicy:
    """TMI's implementation of the code-centric callbacks.

    ``enabled=False`` is the unsafe ablation: all callbacks become NOPs
    and the PTSB stays active through atomic and assembly code — the
    configuration under which canneal corrupts and cholesky hangs
    (Figures 11 and 12).
    """

    def __init__(self, enabled=True, flush_relaxed=False):
        self.enabled = enabled
        #: Conservative ablation: treat relaxed atomics like seq_cst
        #: (flush the PTSB), forfeiting the shptr-relaxed optimization.
        self.flush_relaxed = flush_relaxed
        self.flushes = 0
        self.relaxed_fast_path = 0

    # ------------------------------------------------------------------
    # region-boundary callbacks (installed through the loader table)
    # ------------------------------------------------------------------
    def on_region_begin(self, thread, kind, ordering):
        """Decision at an atomic or asm region entry."""
        if not self.enabled:
            return ConsistencyDecision()
        if kind == REGION_ASM:
            self.flushes += 1
            return ConsistencyDecision(flush_ptsb=True, bypass_ptsb=True)
        if kind == REGION_ATOMIC:
            if ordering == RELAXED and not self.flush_relaxed:
                # atomicity only: operate on shared pages, no flush
                self.relaxed_fast_path += 1
                return ConsistencyDecision(bypass_ptsb=True)
            self.flushes += 1
            return ConsistencyDecision(flush_ptsb=True, bypass_ptsb=True)
        return ConsistencyDecision()

    def on_region_end(self, thread, kind):
        return ConsistencyDecision()

    # ------------------------------------------------------------------
    # per-access routing
    # ------------------------------------------------------------------
    def access_bypasses_ptsb(self, thread, op):
        """True when the access must go directly to shared memory.

        Atomics always do (their atomicity is guaranteed by the shared
        mapping); so does everything inside an assembly or atomic
        region; so do volatile accesses, which code-centric consistency
        honors with the SC semantics the original programmer intended
        (the cholesky case, Figure 12).
        """
        if not self.enabled:
            return False
        if isinstance(op, (AtomicLoad, AtomicStore, AtomicRMW)):
            return True
        if getattr(op, "volatile", False):
            return True
        return bool(thread.region_stack)
