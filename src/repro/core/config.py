"""TMI configuration knobs.

Defaults correspond to the paper's evaluated configuration: perf sample
period 100, huge pages enabled with the optimized commit path, targeted
page protection, and code-centric consistency on (sections 4.1, 4.4).

Time base: the paper's detector analyzes accumulated HITM records "once
per second" on minute-long native inputs.  Our simulated inputs are
scaled down ~1000x, so one *detection interval* plays the role of one
second; rate-like quantities (repair threshold, Table 3's commits/s and
unrepaired seconds) are expressed per interval and reported in
interval-seconds.  EXPERIMENTS.md documents this substitution.
"""

from dataclasses import dataclass, field

from repro.sim.costs import PAGE_2M, PAGE_4K


@dataclass
class TmiConfig:
    """Tunable parameters of the TMI runtime."""

    #: perf sample period (HITM events per PEBS record), Figure 4.
    period: int = 100
    #: Detection-interval length in cycles (the "once per second" analog).
    detect_interval_cycles: int = 150_000
    #: Estimated HITM events per interval on one cache line above which
    #: the line is considered *significant* sharing (the paper repairs
    #: structures producing >100k HITM events/second).
    repair_threshold_events: int = 100
    #: Repair only lines whose sharing is mostly false (vs. true).
    min_false_fraction: float = 0.5
    #: Use 2 MB huge pages for the process-shared application region
    #: (the paper's default; Figure 10 compares against 4 KB).
    huge_pages: bool = True
    #: memcmp-prefilter optimization for huge-page commits (section 4.4).
    huge_commit_optimization: bool = True
    #: Targeted page protection (False = PTSB-everywhere ablation).
    targeted: bool = True
    #: When the application region uses huge pages, remap a targeted
    #: 2 MB page as 4 KB pages before protecting it, so diff/commit
    #: work at 4 KB granularity (the paper notes 4 KB pages cut commit
    #: costs ~5x, section 4.4; at our ~1000x-scaled inputs whole-huge-
    #: page commits would dominate runs).  False = paper-literal 2 MB
    #: protection, used by the huge-commit ablation.
    repair_page_split: bool = True
    #: Code-centric consistency callbacks honored (False = ablation;
    #: UNSAFE: reproduces Sheriff-style corruption).
    code_centric: bool = True
    #: Enable the repair mechanism at all (False = tmi-detect).
    enable_repair: bool = True
    #: Hard cap on pages protected per repair episode.
    max_repair_pages: int = 64
    #: Retries granted to a faulting repair action (ptrace attach
    #: rounds, per-thread fork) before the episode counts as failed.
    fault_retry_limit: int = 3
    #: Base backoff charged per retry in simulated cycles; doubles with
    #: each attempt (retry n costs ``base * 2**n`` on top of the op).
    fault_backoff_cycles: int = 25_000
    #: PTSB commit conflicts tolerated per page before the page is
    #: blacklisted (demoted to shared, never re-protected).
    page_conflict_budget: int = 4
    #: Consecutive failed repair episodes before the ladder degrades
    #: ``protect`` -> ``detect``.
    episode_failure_budget: int = 3
    #: Lost PEBS records (drops + overflows) tolerated before the
    #: ladder degrades one level (detection data untrustworthy).
    perf_fault_budget: int = 2_048
    #: Detection intervals a degraded ladder waits before re-arming
    #: one level up.
    ladder_cooldown_intervals: int = 8
    #: Bound on undrained PEBS records queued for the detector; beyond
    #: it records are dropped and counted (never reached fault-free).
    perf_queue_limit: int = 65_536
    #: Extra cycles a fault-injected ``ptsb.delayed_flush`` stalls a
    #: consistency flush.
    delayed_flush_cycles: int = 20_000
    #: Extra settings bag for experiments.
    extra: dict = field(default_factory=dict)

    @property
    def app_page_size(self):
        return PAGE_2M if self.huge_pages else PAGE_4K

    def interval_seconds(self, costs):
        """Wall length of one detection interval (the scaled 'second')."""
        return costs.seconds(self.detect_interval_cycles)
