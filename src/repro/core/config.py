"""TMI configuration knobs.

Defaults correspond to the paper's evaluated configuration: perf sample
period 100, huge pages enabled with the optimized commit path, targeted
page protection, and code-centric consistency on (sections 4.1, 4.4).

Time base: the paper's detector analyzes accumulated HITM records "once
per second" on minute-long native inputs.  Our simulated inputs are
scaled down ~1000x, so one *detection interval* plays the role of one
second; rate-like quantities (repair threshold, Table 3's commits/s and
unrepaired seconds) are expressed per interval and reported in
interval-seconds.  EXPERIMENTS.md documents this substitution.
"""

from dataclasses import dataclass, field

from repro.sim.costs import PAGE_2M, PAGE_4K


@dataclass
class TmiConfig:
    """Tunable parameters of the TMI runtime."""

    #: perf sample period (HITM events per PEBS record), Figure 4.
    period: int = 100
    #: Detection-interval length in cycles (the "once per second" analog).
    detect_interval_cycles: int = 150_000
    #: Estimated HITM events per interval on one cache line above which
    #: the line is considered *significant* sharing (the paper repairs
    #: structures producing >100k HITM events/second).
    repair_threshold_events: int = 100
    #: Repair only lines whose sharing is mostly false (vs. true).
    min_false_fraction: float = 0.5
    #: Use 2 MB huge pages for the process-shared application region
    #: (the paper's default; Figure 10 compares against 4 KB).
    huge_pages: bool = True
    #: memcmp-prefilter optimization for huge-page commits (section 4.4).
    huge_commit_optimization: bool = True
    #: Targeted page protection (False = PTSB-everywhere ablation).
    targeted: bool = True
    #: When the application region uses huge pages, remap a targeted
    #: 2 MB page as 4 KB pages before protecting it, so diff/commit
    #: work at 4 KB granularity (the paper notes 4 KB pages cut commit
    #: costs ~5x, section 4.4; at our ~1000x-scaled inputs whole-huge-
    #: page commits would dominate runs).  False = paper-literal 2 MB
    #: protection, used by the huge-commit ablation.
    repair_page_split: bool = True
    #: Code-centric consistency callbacks honored (False = ablation;
    #: UNSAFE: reproduces Sheriff-style corruption).
    code_centric: bool = True
    #: Enable the repair mechanism at all (False = tmi-detect).
    enable_repair: bool = True
    #: Hard cap on pages protected per repair episode.
    max_repair_pages: int = 64
    #: Extra settings bag for experiments.
    extra: dict = field(default_factory=dict)

    @property
    def app_page_size(self):
        return PAGE_2M if self.huge_pages else PAGE_4K

    def interval_seconds(self, costs):
        """Wall length of one detection interval (the scaled 'second')."""
        return costs.seconds(self.detect_interval_cycles)
