"""The paper's contribution: the TMI runtime — detection, repair,
PTSB, and code-centric consistency."""

from repro.core.classify import (FALSE_SHARING, LineStats, NO_SHARING,
                                 TRUE_SHARING)
from repro.core.config import TmiConfig
from repro.core.consistency import (ASM, ATOMIC, CodeCentricPolicy,
                                    ConsistencyDecision, REGULAR, TABLE2,
                                    table2_semantics)
from repro.core.detector import (FalseSharingDetector, IntervalReport,
                                 RepairTarget)
from repro.core.ptsb import PageTwinningStoreBuffer
from repro.core.repair import RepairManager
from repro.core.runtime import (STAGE_ALLOC, STAGE_DETECT, STAGE_PROTECT,
                                TmiRuntime)
from repro.core.stats import TmiStats

__all__ = [
    "FALSE_SHARING", "LineStats", "NO_SHARING", "TRUE_SHARING",
    "TmiConfig", "ASM", "ATOMIC", "CodeCentricPolicy",
    "ConsistencyDecision", "REGULAR", "TABLE2", "table2_semantics",
    "FalseSharingDetector", "IntervalReport", "RepairTarget",
    "PageTwinningStoreBuffer", "RepairManager", "STAGE_ALLOC",
    "STAGE_DETECT", "STAGE_PROTECT", "TmiRuntime", "TmiStats",
]
