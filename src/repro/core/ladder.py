"""TMI's degradation ladder: staged fallback under substrate faults.

TMI is compatible-by-default: when the repair substrate misbehaves —
ptrace attach rounds time out, fork() fails mid-conversion, PEBS data
goes untrustworthy — the runtime must degrade to a *less ambitious but
still correct* stage rather than wedge or corrupt.  The ladder tracks
one of the three deployment stages as the current operating level,

    ``protect``  →  ``detect``  →  ``alloc``

stepping down when a failure budget is exhausted (repeated failed
repair episodes demote ``protect``→``detect``; excessive PEBS record
loss demotes one further to ``alloc``) and re-arming one level up after
a cooldown measured in detection intervals.  Every transition is
recorded and surfaced through the observer (``on_degradation``) and
metrics, so a degradation timeline reads directly out of a trace
(see ``docs/ROBUSTNESS.md``).

The ladder never moves in a fault-free run: budgets are only consumed
by failures, so the cycle-exactness goldens are unaffected.
"""

#: Ladder levels, weakest first (indices double as the metric gauge).
LEVELS = ("alloc", "detect", "protect")


class DegradationLadder:
    """Failure budgets, staged fallback, and cooldown re-arm."""

    def __init__(self, config, start="protect", on_transition=None):
        if start not in LEVELS:
            raise ValueError(f"unknown ladder level {start!r}")
        self.config = config
        self.start = start
        self.level = start
        #: Highest level cooldown re-arm may return to; lowered when a
        #: stage is permanently unavailable (e.g. the shared app region
        #: fell back to private memory, so repair can never work).
        self.ceiling = start
        #: Transition log: dicts with cycle/interval/from/to/reason.
        self.transitions = []
        self.on_transition = on_transition
        self.episode_failures = 0      # consecutive failed episodes
        self._degraded_interval = None
        self._perf_drop_baseline = 0

    # ------------------------------------------------------------------
    @property
    def level_index(self):
        """Numeric level (2=protect, 1=detect, 0=alloc) for gauges."""
        return LEVELS.index(self.level)

    def allows_repair(self):
        """Whether new repair episodes may be scheduled."""
        return self.level == "protect"

    def allows_detection(self):
        """Whether sampling/detection work should run at all."""
        return self.level != "alloc"

    # ------------------------------------------------------------------
    def note_episode_failure(self, cycle, interval, reason):
        """One repair episode failed (attach timeout, fork failure)."""
        self.episode_failures += 1
        if (self.level == "protect" and self.episode_failures
                >= self.config.episode_failure_budget):
            self._step_down(cycle, interval, reason)

    def note_episode_success(self):
        """A repair episode completed; the failure streak resets."""
        self.episode_failures = 0

    def note_perf_drops(self, dropped_total, cycle, interval):
        """Account cumulative lost PEBS records against the budget."""
        fresh = dropped_total - self._perf_drop_baseline
        if fresh >= self.config.perf_fault_budget \
                and self.level != "alloc":
            self._perf_drop_baseline = dropped_total
            self._step_down(cycle, interval, "perf-record-loss")

    def force_level(self, level, cycle, interval, reason,
                    permanent=False):
        """Jump directly to ``level`` (setup-time degradation, e.g. a
        persistent ``shm_open`` failure); ``permanent`` also lowers the
        re-arm ceiling so cooldown cannot climb back above it."""
        if level != self.level:
            self._transition(cycle, interval, level, reason)
            self._degraded_interval = interval
        if permanent and LEVELS.index(level) < LEVELS.index(self.ceiling):
            self.ceiling = level

    # ------------------------------------------------------------------
    def tick(self, cycle, interval):
        """End-of-interval: re-arm one level after the cooldown."""
        if self.level == self.ceiling or self._degraded_interval is None:
            return
        elapsed = interval - self._degraded_interval
        if elapsed < self.config.ladder_cooldown_intervals:
            return
        self._transition(cycle, interval,
                         LEVELS[self.level_index + 1], "cooldown-rearm")
        self.episode_failures = 0
        self._degraded_interval = (
            None if self.level == self.ceiling else interval)

    # ------------------------------------------------------------------
    def _step_down(self, cycle, interval, reason):
        if self.level_index == 0:
            return
        self._transition(cycle, interval,
                         LEVELS[self.level_index - 1], reason)
        self._degraded_interval = interval

    def _transition(self, cycle, interval, to, reason):
        info = {"cycle": cycle, "interval": interval,
                "from": self.level, "to": to, "reason": reason}
        self.level = to
        self.transitions.append(info)
        if self.on_transition is not None:
            self.on_transition(info)
