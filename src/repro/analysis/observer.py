"""Engine observer interface.

The engine accepts one observer (``Engine.attach_observer``) and calls
these methods at access, synchronization, and thread-lifecycle events.
Every method is a no-op here so concrete observers — the race sanitizer
and the HITM ground-truth collector — override only what they consume.

The engine charges **zero cycles** for observer calls and emits none of
them when no observer is attached, so simulation results are
bit-identical with analysis disabled.

Event ordering contracts the sanitizer relies on:

- ``on_release(tid, obj)`` fires *after* the runtime's release hook (so
  a TMI PTSB commit at the release is checked against the releaser's
  pre-release clock), and ``on_acquire(tid, obj)`` fires *before* the
  runtime's acquire hook (so a commit at the acquire sees the
  post-acquire clock);
- ``on_barrier(tids)`` fires at the release point, after all parties'
  release-side hooks and before any acquire-side hook.
"""


class EngineObserver:
    """Base observer: every callback is a no-op override point."""

    def on_attach(self, engine):
        """Observer was attached; ``engine`` is fully constructed."""

    # ------------------------------------------------------------------
    # data accesses
    # ------------------------------------------------------------------
    def on_access(self, tid, site, addr, width, is_write, volatile):
        """One plain load or store (including each access of a run)."""

    def on_atomic(self, tid, site, addr, width, is_write, is_rmw,
                  ordering):
        """One atomic access; RMWs report ``is_write=True, is_rmw=True``."""

    def on_fence(self, tid):
        """A full memory fence executed."""

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def on_acquire(self, tid, obj):
        """Thread ``tid`` acquired mutex ``obj``."""

    def on_release(self, tid, obj):
        """Thread ``tid`` is releasing mutex ``obj`` (also fired when a
        cond_wait atomically releases the mutex)."""

    def on_barrier(self, tids):
        """A barrier released; ``tids`` are all participants."""

    def on_hb_edge(self, src_tid, dst_tid):
        """A direct happens-before edge (join completion, cond signal)."""

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def on_thread_create(self, parent_tid, child_tid):
        """``parent_tid`` spawned ``child_tid``."""

    def on_thread_exit(self, tid):
        """Thread ``tid`` ran to completion."""

    # ------------------------------------------------------------------
    # TMI runtime
    # ------------------------------------------------------------------
    def on_ptsb_commit(self, info):
        """A PTSB committed; ``info`` has pid/core/reason/pages/bytes
        and the merged physical byte ``spans``."""
