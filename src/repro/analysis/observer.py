"""Engine observer interface.

The engine accepts one observer (``Engine.attach_observer``) and calls
these methods at access, synchronization, and thread-lifecycle events.
Every method is a no-op here so concrete observers — the race sanitizer
and the HITM ground-truth collector — override only what they consume.

The engine charges **zero cycles** for observer calls and emits none of
them when no observer is attached, so simulation results are
bit-identical with analysis disabled.

Event ordering contracts the sanitizer relies on:

- ``on_release(tid, obj)`` fires *after* the runtime's release hook (so
  a TMI PTSB commit at the release is checked against the releaser's
  pre-release clock), and ``on_acquire(tid, obj)`` fires *before* the
  runtime's acquire hook (so a commit at the acquire sees the
  post-acquire clock);
- ``on_barrier(tids)`` fires at the release point, after all parties'
  release-side hooks and before any acquire-side hook.
"""


class EngineObserver:
    """Base observer: every callback is a no-op override point."""

    #: Observers that never consume per-access callbacks (``on_access``
    #: / ``on_atomic`` are no-ops for them) may set this True; it lets
    #: the engine keep the vector batch executor active while they are
    #: attached.  Anything that inspects individual accesses (the race
    #: sanitizer, an access-event tracer) must leave it False so every
    #: access takes the serial, callback-emitting path.
    vector_safe = False

    def on_attach(self, engine):
        """Observer was attached; ``engine`` is fully constructed."""

    # ------------------------------------------------------------------
    # data accesses
    # ------------------------------------------------------------------
    def on_access(self, tid, site, addr, width, is_write, volatile):
        """One plain load or store (including each access of a run)."""

    def on_atomic(self, tid, site, addr, width, is_write, is_rmw,
                  ordering):
        """One atomic access; RMWs report ``is_write=True, is_rmw=True``."""

    def on_fence(self, tid):
        """A full memory fence executed."""

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def on_acquire(self, tid, obj):
        """Thread ``tid`` acquired mutex ``obj``."""

    def on_release(self, tid, obj):
        """Thread ``tid`` is releasing mutex ``obj`` (also fired when a
        cond_wait atomically releases the mutex)."""

    def on_barrier(self, tids):
        """A barrier released; ``tids`` are all participants."""

    def on_hb_edge(self, src_tid, dst_tid):
        """A direct happens-before edge (join completion, cond signal)."""

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def on_thread_create(self, parent_tid, child_tid):
        """``parent_tid`` spawned ``child_tid``."""

    def on_thread_exit(self, tid):
        """Thread ``tid`` ran to completion."""

    # ------------------------------------------------------------------
    # TMI runtime
    # ------------------------------------------------------------------
    def on_ptsb_commit(self, info):
        """A PTSB committed; ``info`` has pid/core/reason/pages/bytes
        and the merged physical byte ``spans``."""

    def on_ptsb_flush(self, info):
        """Code-centric consistency flushed a PTSB on region entry;
        ``info`` has the flushing ``tid`` and the ``region`` kind."""

    def on_t2p(self, info):
        """A thread-to-process conversion episode ran; ``info`` has
        ``cycle``, ``threads`` converted, total ``cycles`` charged, and
        ``mode`` (``initial`` stop-the-world batch or ``adopt`` for a
        thread created after repair began)."""

    # ------------------------------------------------------------------
    # machine / sampling (observability hooks)
    # ------------------------------------------------------------------
    def on_hitm(self, event):
        """One hardware HITM (:class:`~repro.sim.events.HitmEvent`).

        Only observers that override this are registered as machine
        HITM listeners — the base class costs nothing.
        """

    def on_pebs_records(self, records):
        """The detection thread drained a batch of
        :class:`~repro.oskit.perf.PebsRecord` samples."""

    def on_detect_interval(self, report, cycle):
        """The detector finished one interval analysis at machine time
        ``cycle``; ``report`` is its
        :class:`~repro.core.detector.IntervalReport`."""

    # ------------------------------------------------------------------
    # fault injection / degradation (robustness hooks)
    # ------------------------------------------------------------------
    def on_fault(self, event):
        """An injected fault fired (or a page was demoted); ``event``
        is the injection-log dict: ``seq``, ``point``, and per-point
        context (cycle, tid, page_va...)."""

    def on_degradation(self, info):
        """The degradation ladder transitioned; ``info`` has ``cycle``,
        ``interval``, ``from``, ``to``, and ``reason`` (see
        :mod:`repro.core.ladder`)."""

    # ------------------------------------------------------------------
    # vector batch execution (perf observability)
    # ------------------------------------------------------------------
    def on_vector_switch(self, tid, ts, mode, ops):
        """The vector executor switched execution modes at simulated
        time ``ts``: ``mode`` is ``"batch"`` (``ops`` accesses advanced
        by the stretch kernel), ``"lockstep"`` (``ops`` accesses per
        thread extrapolated by the lockstep kernel), or ``"fallback"``
        (``ops`` accesses of a vector-active run that ran serially).
        Purely observational — emitted only when batching actually ran,
        and never charged any cycles."""


class ObserverMux(EngineObserver):
    """Fans every observer callback out to an ordered list of children.

    ``Engine.attach_observer`` builds one automatically when a second
    observer attaches (e.g. the race sanitizer plus a tracer), so
    concrete observers never need to know about each other.  The mux
    overrides *every* callback: the engine's override checks (which
    decide e.g. HITM listener registration) therefore see the union of
    the children's needs.
    """

    def __init__(self, observers=()):
        self.observers = list(observers)

    def add(self, observer):
        """Append one child observer."""
        self.observers.append(observer)

    @property
    def vector_safe(self):
        """The mux is vector-safe only if every child is."""
        return all(getattr(observer, "vector_safe", False)
                   for observer in self.observers)


def _fanout(name):
    def method(self, *args):
        for observer in self.observers:
            getattr(observer, name)(*args)
    method.__name__ = name
    method.__doc__ = f"Fan ``{name}`` out to every child observer."
    return method


for _name in ("on_attach", "on_access", "on_atomic", "on_fence",
              "on_acquire", "on_release", "on_barrier", "on_hb_edge",
              "on_thread_create", "on_thread_exit", "on_ptsb_commit",
              "on_ptsb_flush", "on_t2p", "on_hitm", "on_pebs_records",
              "on_detect_interval", "on_fault", "on_degradation",
              "on_vector_switch"):
    setattr(ObserverMux, _name, _fanout(_name))
del _name
