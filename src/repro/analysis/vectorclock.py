"""Vector clocks for the happens-before race sanitizer.

Thread ids are the clock dimensions.  Clocks are sparse dicts: the
simulator spawns a handful of threads, but most sync objects only ever
see a couple of them.
"""


class VectorClock:
    """A sparse tid -> logical-clock map with join/compare."""

    __slots__ = ("_clocks",)

    def __init__(self, init=None):
        self._clocks = dict(init) if init else {}

    def get(self, tid):
        return self._clocks.get(tid, 0)

    def tick(self, tid):
        """Advance ``tid``'s own component (a new epoch begins)."""
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other):
        """Pointwise maximum with ``other`` (happens-before union)."""
        mine = self._clocks
        for tid, clock in other._clocks.items():
            if clock > mine.get(tid, 0):
                mine[tid] = clock

    def covers(self, tid, clock):
        """True when the epoch ``clock@tid`` happens-before this clock."""
        return self._clocks.get(tid, 0) >= clock

    def copy(self):
        return VectorClock(self._clocks)

    def __repr__(self):
        inner = ", ".join(f"t{t}:{c}"
                          for t, c in sorted(self._clocks.items()))
        return f"<VC {inner}>"
