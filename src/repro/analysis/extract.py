"""Static trace extraction: abstract interpretation of op streams.

The linter needs to see every address a workload touches *without*
running the simulator.  Workload bodies are generators over ISA ops, so
we can walk them directly: :class:`TraceExtractor` plays the part of the
engine for :class:`~repro.engine.context.ThreadCtx` — same allocator
construction as the pthreads baseline (addresses match a real run
bit-for-bit for the deterministic pre-spawn allocations), a plain
``dict`` memory model, and blocking lock/barrier/join semantics — but
advances no clocks and charges no cycles.

Threads step round-robin, one op per runnable thread per round, which
keeps flag handoffs and lock ping-pong finite without any notion of
time.  Structural bugs (unbalanced regions, unlock-without-lock,
barrier participation mismatches, deadlocks) become findings instead of
the exceptions the engine would raise.

Classification masks are recorded only while at least two threads are
alive: the paper's detector only ever sees *coherence* traffic, so the
serial prologue (main initializing memory before the spawn) and
epilogue (main reducing worker results after the join) must not count,
or every per-thread output block would look truly shared with main.
"""

from dataclasses import dataclass, field

from repro.alloc import LocklessAllocator, RegionBump
from repro.analysis.findings import ERROR, Finding, WARNING
from repro.engine import layout
from repro.engine.context import ThreadCtx
from repro.errors import AllocationError, ReproError
from repro.isa import ops as O
from repro.isa.disasm import Disassembler
from repro.sim.costs import DEFAULT_COSTS, LINE_SIZE
from repro.sync.objects import Barrier, Condvar, Mutex

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"

#: Op budget before the extractor declares the trace truncated.
DEFAULT_MAX_OPS = 4_000_000

_LINE_MASK = ~(LINE_SIZE - 1)


class _StubMachine:
    """Just enough machine for ``ThreadCtx.now_cycles``."""

    def __init__(self):
        self.core_clock = [0]


class _TraceThread:
    __slots__ = ("tid", "name", "core", "gen", "state", "blocked_on",
                 "pending", "region_stack", "joiners")

    def __init__(self, tid, name):
        self.tid = tid
        self.name = name
        self.core = 0
        self.gen = None
        self.state = _READY
        self.blocked_on = None
        self.pending = None
        self.region_stack = []
        self.joiners = []


@dataclass(frozen=True)
class AllocationRecord:
    """One ``Malloc`` observed during extraction.

    ``ordinal`` is the global malloc sequence number; for the
    deterministic pre-spawn prologue it identifies the same allocation
    across allocators that place it at *different* addresses (pthreads'
    16-offset large blocks vs TMI's line-aligned ones), which is what
    lets a repair plan follow an object into every system variant.
    """

    ordinal: int
    tid: int
    base: int
    size: int
    align: int
    prespawn: bool


@dataclass
class ExtractResult:
    """Everything the linter learns from one abstract execution."""

    #: Structural and per-access findings discovered while tracing.
    findings: list = field(default_factory=list)
    #: line_va -> {tid: [read_byte_mask, write_byte_mask]}, recorded
    #: only during the parallel phase.
    lines: dict = field(default_factory=dict)
    #: line_va -> set of site labels that touched the line.
    line_sites: dict = field(default_factory=dict)
    #: Feature classes actually executed: atomics/asm/volatile/fence.
    executed: dict = field(default_factory=dict)
    #: Every Malloc in program order (:class:`AllocationRecord`).
    allocations: list = field(default_factory=list)
    #: ``(addr, size)`` byte spans owned by registered sync objects.
    sync_ranges: list = field(default_factory=list)
    #: line_va -> set of ``(tid, addr, width, is_write)`` access
    #: intervals, recorded for *every* phase (the repair rewriter must
    #: remap prologue/epilogue accesses too, so atom boundaries have to
    #: respect them).
    intervals: dict = field(default_factory=dict)
    #: ``(addr, nbytes)`` spans streamed through BulkTouch (analytic
    #: accesses carry no values, so the repair planner must not
    #: relocate bytes they cover).
    bulk_ranges: set = field(default_factory=set)
    #: Heap-region bytes consumed before the first ThreadCreate — the
    #: deterministic prefix a repair plan may rely on.
    prespawn_used: int = 0
    ops: int = 0
    threads: int = 0
    truncated: bool = False


class TraceExtractor:
    """Abstractly interprets one Program's op streams."""

    def __init__(self, program, max_ops=DEFAULT_MAX_OPS):
        self.program = program
        self.max_ops = max_ops
        self.machine = _StubMachine()
        binary = program.binary
        # mirror Engine.__init__'s glibc-text registration so the traced
        # sync traffic carries the same sites a simulation would
        self._lock_site = binary.site("atomic", 4, "pthread_lock")
        self._barrier_site = binary.site("atomic", 4, "pthread_barrier")
        self._disasm = Disassembler(binary)
        # same allocator construction as the pthreads baseline, so
        # deterministic allocations land at the same addresses
        region = RegionBump(layout.HEAP_BASE, program.heap_bytes, "heap")
        self.allocator = LocklessAllocator(region, DEFAULT_COSTS)

        self.threads = {}
        self.sync_objects = []
        self._next_tid = 0
        self._mutex_ids = 0
        self._barrier_ids = 0
        self._condvar_ids = 0
        self._alive = 0
        self._memory = {}
        self._spawned = False
        self._result = ExtractResult(
            executed={"atomics": False, "asm": False,
                      "volatile": False, "fence": False})
        self._seen = set()            # finding dedup keys

        self._op_table = {
            O.Compute: self._op_nop,
            O.BulkTouch: self._op_bulk,
            O.Load: self._op_load,
            O.Store: self._op_store,
            O.AccessRun: self._op_run,
            O.RmwSeq: self._op_rmw_seq,
            O.StoreSeq: self._op_store_seq,
            O.AtomicLoad: self._op_atomic_load,
            O.AtomicStore: self._op_atomic_store,
            O.AtomicRMW: self._op_rmw,
            O.Fence: self._op_fence,
            O.RegionBegin: self._op_region_begin,
            O.RegionEnd: self._op_region_end,
            O.MutexLock: self._op_lock,
            O.MutexUnlock: self._op_unlock,
            O.BarrierWait: self._op_barrier,
            O.CondWait: self._op_cond_wait,
            O.CondSignal: self._op_cond_signal,
            O.Malloc: self._op_malloc,
            O.FreeOp: self._op_free,
            O.ThreadCreate: self._op_create,
            O.ThreadJoin: self._op_join,
        }

    # ------------------------------------------------------------------
    # stub-engine surface consumed by ThreadCtx
    # ------------------------------------------------------------------
    def sync_object_size(self, kind):
        return {"mutex": Mutex.SIZE, "barrier": Barrier.SIZE,
                "condvar": Condvar.SIZE}[kind]

    def register_mutex(self, thread, addr, name=""):
        self._mutex_ids += 1
        mutex = Mutex(mid=self._mutex_ids, addr=addr, name=name)
        self.sync_objects.append(mutex)
        return mutex

    def register_barrier(self, thread, addr, parties, name=""):
        self._barrier_ids += 1
        barrier = Barrier(bid=self._barrier_ids, addr=addr,
                          parties=parties, name=name)
        self.sync_objects.append(barrier)
        return barrier

    def register_condvar(self, thread, addr, name=""):
        self._condvar_ids += 1
        condvar = Condvar(cid=self._condvar_ids, addr=addr, name=name)
        self.sync_objects.append(condvar)
        return condvar

    def stack_base(self, tid):
        return layout.stack_base(tid)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self):
        """Trace the program to completion (or budget/deadlock)."""
        self._spawn(self.program.main, "main")
        result = self._result
        while True:
            progressed = False
            for tid in sorted(self.threads):
                thread = self.threads[tid]
                if thread.state != _READY:
                    continue
                self._step(thread)
                progressed = True
                if result.ops >= self.max_ops:
                    result.truncated = True
                    self._finding(Finding(
                        "trace-truncated", WARNING,
                        f"op budget ({self.max_ops}) exhausted; "
                        f"findings may be incomplete"))
                    result.threads = len(self.threads)
                    self._finish_result()
                    return result
            if self._alive == 0:
                break
            if not progressed:
                self._report_deadlock()
                break
        result.threads = len(self.threads)
        self._finish_result()
        return result

    def _finish_result(self):
        result = self._result
        result.sync_ranges = sorted(
            (obj.addr, obj.SIZE) for obj in self.sync_objects)
        if not self._spawned:
            result.prespawn_used = self.allocator.region.used

    def _spawn(self, body, name):
        tid = self._next_tid
        self._next_tid += 1
        thread = _TraceThread(tid, name)
        ctx = ThreadCtx(self, thread, self.program.binary)
        thread.gen = body(ctx)
        self.threads[tid] = thread
        self._alive += 1
        return thread

    def _step(self, thread):
        try:
            op = thread.gen.send(thread.pending)
        except StopIteration:
            self._finish(thread)
            return
        except (ReproError, AssertionError) as exc:
            self._finding(Finding(
                "trace-aborted", WARNING,
                f"t{thread.tid} ({thread.name}) aborted: {exc}"))
            self._finish(thread)
            return
        thread.pending = None
        self._result.ops += 1
        handler = self._op_table.get(op.__class__)
        if handler is None:
            self._finding(Finding("unknown-op", ERROR,
                                  f"unrecognized op {op!r}"))
            return
        value, blocked = handler(thread, op)
        if not blocked:
            thread.pending = value

    def _finish(self, thread):
        thread.state = _DONE
        self._alive -= 1
        for kind in thread.region_stack:
            self._finding(Finding(
                "region-nesting", ERROR,
                f"t{thread.tid} ({thread.name}) exited with an open "
                f"{kind} region"))
        thread.region_stack = []
        held = [m for m in self.sync_objects
                if isinstance(m, Mutex) and m.owner_tid == thread.tid]
        for mutex in held:
            self._finding(Finding(
                "lock-pairing", WARNING,
                f"t{thread.tid} exited holding "
                f"mutex {mutex.name or mutex.mid}"))
        for tid in thread.joiners:
            joiner = self.threads[tid]
            if joiner.state == _BLOCKED:
                joiner.state = _READY
                joiner.blocked_on = None
        thread.joiners = []

    def _report_deadlock(self):
        stuck = [t for t in self.threads.values() if t.state != _DONE]
        reported_barriers = set()
        for thread in stuck:
            blocked = thread.blocked_on
            if isinstance(blocked, Barrier):
                if blocked.bid in reported_barriers:
                    continue
                reported_barriers.add(blocked.bid)
                self._finding(Finding(
                    "barrier-mismatch", ERROR,
                    f"barrier {blocked.name or blocked.bid} never "
                    f"releases: {len(blocked.arrived)} of "
                    f"{blocked.parties} parties arrived"))
            elif isinstance(blocked, Mutex):
                self._finding(Finding(
                    "deadlock", ERROR,
                    f"t{thread.tid} stuck waiting for mutex "
                    f"{blocked.name or blocked.mid} held by "
                    f"t{blocked.owner_tid}"))
            elif isinstance(blocked, Condvar):
                self._finding(Finding(
                    "deadlock", ERROR,
                    f"t{thread.tid} stuck in cond_wait on "
                    f"{blocked.name or blocked.cid} with no signaller"))
            else:
                self._finding(Finding(
                    "deadlock", ERROR,
                    f"t{thread.tid} stuck on {blocked!r}"))

    # ------------------------------------------------------------------
    # access recording
    # ------------------------------------------------------------------
    def _record(self, tid, site, addr, width, is_write, atomic=False):
        self._check_access(site, addr, width, is_write, atomic)
        parallel = self._alive >= 2
        lines = self._result.lines
        line_sites = self._result.line_sites
        intervals = self._result.intervals
        end = addr + width
        while addr < end:
            line = addr & _LINE_MASK
            take = min(end, line + LINE_SIZE) - addr
            intervals.setdefault(line, set()).add(
                (tid, addr, take, is_write))
            if parallel:
                mask = ((1 << take) - 1) << (addr - line)
                record = lines.setdefault(line, {}).setdefault(
                    tid, [0, 0])
                record[1 if is_write else 0] |= mask
                sites = line_sites.setdefault(line, set())
                if len(sites) < 8:
                    sites.add(site.label or f"{site.pc:#x}")
            addr += take

    def _check_access(self, site, addr, width, is_write, atomic):
        pc = site.pc
        decoded = self._disasm.decode(pc)
        if decoded is None:
            self._finding(Finding(
                "unknown-pc", ERROR,
                f"access from pc {pc:#x} not in the binary image",
                pc=pc), key=("unknown-pc", pc))
            return
        if is_write and not decoded.is_store:
            self._finding(Finding(
                "access-kind-mismatch", ERROR,
                f"store through load-only site {decoded.label}",
                pc=pc, label=decoded.label),
                key=("kind", pc, True))
        elif not is_write and not decoded.is_load and not atomic:
            self._finding(Finding(
                "access-kind-mismatch", ERROR,
                f"load through store-only site {decoded.label}",
                pc=pc, label=decoded.label),
                key=("kind", pc, False))
        if width != decoded.width:
            self._finding(Finding(
                "access-width-mismatch", WARNING,
                f"site {decoded.label} decodes as {decoded.width}-byte "
                f"but accesses {width} bytes",
                pc=pc, label=decoded.label), key=("width", pc, width))
        if (addr & (LINE_SIZE - 1)) + width > LINE_SIZE:
            self._finding(Finding(
                "line-straddle", ERROR,
                f"{width}-byte access at {addr:#x} straddles a cache "
                f"line boundary",
                pc=pc, label=decoded.label,
                line_va=addr & _LINE_MASK), key=("straddle", pc))
        elif width in (2, 4, 8) and addr % width:
            self._finding(Finding(
                "access-misaligned", WARNING,
                f"{width}-byte access at misaligned address {addr:#x}",
                pc=pc, label=decoded.label), key=("align", pc))

    def _sync_touch(self, thread, obj):
        """Acquire/release traffic on the object's hot word (mirrors
        ``Engine._sync_traffic``)."""
        site = (self._barrier_site if isinstance(obj, Barrier)
                else self._lock_site)
        self._record(thread.tid, site, obj.hot_addr, obj.width, True,
                     atomic=True)

    def _finding(self, finding, key=None):
        if key is not None:
            if key in self._seen:
                return
            self._seen.add(key)
        self._result.findings.append(finding)

    # ------------------------------------------------------------------
    # op handlers: (value_to_send, blocked)
    # ------------------------------------------------------------------
    def _op_nop(self, thread, op):
        return None, False

    def _op_bulk(self, thread, op):
        self._result.bulk_ranges.add((op.addr, op.nbytes))
        return None, False

    def _op_load(self, thread, op):
        if op.volatile:
            self._result.executed["volatile"] = True
        self._record(thread.tid, op.site, op.addr, op.width, False)
        return self._memory.get(op.addr, 0), False

    def _op_store(self, thread, op):
        if op.volatile:
            self._result.executed["volatile"] = True
        self._record(thread.tid, op.site, op.addr, op.width, True)
        self._memory[op.addr] = op.value
        return None, False

    def _op_run(self, thread, op):
        addr = op.addr
        values = None if op.is_write else []
        for _ in range(op.count):
            self._record(thread.tid, op.site, addr, op.width,
                         op.is_write)
            if op.is_write:
                self._memory[addr] = op.value
            else:
                values.append(self._memory.get(addr, 0))
            addr += op.stride
        self._result.ops += max(0, op.count - 1)
        return values, False

    def _op_rmw_seq(self, thread, op):
        if op.volatile:
            self._result.executed["volatile"] = True
        deltas = op.deltas
        const = deltas if isinstance(deltas, int) else None
        mask = (1 << (8 * op.width)) - 1
        memory = self._memory
        for i, addr in enumerate(op.addrs):
            self._record(thread.tid, op.load_site, addr, op.width,
                         False)
            old = memory.get(addr, 0)
            delta = const if const is not None else deltas[i]
            memory[addr] = (old + delta) & mask
            self._record(thread.tid, op.store_site, addr, op.width,
                         True)
        self._result.ops += max(0, 2 * len(op.addrs) - 1)
        return None, False

    def _op_store_seq(self, thread, op):
        if op.volatile:
            self._result.executed["volatile"] = True
        for value in op.values:
            self._record(thread.tid, op.site, op.addr, op.width, True)
        self._memory[op.addr] = op.values[-1]
        self._result.ops += max(0, len(op.values) - 1)
        return None, False

    def _op_atomic_load(self, thread, op):
        self._result.executed["atomics"] = True
        self._record(thread.tid, op.site, op.addr, op.width, False,
                     atomic=True)
        return self._memory.get(op.addr, 0), False

    def _op_atomic_store(self, thread, op):
        self._result.executed["atomics"] = True
        self._record(thread.tid, op.site, op.addr, op.width, True,
                     atomic=True)
        self._memory[op.addr] = op.value
        return None, False

    def _op_rmw(self, thread, op):
        self._result.executed["atomics"] = True
        old = self._memory.get(op.addr, 0)
        if op.op == "add":
            new = old + op.operand
        elif op.op == "xchg":
            new = op.operand
        elif op.op == "cas":
            new = op.operand if old == op.expected else old
        else:
            self._finding(Finding("unknown-op", ERROR,
                                  f"unknown RMW op {op.op!r}"))
            new = old
        self._memory[op.addr] = new
        self._record(thread.tid, op.site, op.addr, op.width, True,
                     atomic=True)
        return old, False

    def _op_fence(self, thread, op):
        self._result.executed["fence"] = True
        return None, False

    def _op_region_begin(self, thread, op):
        if op.kind == O.REGION_ASM:
            self._result.executed["asm"] = True
        thread.region_stack.append(op.kind)
        return None, False

    def _op_region_end(self, thread, op):
        if not thread.region_stack or thread.region_stack[-1] != op.kind:
            opened = (thread.region_stack[-1] if thread.region_stack
                      else "no open region")
            self._finding(Finding(
                "region-nesting", ERROR,
                f"t{thread.tid}: RegionEnd({op.kind}) does not match "
                f"{opened}"))
            return None, False
        thread.region_stack.pop()
        return None, False

    def _op_malloc(self, thread, op):
        try:
            addr, _cost = self.allocator.malloc(thread.tid, op.size,
                                                op.align)
        except AllocationError as exc:
            self._finding(Finding("allocation", ERROR, str(exc)))
            return 0, False
        allocations = self._result.allocations
        allocations.append(AllocationRecord(
            ordinal=len(allocations), tid=thread.tid, base=addr,
            size=op.size, align=op.align, prespawn=not self._spawned))
        return addr, False

    def _op_free(self, thread, op):
        try:
            self.allocator.free(thread.tid, op.addr)
        except AllocationError as exc:
            self._finding(Finding("allocation", ERROR, str(exc)))
        return None, False

    def _op_lock(self, thread, op):
        mutex = op.mutex
        mutex.acquire_count += 1
        self._sync_touch(thread, mutex)
        if mutex.owner_tid is None:
            mutex.owner_tid = thread.tid
            return None, False
        mutex.contended_count += 1
        mutex.waiters.append(thread.tid)
        thread.state = _BLOCKED
        thread.blocked_on = mutex
        return None, True

    def _op_unlock(self, thread, op):
        mutex = op.mutex
        if mutex.owner_tid != thread.tid:
            owner = ("unlocked" if mutex.owner_tid is None
                     else f"owned by t{mutex.owner_tid}")
            self._finding(Finding(
                "lock-pairing", ERROR,
                f"t{thread.tid} unlocks mutex "
                f"{mutex.name or mutex.mid} ({owner})"))
            return None, False
        self._sync_touch(thread, mutex)
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.owner_tid = next_tid
            woken = self.threads[next_tid]
            woken.state = _READY
            woken.blocked_on = None
        else:
            mutex.owner_tid = None
        return None, False

    def _op_barrier(self, thread, op):
        barrier = op.barrier
        barrier.wait_count += 1
        self._sync_touch(thread, barrier)
        barrier.arrived.append(thread.tid)
        if len(barrier.arrived) < barrier.parties:
            thread.state = _BLOCKED
            thread.blocked_on = barrier
            return None, True
        for tid in barrier.arrived:
            if tid == thread.tid:
                continue
            waiter = self.threads[tid]
            waiter.state = _READY
            waiter.blocked_on = None
        barrier.generation += 1
        barrier.arrived = []
        return None, False

    def _op_cond_wait(self, thread, op):
        condvar, mutex = op.condvar, op.mutex
        if mutex.owner_tid != thread.tid:
            self._finding(Finding(
                "lock-pairing", ERROR,
                f"t{thread.tid} cond_waits without holding mutex "
                f"{mutex.name or mutex.mid}"))
            return None, False
        self._sync_touch(thread, condvar)
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.owner_tid = next_tid
            woken = self.threads[next_tid]
            woken.state = _READY
            woken.blocked_on = None
        else:
            mutex.owner_tid = None
        condvar.waiters.append((thread.tid, mutex))
        thread.state = _BLOCKED
        thread.blocked_on = condvar
        return None, True

    def _op_cond_signal(self, thread, op):
        condvar = op.condvar
        self._sync_touch(thread, condvar)
        count = len(condvar.waiters) if op.broadcast else 1
        for _ in range(min(count, len(condvar.waiters))):
            tid, mutex = condvar.waiters.pop(0)
            waiter = self.threads[tid]
            if mutex.owner_tid is None:
                mutex.owner_tid = tid
                waiter.state = _READY
                waiter.blocked_on = None
            else:
                waiter.blocked_on = mutex
                mutex.waiters.append(tid)
        return None, False

    def _op_create(self, thread, op):
        if not self._spawned:
            self._spawned = True
            self._result.prespawn_used = self.allocator.region.used
        child = self._spawn(op.body, op.name)
        return child.tid, False

    def _op_join(self, thread, op):
        target = self.threads.get(op.tid)
        if target is None:
            self._finding(Finding(
                "deadlock", ERROR,
                f"t{thread.tid} joins unknown thread {op.tid}"))
            return None, False
        if target.state == _DONE:
            return None, False
        target.joiners.append(thread.tid)
        thread.state = _BLOCKED
        thread.blocked_on = ("join", op.tid)
        return None, True
