"""Correctness tooling over the simulator: static lint + race sanitizer.

Two engines share one reporting vocabulary:

- the **static linter** (:mod:`repro.analysis.lint`) walks a workload's
  op streams by abstract interpretation — no simulated cycles — and
  predicts falsely shared cache lines (Predator-style), flags layout
  and region/lock structure bugs, and cross-checks the declared
  :class:`~repro.engine.program.WorkloadFeatures` against what the
  binary actually executes;
- the **race sanitizer** (:mod:`repro.analysis.race`) is a
  FastTrack-style vector-clock detector fed from the engine's observer
  callbacks during a real simulation, which also asserts that PTSB
  commits under the TMI runtime respect happens-before.

Both are strictly opt-in: with no observer attached and no linter run,
the engine executes bit-identically to before (the cycle-exactness
goldens enforce this).
"""

from repro.analysis.findings import (ERROR, Finding, INFO, WARNING,
                                     format_findings, max_severity)
from repro.analysis.lint import LintReport, lint_program, lint_workload
from repro.analysis.observer import EngineObserver, ObserverMux
from repro.analysis.race import RaceSanitizer

__all__ = [
    "ERROR", "Finding", "INFO", "WARNING", "format_findings",
    "max_severity", "LintReport", "lint_program", "lint_workload",
    "EngineObserver", "ObserverMux", "RaceSanitizer",
]
