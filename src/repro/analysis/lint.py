"""Static false-sharing linter.

``lint_program`` traces a Program with the abstract interpreter
(:mod:`repro.analysis.extract`), classifies every multi-thread cache
line (:mod:`repro.analysis.layout_check`), and cross-checks the
workload's declared :class:`~repro.engine.program.WorkloadFeatures`
against what the op streams actually execute.  No simulated cycle is
spent.

Severity scheme (the CI gate fails only on ``error``):

- structural bugs — bad region nesting, unlock-without-lock, barrier
  participation mismatches, deadlocks, line-straddling accesses — are
  errors: the engine would abort or livelock on them;
- a workload that declares ``has_false_sharing`` but exhibits none is
  an error (the declaration drives repair-suite expectations);
- predicted false sharing that is *not* declared is a warning — that is
  the linter doing its job on a workload that has not been triaged;
- declared-but-unexecuted feature classes, width mismatches, and
  misalignment are warnings; everything informational is info.
"""

from dataclasses import dataclass, field

from repro.analysis.extract import DEFAULT_MAX_OPS, TraceExtractor
from repro.analysis.findings import (ERROR, Finding, INFO, WARNING,
                                     count_by_severity, format_findings)
from repro.analysis.layout_check import (classify_lines,
                                         false_sharing_lines,
                                         true_sharing_lines)

#: Format tag on :meth:`LintReport.to_dict` documents.
LINT_FORMAT = "repro-lint-report/1"


@dataclass
class LintReport:
    """Everything one lint pass learned about a workload."""

    workload: str
    findings: list = field(default_factory=list)
    shared_lines: list = field(default_factory=list)   # all SharedLines
    predicted_false: list = field(default_factory=list)
    predicted_true: list = field(default_factory=list)
    ops: int = 0
    threads: int = 0
    truncated: bool = False

    @property
    def error_count(self):
        return count_by_severity(self.findings)[ERROR]

    @property
    def ok(self):
        """True when the CI gate would pass."""
        return self.error_count == 0

    def format(self):
        counts = count_by_severity(self.findings)
        head = (f"lint {self.workload}: {self.ops} ops, "
                f"{self.threads} threads, "
                f"{len(self.predicted_false)} false-sharing line(s), "
                f"{len(self.predicted_true)} true-sharing line(s), "
                f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s)")
        return format_findings(self.findings, title=head)

    def to_dict(self):
        """``repro-lint-report/1``: stable machine-readable form.

        Findings keep lint_program's order (structural first, then
        sharing, then feature cross-checks); every collection is a
        plain list so ``json.dumps(..., sort_keys=True)`` emits a
        byte-stable document for the same trace.
        """
        def _line(line):
            return {
                "line_va": line.line_va,
                "sharing": line.sharing,
                "tids": list(line.tids),
                "writer_tids": list(line.writer_tids),
                "sites": list(line.sites),
            }

        return {
            "format": LINT_FORMAT,
            "workload": self.workload,
            "ops": self.ops,
            "threads": self.threads,
            "truncated": self.truncated,
            "ok": self.ok,
            "counts": count_by_severity(self.findings),
            "findings": [f.to_dict() for f in self.findings],
            "predicted_false": [_line(s) for s in self.predicted_false],
            "predicted_true": [_line(s) for s in self.predicted_true],
        }


def lint_program(program, max_ops=DEFAULT_MAX_OPS):
    """Lint one built Program; returns a LintReport."""
    extractor = TraceExtractor(program, max_ops=max_ops)
    extracted = extractor.run()
    shared = classify_lines(extracted.lines, extracted.line_sites)
    predicted_false = false_sharing_lines(shared)
    predicted_true = true_sharing_lines(shared)

    findings = list(extracted.findings)
    features = program.features
    fs_severity = INFO if features.has_false_sharing else WARNING
    for line in predicted_false:
        findings.append(Finding(
            "false-sharing", fs_severity, str(line),
            line_va=line.line_va,
            detail={"tids": line.tids, "writers": line.writer_tids}))
    for line in predicted_true:
        findings.append(Finding(
            "true-sharing", INFO, str(line), line_va=line.line_va,
            detail={"tids": line.tids, "writers": line.writer_tids}))
    findings.extend(_feature_findings(features, extracted.executed,
                                      predicted_false, predicted_true))

    return LintReport(
        workload=program.name,
        findings=findings,
        shared_lines=shared,
        predicted_false=predicted_false,
        predicted_true=predicted_true,
        ops=extracted.ops,
        threads=extracted.threads,
        truncated=extracted.truncated,
    )


def lint_workload(name, scale=None, nthreads=None, variant=None,
                  max_ops=DEFAULT_MAX_OPS):
    """Lint a registry workload by name.

    ``variant=None`` uses the workload's canonical build (some, like
    cholesky, default to their fixed variant).
    """
    from repro.workloads import registry

    kwargs = {}
    if scale is not None:
        kwargs["scale"] = scale
    if nthreads is not None:
        kwargs["nthreads"] = nthreads
    workload = registry.get(name, **kwargs)
    if variant is None:
        program = workload.build()
    else:
        program = workload.build(variant)
    return lint_program(program, max_ops=max_ops)


def _feature_findings(features, executed, predicted_false,
                      predicted_true):
    """Cross-check WorkloadFeatures against the traced binary."""
    findings = []
    if features.has_false_sharing and not predicted_false:
        findings.append(Finding(
            "feature-mismatch", ERROR,
            "features declare has_false_sharing but the trace exhibits "
            "no falsely shared line"))
    if features.has_true_sharing and not predicted_true:
        findings.append(Finding(
            "feature-mismatch", INFO,
            "features declare has_true_sharing but the trace exhibits "
            "no truly shared line"))
    elif predicted_true and not features.has_true_sharing:
        findings.append(Finding(
            "feature-mismatch", INFO,
            f"{len(predicted_true)} truly shared line(s) found but "
            f"features.has_true_sharing is False"))

    for flag, key, what in (
            ("uses_atomics", "atomics", "atomic operations"),
            ("uses_asm", "asm", "inline-asm regions"),
            ("uses_volatile_flags", "volatile", "volatile accesses")):
        declared = getattr(features, flag)
        ran = executed[key]
        if ran and not declared:
            findings.append(Finding(
                "feature-mismatch", ERROR,
                f"binary executes {what} but features.{flag} is False"))
        elif declared and not ran:
            findings.append(Finding(
                "feature-unused", WARNING,
                f"features.{flag} declared but the trace executed "
                f"no {what}"))
    return findings
