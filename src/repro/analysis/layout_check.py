"""Predator-style cache-line classification from extracted byte masks.

The extractor records, per cache line and per thread, which bytes were
read and written during the parallel phase.  A line is *shared* when at
least two threads touch it and at least one writes it; it is *truly*
shared when some writer's bytes overlap another thread's bytes, and
*falsely* shared otherwise (same byte-overlap rule the runtime
classifier in :mod:`repro.core.classify` applies to HITM samples, but
over complete static knowledge instead of samples).
"""

from dataclasses import dataclass

from repro.core.classify import FALSE_SHARING, TRUE_SHARING


@dataclass(frozen=True)
class SharedLine:
    """One cache line touched by multiple threads with a writer."""

    line_va: int
    sharing: str                  # classify.FALSE_SHARING | TRUE_SHARING
    tids: tuple
    writer_tids: tuple
    sites: tuple                  # labels of sites touching the line

    def __str__(self):
        kind = "false" if self.sharing == FALSE_SHARING else "true"
        sites = ", ".join(self.sites) if self.sites else "?"
        return (f"line {self.line_va:#x}: {kind} sharing, "
                f"writers {list(self.writer_tids)}, "
                f"threads {list(self.tids)}, via {sites}")


def classify_lines(lines, line_sites=None):
    """Classify extracted masks into a sorted list of SharedLines.

    ``lines`` maps line_va -> {tid: [read_mask, write_mask]} as produced
    by :class:`~repro.analysis.extract.TraceExtractor`.
    """
    line_sites = line_sites or {}
    shared = []
    for line_va, by_tid in lines.items():
        tids = [t for t, (r, w) in by_tid.items() if r | w]
        writers = [t for t, (_r, w) in by_tid.items() if w]
        if len(tids) < 2 or not writers:
            continue
        overlap = False
        for writer in writers:
            write_mask = by_tid[writer][1]
            for tid, (r, w) in by_tid.items():
                if tid != writer and write_mask & (r | w):
                    overlap = True
                    break
            if overlap:
                break
        shared.append(SharedLine(
            line_va=line_va,
            sharing=TRUE_SHARING if overlap else FALSE_SHARING,
            tids=tuple(sorted(tids)),
            writer_tids=tuple(sorted(writers)),
            sites=tuple(sorted(line_sites.get(line_va, ()))),
        ))
    shared.sort(key=lambda s: s.line_va)
    return shared


def false_sharing_lines(shared_lines):
    return [s for s in shared_lines if s.sharing == FALSE_SHARING]


def true_sharing_lines(shared_lines):
    return [s for s in shared_lines if s.sharing == TRUE_SHARING]
