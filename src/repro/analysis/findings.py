"""Shared finding vocabulary for the analysis engines.

A finding is one diagnosed problem (or notable fact) with a stable
``rule`` identifier, a severity, and enough location detail — an
instruction site and/or a cache-line address — to act on it.  The CI
lint gate keys off severities: ``error`` findings fail the build.
"""

from dataclasses import dataclass, field

INFO = "info"
WARNING = "warning"
ERROR = "error"

#: Ordering used by :func:`max_severity` and the CI gate.
_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass
class Finding:
    """One diagnostic from the linter or sanitizer."""

    rule: str                      # stable kebab-case identifier
    severity: str                  # info | warning | error
    message: str
    #: Instruction site the finding anchors to, when one exists.
    pc: int = 0
    label: str = ""
    #: Cache line the finding concerns, when one exists.
    line_va: int = 0
    #: Free-form extra data (tids, byte masks, counts).
    detail: dict = field(default_factory=dict)

    def __str__(self):
        where = ""
        if self.label:
            where = f" @{self.label}"
        elif self.pc:
            where = f" @pc={self.pc:#x}"
        if self.line_va:
            where += f" line={self.line_va:#x}"
        return f"[{self.severity}] {self.rule}{where}: {self.message}"

    def to_dict(self):
        """JSON-stable dict form (detail values coerced to built-ins)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "pc": self.pc,
            "label": self.label,
            "line_va": self.line_va,
            "detail": {key: (list(value) if isinstance(value, (tuple,
                                                               set))
                             else value)
                       for key, value in sorted(self.detail.items())},
        }


def meets_severity(findings, threshold):
    """Whether any finding is at or above ``threshold`` severity."""
    rank = _RANK[threshold]
    return any(_RANK[f.severity] >= rank for f in findings)


def max_severity(findings):
    """Highest severity present, or None for an empty list."""
    best = None
    for finding in findings:
        if best is None or _RANK[finding.severity] > _RANK[best]:
            best = finding.severity
    return best


def count_by_severity(findings):
    counts = {INFO: 0, WARNING: 0, ERROR: 0}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def format_findings(findings, title=""):
    """Render findings one per line, errors first."""
    lines = []
    if title:
        lines.append(title)
    if not findings:
        lines.append("  (no findings)")
        return "\n".join(lines)
    ordered = sorted(findings, key=lambda f: -_RANK[f.severity])
    for finding in ordered:
        lines.append(f"  {finding}")
    return "\n".join(lines)
