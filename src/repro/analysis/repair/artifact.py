"""Versioned ``repro-repair-plan/1`` artifacts.

A plan artifact is the planner's full output -- findings, chosen
transformations, allocation-relative relocations, the static cost
model's scoring, and the predicted residual sharing -- as one
deterministic JSON document (sorted keys, stable field order), so runs
of the same workload at the same scale produce byte-identical files.
Artifacts live under ``results/repair/`` next to the fuzz and chaos
artifact trees.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.repair.planner import (LineRepair, Relocation,
                                           RepairPlan)

#: Format tag guarding load/save compatibility.
PLAN_FORMAT = "repro-repair-plan/1"


def plan_to_dict(plan: RepairPlan) -> dict:
    """Serializable dict form of a RepairPlan (stable key order)."""
    return {
        "format": PLAN_FORMAT,
        "workload": plan.workload,
        "variant": plan.variant,
        "nthreads": plan.nthreads,
        "arena_bytes": plan.arena_bytes,
        "cost": dict(plan.cost),
        "lines": [
            {
                "line_va": line.line_va,
                "transformation": line.transformation,
                "fixed": line.fixed,
                "reason": line.reason,
                "atoms_moved": line.atoms_moved,
                "bytes_moved": line.bytes_moved,
            }
            for line in plan.lines
        ],
        "relocations": [
            {
                "ordinal": r.ordinal,
                "offset": r.offset,
                "length": r.length,
                "owner": r.owner,
                "dest": r.dest,
                "line_va": r.line_va,
            }
            for r in plan.relocations
        ],
    }


def plan_from_dict(data: dict) -> RepairPlan:
    """Reconstruct a RepairPlan from its dict form."""
    tag = data.get("format")
    if tag != PLAN_FORMAT:
        raise ValueError(
            f"not a {PLAN_FORMAT} artifact (format={tag!r})")
    return RepairPlan(
        workload=data["workload"],
        variant=data["variant"],
        nthreads=data["nthreads"],
        arena_bytes=data["arena_bytes"],
        cost=dict(data["cost"]),
        lines=[LineRepair(**line) for line in data["lines"]],
        relocations=[Relocation(**r) for r in data["relocations"]],
    )


def save_plan(plan: RepairPlan, path: object = None) -> Path:
    """Write the plan under ``results/repair/``; returns the path."""
    if path is None:
        from repro.eval.report import results_dir
        directory = Path(results_dir()) / "repair"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{plan.workload}-plan.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_plan(path: object) -> RepairPlan:
    """Load a ``repro-repair-plan/1`` artifact."""
    return plan_from_dict(json.loads(Path(path).read_text()))


def fill_metrics(plan: RepairPlan, registry: object,
                 rewriter: object = None) -> None:
    """Publish planner (and optional rewrite) stats to a
    :class:`~repro.obs.metrics.MetricsRegistry`."""
    registry.ingest("repair.plan", {
        "false_lines": plan.cost.get("total_false_lines", 0),
        "fixed_lines": plan.cost.get("fixed_lines", 0),
        "residual_lines": plan.cost.get("residual_lines", 0),
        "arena_bytes": plan.arena_bytes,
        "moved_bytes": plan.moved_bytes,
        "relocations": len(plan.relocations),
    }, workload=plan.workload)
    if rewriter is not None:
        stats = rewriter.stats
        registry.ingest("repair.rewrite", {
            "remapped_ops": stats.remapped_ops,
            "split_runs": stats.split_runs,
            "partial": stats.partial,
            "spans_bound": stats.spans_bound,
        }, workload=plan.workload)
