"""Mechanical application of a repair plan to a Program.

:class:`LayoutRewriter` wraps every thread body of a Program in a
generator that forwards ops to the engine while remapping the address
of any access that falls inside a relocated span.  The wrapper:

- allocates the repair arena as its very first op (through the active
  runtime's allocator, so footprint accounting and TMI's shared-region
  placement come for free), aligning the returned base up to a line
  boundary itself -- no allocator-specific alignment contract needed;
- observes every ``Malloc`` the program performs, counts ordinals, and
  binds the plan's allocation-relative spans to the addresses actually
  returned (pthreads and TMI place the same ordinal differently);
- rewrites ``ThreadCreate`` bodies recursively so worker threads remap
  through the same span table;
- splits an ``AccessRun`` whose stride walks across differently-mapped
  (or unmapped) bytes into sub-runs of constant remap delta,
  re-concatenating load results, which is cycle-neutral -- runs are
  priced per access, not per generator round-trip.

Accesses that only *partially* overlap a span are forwarded unmapped
and counted (``stats.partial``); the planner's atom construction
guarantees a well-formed plan produces none.

:class:`RemapView` gives ``final_state``/``validate`` oracles the same
translation for their debug reads: a rewritten program must pass its
final-state oracle bit-identically to the original, which is the
semantic-preservation gate of the repair-compare experiment.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Generator

from repro.engine.program import Program
from repro.isa import ops as O
from repro.sim.costs import LINE_SIZE

if TYPE_CHECKING:                            # pragma: no cover
    from repro.analysis.repair.planner import RepairPlan


@dataclass
class RewriteStats:
    """Counters a rewrite accumulates while the program runs."""

    remapped_ops: int = 0
    split_runs: int = 0
    partial: int = 0
    spans_bound: int = 0
    arena_base: int = 0


class LayoutRewriter:
    """Applies one RepairPlan to one (single-use) Program."""

    def __init__(self, program: Program, plan: "RepairPlan") -> None:
        self.program = program
        self.plan = plan
        self.stats = RewriteStats()
        self._by_ordinal = {}
        for relocation in plan.relocations:
            self._by_ordinal.setdefault(relocation.ordinal, []).append(
                relocation)
        self._ordinal = 0
        self._arena_base = None
        #: ordinal -> base address actually returned at run time (the
        #: repair scorer translates line addresses between allocator
        #: geometries through this).
        self.observed = {}
        # bound spans, sorted by source base for bisect lookup
        self._bases = []
        self._spans = []           # (src_base, src_end, dest_base)
        self._lo = 0               # envelope for the fast no-remap path
        self._hi = 0

    # ------------------------------------------------------------------
    def rewrite(self) -> Program:
        """Return a new Program whose bodies remap through the plan."""
        program = self.program
        rewritten = Program(
            name=program.name, binary=program.binary,
            main=self._wrap(program.main, toplevel=True),
            nthreads=program.nthreads, features=program.features,
            heap_bytes=program.heap_bytes, env=program.env,
            validate=self._wrap_validate(program.validate))
        rewritten.memory_view = self.view
        return rewritten

    def view(self, engine: object) -> "RemapView":
        """A read view over ``engine`` that follows relocations."""
        return RemapView(engine, self)

    # ------------------------------------------------------------------
    # span binding
    # ------------------------------------------------------------------
    def _bind_arena(self, addr: int) -> None:
        self._arena_base = (addr + LINE_SIZE - 1) & ~(LINE_SIZE - 1)
        self.stats.arena_base = self._arena_base

    def _bind_malloc(self, addr: int) -> None:
        ordinal = self._ordinal
        self._ordinal += 1
        self.observed[ordinal] = addr
        relocations = self._by_ordinal.get(ordinal)
        if not relocations or self._arena_base is None:
            return
        for relocation in relocations:
            src = addr + relocation.offset
            entry = (src, src + relocation.length,
                     self._arena_base + relocation.dest)
            index = bisect_right(self._bases, src)
            self._bases.insert(index, src)
            self._spans.insert(index, entry)
            self.stats.spans_bound += 1
        self._lo = self._spans[0][0]
        self._hi = max(end for _s, end, _d in self._spans)

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def _map(self, addr: int, width: int) -> int:
        """Remapped address, or ``addr`` when outside every span.

        A partial overlap (the planner guarantees none) is left
        unmapped and counted.
        """
        if addr + width <= self._lo or addr >= self._hi:
            return addr
        index = bisect_right(self._bases, addr) - 1
        if index >= 0:
            src, end, dest = self._spans[index]
            if addr + width <= end:
                return dest + (addr - src)
            if addr < end:
                self.stats.partial += 1
                return addr
        if index + 1 < len(self._spans):
            nxt_src = self._spans[index + 1][0]
            if addr + width > nxt_src:
                self.stats.partial += 1
        return addr

    # ------------------------------------------------------------------
    # generator wrapping
    # ------------------------------------------------------------------
    def _wrap(self, body: object, toplevel: bool = False) -> object:
        rewriter = self

        def wrapped(ctx: object) -> Generator:
            if toplevel and rewriter.plan.arena_bytes:
                addr = yield O.Malloc(
                    rewriter.plan.arena_bytes + LINE_SIZE, 0)
                rewriter._bind_arena(addr)
            gen = body(ctx)
            value = None
            while True:
                try:
                    op = gen.send(value)
                except StopIteration as stop:
                    return stop.value
                value = yield from rewriter._dispatch(op)

        return wrapped

    def _wrap_validate(self, validate: object) -> object:
        if validate is None:
            return None
        rewriter = self

        def validated(env: object, engine: object) -> object:
            return validate(env, rewriter.view(engine))

        return validated

    def _dispatch(self, op: object) -> Generator:
        cls = op.__class__
        if cls is O.Malloc:
            addr = yield op
            self._bind_malloc(addr)
            return addr
        if cls is O.ThreadCreate:
            tid = yield replace(op, body=self._wrap(op.body))
            return tid
        if cls in (O.Load, O.Store, O.AtomicLoad, O.AtomicStore,
                   O.AtomicRMW, O.StoreSeq):
            mapped = self._map(op.addr, op.width)
            if mapped != op.addr:
                self.stats.remapped_ops += 1
                op = replace(op, addr=mapped)
            return (yield op)
        if cls is O.AccessRun:
            return (yield from self._run(op))
        if cls is O.RmwSeq:
            return (yield self._rmw_seq(op))
        return (yield op)

    def _run(self, op: O.AccessRun) -> Generator:
        first, last = op.addr, op.addr + (op.count - 1) * op.stride
        lo, hi = min(first, last), max(first, last) + op.width
        if hi <= self._lo or lo >= self._hi:
            return (yield op)
        segments = []              # (start_index, count, delta)
        seg_start, seg_delta = 0, None
        for index in range(op.count):
            addr = op.addr + index * op.stride
            delta = self._map(addr, op.width) - addr
            if seg_delta is None:
                seg_start, seg_delta = index, delta
            elif delta != seg_delta:
                segments.append((seg_start, index - seg_start, seg_delta))
                seg_start, seg_delta = index, delta
        segments.append((seg_start, op.count - seg_start, seg_delta))
        if len(segments) == 1 and segments[0][2] == 0:
            return (yield op)
        if len(segments) > 1:
            self.stats.split_runs += 1
        values = None if op.is_write else []
        for start, count, delta in segments:
            if delta:
                self.stats.remapped_ops += 1
            sub = replace(op, addr=op.addr + start * op.stride + delta,
                          count=count)
            result = yield sub
            if not op.is_write:
                values.extend(result)
        return values

    def _rmw_seq(self, op: O.RmwSeq) -> O.RmwSeq:
        addrs = op.addrs
        lo = min(addrs)
        hi = max(addrs) + op.width
        if hi <= self._lo or lo >= self._hi:
            return op
        mapped = tuple(self._map(addr, op.width) for addr in addrs)
        if mapped == addrs:
            return op
        self.stats.remapped_ops += 1
        return replace(op, addrs=mapped)


class RemapView:
    """Engine proxy whose debug reads follow the rewrite's spans.

    ``final_state``/``validate`` oracles read result memory through
    ``engine.read_memory``; under a rewritten program those bytes live
    at their relocated addresses.  Reads that straddle a span boundary
    are assembled byte-wise (little-endian, matching physical memory).
    """

    def __init__(self, engine: object, rewriter: LayoutRewriter) -> None:
        self._engine = engine
        self._rewriter = rewriter

    def read_memory(self, va: int, width: int,
                    aspace: object = None) -> int:
        rewriter = self._rewriter
        mapped = rewriter._map(va, width)
        if mapped != va:
            return self._engine.read_memory(mapped, width, aspace)
        if width > 1 and not (va + width <= rewriter._lo
                              or va >= rewriter._hi):
            value = 0
            for index in range(width):
                byte = self._engine.read_memory(
                    rewriter._map(va + index, 1), 1, aspace)
                value |= byte << (8 * index)
            return value
        return self._engine.read_memory(va, width, aspace)

    def __getattr__(self, name: str) -> object:
        return getattr(self._engine, name)


def rewrite_program(program: Program, plan: "RepairPlan") -> tuple:
    """Apply ``plan`` to ``program``; returns ``(rewritten, rewriter)``.

    The rewritten Program is single-use, like every Program: its
    generators and the rewriter's span bindings are consumed by one
    run.
    """
    rewriter = LayoutRewriter(program, plan)
    return rewriter.rewrite(), rewriter
