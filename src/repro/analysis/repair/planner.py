"""Static repair planning: lint findings to layout transformations.

The planner closes the detect->repair loop without a single simulated
cycle: it consumes the per-line byte masks and access intervals the
:class:`~repro.analysis.extract.TraceExtractor` records, and for every
falsely-shared line synthesizes a concrete layout transformation --
padding between falsely-shared objects, alignment of straddling objects
to line boundaries, reordering that co-locates same-thread bytes, or
per-thread splitting of array-of-counters patterns.

All four transformations share one mechanism: *relocation*.  The line's
bytes are partitioned into **atoms** -- maximal byte ranges such that
every recorded access (any phase) falls wholly inside one atom -- and
each written atom with a single parallel-phase toucher moves into that
thread's region of a line-aligned repair arena.  Per-thread regions are
separated by construction, so moved atoms can never falsely share a
line again; read-only atoms stay put (a line with no writer left has no
coherence traffic to misclassify).  The per-line transformation label
records the layout *intent* the relocation realizes.

Plans are allocation-ordinal-relative, not address-relative: a span is
``(malloc ordinal, byte offset, length)``.  The pthreads and TMI
allocators place the same allocation at different addresses (16-offset
vs line-aligned large blocks), so the rewriter binds spans to the
addresses it actually observes at run time -- the same plan applies
unchanged under ``static-repaired`` and ``static-tmi``.

A line the plan cannot repair is recorded as predicted *residual* with
a reason: sync-object hot words (spinlockpool's embedded lock pool --
the paper's boost case needs a source fix), bytes outside the
deterministic pre-spawn heap prefix, bulk-touched spans, misaligned
accesses, or atoms fused across threads by a serial-phase access.
Residual predictions are scored against simulated HITM ground truth by
the ``repair-compare`` experiment.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.extract import (DEFAULT_MAX_OPS, ExtractResult,
                                    TraceExtractor)
from repro.analysis.layout_check import classify_lines, false_sharing_lines
from repro.analysis.repair.cost import score_plan
from repro.engine.program import Program
from repro.sim.costs import LINE_SIZE

_LINE_MASK = ~(LINE_SIZE - 1)

#: Transformation labels a plan may assign to a repaired line.
PAD = "pad"
ALIGN = "align"
REORDER = "reorder"
SPLIT = "split"

#: Placeholder transformation for residual (unrepaired) lines.
NONE = "none"


@dataclass(frozen=True)
class Atom:
    """A maximal byte range no recorded access partially overlaps."""

    line_va: int
    start: int                 # absolute VA in extraction geometry
    length: int
    readers: tuple             # parallel-phase reader tids
    writers: tuple             # parallel-phase writer tids

    @property
    def touchers(self) -> tuple:
        """Distinct parallel-phase tids touching the atom."""
        return tuple(sorted(set(self.readers) | set(self.writers)))


@dataclass(frozen=True)
class Relocation:
    """One atom's move, expressed allocation-relative.

    ``ordinal`` names the pre-spawn ``Malloc`` the atom lives in;
    ``offset``/``length`` the byte span within that allocation; ``dest``
    the arena-relative destination offset.  ``dest`` is chosen congruent
    to the source address modulo the line size, so every aligned access
    keeps its alignment and no relocation introduces a line straddle.
    """

    ordinal: int
    offset: int
    length: int
    owner: int
    dest: int
    line_va: int


@dataclass(frozen=True)
class LineRepair:
    """The plan's verdict for one falsely-shared line."""

    line_va: int
    transformation: str        # pad | align | reorder | split | none
    fixed: bool                # predicted: no parallel writer remains
    reason: str                # why residual (empty when fixed)
    atoms_moved: int
    bytes_moved: int


@dataclass
class RepairPlan:
    """A full static repair plan for one Program."""

    workload: str
    variant: str
    nthreads: int
    relocations: list = field(default_factory=list)
    lines: list = field(default_factory=list)
    arena_bytes: int = 0
    cost: dict = field(default_factory=dict)

    @property
    def predicted_fixed(self) -> list:
        """Line VAs the plan claims static repair eliminates."""
        return [line.line_va for line in self.lines if line.fixed]

    @property
    def predicted_residual(self) -> list:
        """Line VAs the plan predicts will keep falsely sharing."""
        return [line.line_va for line in self.lines if not line.fixed]

    @property
    def moved_bytes(self) -> int:
        """Total bytes the plan relocates into the arena."""
        return sum(r.length for r in self.relocations)


class _ArenaPacker:
    """Greedy per-owner line packing that preserves line offsets.

    Each atom lands at its source offset within some destination line of
    its owner's region (first line with those bytes free), so the
    destination address is congruent to the source modulo ``LINE_SIZE``.
    """

    def __init__(self) -> None:
        self._lines: dict = {}     # owner -> [occupancy bitmask]

    def place(self, owner: int, line_offset: int, length: int) -> int:
        """Reserve ``length`` bytes at ``line_offset``; returns the
        owner-relative destination offset."""
        mask = ((1 << length) - 1) << line_offset
        lines = self._lines.setdefault(owner, [])
        for index, used in enumerate(lines):
            if not used & mask:
                lines[index] = used | mask
                return index * LINE_SIZE + line_offset
        lines.append(mask)
        return (len(lines) - 1) * LINE_SIZE + line_offset

    def region_sizes(self) -> dict:
        """owner -> line-aligned region size, owners sorted."""
        return {owner: len(lines) * LINE_SIZE
                for owner, lines in sorted(self._lines.items())}


def plan_program(program: Program,
                 extracted: Optional[ExtractResult] = None,
                 max_ops: int = DEFAULT_MAX_OPS,
                 variant: str = "default") -> RepairPlan:
    """Plan static repairs for one built Program.

    ``extracted`` reuses an existing extraction; when omitted the
    program is traced here (consuming its generators -- build a fresh
    Program for the actual run).
    """
    if extracted is None:
        extracted = TraceExtractor(program, max_ops=max_ops).run()
    shared = classify_lines(extracted.lines, extracted.line_sites)
    false_lines = false_sharing_lines(shared)

    prespawn = sorted(
        (a.base, a.base + a.size, a.ordinal)
        for a in extracted.allocations if a.prespawn)
    alloc_bases = [a[0] for a in prespawn]
    sync_spans = [(addr, addr + size)
                  for addr, size in extracted.sync_ranges]
    bulk_spans = _merge_spans(getattr(extracted, "bulk_ranges", ()))

    packer = _ArenaPacker()
    pending = []                  # (line, moves) before dest finalize
    line_repairs = []
    for shared_line in false_lines:
        line_va = shared_line.line_va
        atoms = _build_atoms(line_va, extracted)
        reason = _line_obstacle(line_va, atoms, prespawn, alloc_bases,
                                sync_spans, bulk_spans, extracted)
        if reason:
            line_repairs.append(LineRepair(
                line_va=line_va, transformation=NONE, fixed=False,
                reason=reason, atoms_moved=0, bytes_moved=0))
            continue
        moves = [a for a in atoms if a.writers]
        pending.append((line_va, moves))

    # place atoms owner-by-owner so same-owner atoms from different
    # source lines co-locate (the reordering transformation)
    placements = {}               # atom -> owner-relative offset
    for line_va, moves in pending:
        for atom in moves:
            owner = atom.touchers[0]
            placements[atom] = packer.place(
                owner, atom.start % LINE_SIZE, atom.length)

    region_sizes = packer.region_sizes()
    region_offsets = {}
    offset = 0
    for owner, size in region_sizes.items():
        region_offsets[owner] = offset
        offset += size
    arena_bytes = offset

    relocations = []
    moved_by_line = {line_va: moves for line_va, moves in pending}
    for line_va, moves in pending:
        for atom in moves:
            owner = atom.touchers[0]
            ordinal, alloc_base = _owning_alloc(
                atom.start, prespawn, alloc_bases)
            relocations.append(Relocation(
                ordinal=ordinal,
                offset=atom.start - alloc_base,
                length=atom.length,
                owner=owner,
                dest=region_offsets[owner] + placements[atom],
                line_va=line_va))
        line_repairs.append(LineRepair(
            line_va=line_va,
            transformation=_classify_transformation(
                line_va, moves, moved_by_line),
            fixed=True, reason="",
            atoms_moved=len(moves),
            bytes_moved=sum(a.length for a in moves)))

    line_repairs.sort(key=lambda line: line.line_va)
    relocations.sort(key=lambda r: (r.ordinal, r.offset))
    plan = RepairPlan(
        workload=program.name, variant=variant,
        nthreads=program.nthreads,
        relocations=relocations, lines=line_repairs,
        arena_bytes=arena_bytes)
    plan.cost = score_plan(plan, program)
    return plan


def plan_workload(name: str, scale: Optional[float] = None,
                  nthreads: Optional[int] = None,
                  variant: Optional[str] = None,
                  max_ops: int = DEFAULT_MAX_OPS) -> RepairPlan:
    """Plan repairs for a registry workload by name."""
    from repro.workloads import registry

    kwargs = {}
    if scale is not None:
        kwargs["scale"] = scale
    if nthreads is not None:
        kwargs["nthreads"] = nthreads
    workload = registry.get(name, **kwargs)
    built_variant = variant if variant is not None else "default"
    program = workload.build(built_variant)
    return plan_program(program, max_ops=max_ops, variant=built_variant)


# ----------------------------------------------------------------------
# atom construction
# ----------------------------------------------------------------------
def _build_atoms(line_va: int, extracted: ExtractResult) -> list:
    """Partition a line's touched bytes into atoms.

    Overlapping access intervals (from *every* phase, so prologue
    initialization fuses what it jointly touches) merge into one atom;
    merely adjacent intervals stay separate -- two 4-byte counters
    packed back to back are independently relocatable.
    """
    intervals = sorted(
        (addr, addr + width)
        for _tid, addr, width, _w in extracted.intervals.get(line_va, ()))
    ranges = []
    for start, end in intervals:
        if ranges and start < ranges[-1][1]:
            ranges[-1][1] = max(ranges[-1][1], end)
        else:
            ranges.append([start, end])

    by_tid = extracted.lines.get(line_va, {})
    atoms = []
    for start, end in ranges:
        span_mask = ((1 << (end - start)) - 1) << (start - line_va)
        readers, writers = [], []
        for tid, (read_mask, write_mask) in by_tid.items():
            if read_mask & span_mask:
                readers.append(tid)
            if write_mask & span_mask:
                writers.append(tid)
        atoms.append(Atom(
            line_va=line_va, start=start, length=end - start,
            readers=tuple(sorted(readers)),
            writers=tuple(sorted(writers))))
    return atoms


def _line_obstacle(line_va: int, atoms: list, prespawn: list,
                   alloc_bases: list, sync_spans: list,
                   bulk_spans: list,
                   extracted: ExtractResult) -> str:
    """Why this line cannot be statically repaired ('' if it can).

    Repair is all-or-nothing per line: moving only some written atoms
    would leave the line shared and make residual prediction mushy.
    """
    line_end = line_va + LINE_SIZE
    for span_start, span_end in sync_spans:
        if span_start < line_end and line_va < span_end:
            return ("sync object on the line: lock/barrier hot words "
                    "cannot be relocated (source fix required)")
    for span_start, span_end in bulk_spans:
        if span_start < line_end and line_va < span_end:
            return "bulk-touched span overlaps the line"
    for _tid, addr, width, _w in extracted.intervals.get(line_va, ()):
        if width in (2, 4, 8) and addr % width:
            return f"misaligned {width}-byte access at {addr:#x}"
    for atom in atoms:
        if not atom.writers:
            continue
        if len(atom.touchers) > 1:
            return ("written atom touched by threads "
                    f"{list(atom.touchers)}: accesses fused by a "
                    "cross-thread span")
        ordinal, _base = _owning_alloc(atom.start, prespawn, alloc_bases)
        if ordinal is None:
            return (f"bytes at {atom.start:#x} outside the "
                    "deterministic pre-spawn heap prefix")
        end_ordinal, _ = _owning_alloc(
            atom.start + atom.length - 1, prespawn, alloc_bases)
        if end_ordinal != ordinal:
            return "atom straddles an allocation boundary"
    return ""


def _owning_alloc(addr: int, prespawn: list,
                  alloc_bases: list) -> tuple:
    """(ordinal, base) of the pre-spawn allocation containing addr."""
    index = bisect_right(alloc_bases, addr) - 1
    if index < 0:
        return None, None
    base, end, ordinal = prespawn[index]
    if addr >= end:
        return None, None
    return ordinal, base


def _classify_transformation(line_va: int, moves: list,
                             moved_by_line: dict) -> str:
    """Label the layout intent this line's relocations realize."""
    owners = {atom.touchers[0] for atom in moves}
    lengths = {atom.length for atom in moves}
    if len(owners) >= 3 and len(lengths) == 1:
        return SPLIT
    for neighbor in (line_va - LINE_SIZE, line_va + LINE_SIZE):
        neighbor_moves = moved_by_line.get(neighbor, ())
        if owners & {atom.touchers[0] for atom in neighbor_moves}:
            return ALIGN
    if len(owners) == 2:
        return PAD
    return REORDER


def _merge_spans(ranges: Iterable) -> list:
    """Merge (addr, nbytes) ranges into sorted disjoint (start, end)."""
    spans = sorted((addr, addr + nbytes) for addr, nbytes in ranges)
    merged = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged
