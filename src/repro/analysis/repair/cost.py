"""Static cost model scoring a repair plan.

Static repair trades memory for isolation: every relocated atom
consumes arena bytes (its own size plus the padding the line-preserving
packing wastes), and the benefit is the falsely-shared lines whose
coherence traffic the relocation eliminates.  The model is purely
static -- it never simulates -- so the score is a *prediction* the
``repair-compare`` experiment validates against measured HITM counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.costs import LINE_SIZE

if TYPE_CHECKING:                            # pragma: no cover
    from repro.analysis.repair.planner import RepairPlan
    from repro.engine.program import Program


def score_plan(plan: "RepairPlan", program: "Program") -> dict:
    """Score a :class:`~repro.analysis.repair.planner.RepairPlan`.

    Returns a dict with the raw components and a combined ``score`` in
    [0, 1]: the predicted fraction of flagged lines eliminated, with a
    penalty for arena overhead relative to the program's declared
    footprint.  Deterministic and cheap enough to compare alternative
    plans.
    """
    total_lines = len(plan.lines)
    fixed_lines = sum(1 for line in plan.lines if line.fixed)
    moved_bytes = plan.moved_bytes
    waste_bytes = plan.arena_bytes - moved_bytes
    footprint = max(1, program.features.footprint_bytes)
    overhead_ratio = plan.arena_bytes / footprint
    eliminated_fraction = (fixed_lines / total_lines if total_lines
                           else 1.0)
    score = max(0.0, eliminated_fraction - min(0.5, overhead_ratio))
    return {
        "total_false_lines": total_lines,
        "fixed_lines": fixed_lines,
        "residual_lines": total_lines - fixed_lines,
        "eliminated_fraction": round(eliminated_fraction, 4),
        "arena_bytes": plan.arena_bytes,
        "arena_lines": plan.arena_bytes // LINE_SIZE,
        "moved_bytes": moved_bytes,
        "waste_bytes": waste_bytes,
        "overhead_ratio": round(overhead_ratio, 6),
        "score": round(score, 4),
    }
