"""Static false-sharing repair: planner, rewriter, cost, artifacts.

The repair subsystem turns the linter's findings into executable layout
transformations: :func:`plan_program` synthesizes a
:class:`RepairPlan` from one abstract extraction (no simulation), and
:func:`rewrite_program` applies it mechanically to a fresh Program so
the ``static-repaired`` / ``static-tmi`` eval systems can run it.
"""

from repro.analysis.repair.artifact import (PLAN_FORMAT, fill_metrics,
                                            load_plan, plan_from_dict,
                                            plan_to_dict, save_plan)
from repro.analysis.repair.cost import score_plan
from repro.analysis.repair.planner import (ALIGN, Atom, LineRepair,
                                           NONE, PAD, REORDER,
                                           Relocation, RepairPlan,
                                           SPLIT, plan_program,
                                           plan_workload)
from repro.analysis.repair.rewriter import (LayoutRewriter, RemapView,
                                            RewriteStats,
                                            rewrite_program)

__all__ = [
    "ALIGN", "Atom", "LayoutRewriter", "LineRepair", "NONE", "PAD",
    "PLAN_FORMAT", "REORDER", "RemapView", "Relocation", "RepairPlan",
    "RewriteStats", "SPLIT", "fill_metrics", "load_plan",
    "plan_from_dict", "plan_program", "plan_to_dict", "plan_workload",
    "rewrite_program", "save_plan", "score_plan",
]
