"""Simulated-HITM ground truth for scoring the static linter.

Runs a workload under the pthreads baseline with a HITM listener that
records per-line, per-thread byte masks — exactly the information the
paper's detector samples, but exhaustively rather than statistically —
and classifies the touched lines with the same byte-overlap rule the
linter uses (:mod:`repro.analysis.layout_check`).  The listener charges
zero extra cycles, so the run's results are the baseline's.

Like the extractor, masks count only while at least two threads are
alive; a HITM can fire after the last worker exits (main reading
worker-dirtied lines during reduction), and those are not concurrency.
"""

from dataclasses import dataclass, field

from repro.analysis.layout_check import (classify_lines,
                                         false_sharing_lines,
                                         true_sharing_lines)
from repro.analysis.observer import EngineObserver
from repro.sim.costs import LINE_SIZE

_LINE_MASK = ~(LINE_SIZE - 1)


class HitmGroundTruth(EngineObserver):
    """Observer + HITM listener collecting sharing ground truth."""

    def __init__(self):
        self.lines = {}        # line_va -> {tid: [read_mask, write_mask]}
        self.line_counts = {}  # line_va -> parallel-phase HITM events
        self.hitm_count = 0
        self._alive = 0

    def on_attach(self, engine):
        engine.machine.add_hitm_listener(self._on_hitm)

    def on_thread_create(self, parent_tid, child_tid):
        self._alive += 1

    def on_thread_exit(self, tid):
        self._alive -= 1

    def _on_hitm(self, event):
        self.hitm_count += 1
        if self._alive < 2:
            return None
        addr = event.va
        end = addr + event.width
        lines = self.lines
        counts = self.line_counts
        while addr < end:
            line = addr & _LINE_MASK
            take = min(end, line + LINE_SIZE) - addr
            mask = ((1 << take) - 1) << (addr - line)
            record = lines.setdefault(line, {}).setdefault(
                event.tid, [0, 0])
            record[1 if event.is_store else 0] |= mask
            counts[line] = counts.get(line, 0) + 1
            addr += take
        return None               # zero added cost

    def shared_lines(self):
        return classify_lines(self.lines)


@dataclass
class GroundTruth:
    """Classified HITM ground truth from one baseline run."""

    workload: str
    shared_lines: list = field(default_factory=list)
    hitm_count: int = 0
    result: object = None
    #: line_va -> parallel-phase HITM event count.
    line_counts: dict = field(default_factory=dict)
    #: The (finished) engine, for post-run ``read_memory`` oracles.
    engine: object = None

    @property
    def false_lines(self):
        return false_sharing_lines(self.shared_lines)

    @property
    def true_lines(self):
        return true_sharing_lines(self.shared_lines)


def collect_ground_truth(workload, variant=None, program=None):
    """Simulate under pthreads and classify HITM lines.

    ``program`` substitutes a pre-built Program (e.g. one rewritten by
    the repair planner) for the workload's own build; ``workload`` may
    then be None.
    """
    from repro.baselines.pthreads import PthreadsRuntime
    from repro.engine.scheduler import Engine

    if program is None:
        program = (workload.build() if variant is None
                   else workload.build(variant))
    collector = HitmGroundTruth()
    engine = Engine(program, PthreadsRuntime())
    engine.attach_observer(collector)
    result = engine.run()
    return GroundTruth(
        workload=program.name,
        shared_lines=collector.shared_lines(),
        hitm_count=collector.hitm_count,
        result=result,
        line_counts=dict(collector.line_counts),
        engine=engine,
    )


def precision_recall(predicted_lines, truth_lines):
    """Precision/recall of predicted line addresses vs ground truth.

    Both arguments are SharedLine lists (typically the false-sharing
    subset on each side).  Returns (precision, recall, tp, fp, fn);
    precision/recall are 1.0 when their denominator is empty.
    """
    predicted = {line.line_va for line in predicted_lines}
    truth = {line.line_va for line in truth_lines}
    tp = len(predicted & truth)
    fp = len(predicted - truth)
    fn = len(truth - predicted)
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return precision, recall, tp, fp, fn


def score_repair(workload, variant="default"):
    """Score the static repair planner against simulated HITM truth.

    Runs the workload twice under pthreads -- original layout and
    planner-rewritten layout -- with the HITM listener attached, and
    reports:

    - ``eliminated_fraction``: 1 minus the ratio of falsely-shared-line
      HITM events after repair to before (each run classified in its
      own geometry, so false sharing the repair *introduces* -- e.g. in
      the arena -- counts against the planner);
    - precision/recall of the plan's predicted-fixed claims over the
      lines that actually exhibited false-sharing HITM, translating the
      repaired run's residual lines back into extraction geometry
      through the rewriter's observed allocation bases;
    - ``state_identical``: the semantic-preservation gate (final-state
      digests of both runs must match bit-for-bit).
    """
    from repro.analysis.extract import TraceExtractor
    from repro.analysis.repair import plan_program, rewrite_program

    extraction_program = workload.build(variant)
    extracted = TraceExtractor(extraction_program).run()
    plan = plan_program(extraction_program, extracted=extracted,
                        variant=variant)

    baseline = collect_ground_truth(workload, variant)
    rewritten, rewriter = rewrite_program(workload.build(variant), plan)
    repaired = collect_ground_truth(None, program=rewritten)

    base_false = {line.line_va for line in baseline.false_lines}
    base_events = sum(baseline.line_counts.get(line, 0)
                      for line in base_false)
    repaired_false = {line.line_va for line in repaired.false_lines}
    repaired_events = sum(repaired.line_counts.get(line, 0)
                          for line in repaired_false)
    eliminated = (1.0 - repaired_events / base_events if base_events
                  else 1.0)

    # translate repaired-geometry residual lines back to extraction
    # geometry via allocation ordinals
    ext_base = {a.ordinal: a.base for a in extracted.allocations}
    observed = sorted(
        (addr, addr + next(a.size for a in extracted.allocations
                           if a.ordinal == ordinal), ordinal)
        for ordinal, addr in rewriter.observed.items()
        if ordinal in ext_base)
    residual_ext = set()
    new_false = 0
    for line_va in repaired_false:
        translated = None
        for base, end, ordinal in observed:
            if base <= line_va < end:
                translated = ext_base[ordinal] + (line_va - base)
                break
        if translated is None:
            new_false += 1
        else:
            residual_ext.add(translated & ~(LINE_SIZE - 1))

    flagged = {line for line in base_false
               if baseline.line_counts.get(line, 0)}
    actually_fixed = flagged - residual_ext
    predicted_fixed = set(plan.predicted_fixed) & flagged
    tp = len(predicted_fixed & actually_fixed)
    fp = len(predicted_fixed - actually_fixed)
    fn = len(actually_fixed - predicted_fixed)
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0

    base_state = workload.final_state(
        baseline.result.env, baseline.engine)
    repaired_state = workload.final_state(
        repaired.result.env, rewriter.view(repaired.engine))
    state_identical = base_state == repaired_state

    return {
        "workload": baseline.workload,
        "baseline_false_lines": len(base_false),
        "baseline_false_events": base_events,
        "repaired_false_lines": len(repaired_false),
        "repaired_false_events": repaired_events,
        "new_false_lines": new_false,
        "eliminated_fraction": round(eliminated, 4),
        "predicted_fixed": len(plan.predicted_fixed),
        "predicted_residual": len(plan.predicted_residual),
        "precision": round(precision, 4),
        "recall": round(recall, 4),
        "tp": tp, "fp": fp, "fn": fn,
        "state_identical": state_identical,
        "plan_cost": dict(plan.cost),
    }
