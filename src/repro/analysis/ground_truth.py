"""Simulated-HITM ground truth for scoring the static linter.

Runs a workload under the pthreads baseline with a HITM listener that
records per-line, per-thread byte masks — exactly the information the
paper's detector samples, but exhaustively rather than statistically —
and classifies the touched lines with the same byte-overlap rule the
linter uses (:mod:`repro.analysis.layout_check`).  The listener charges
zero extra cycles, so the run's results are the baseline's.

Like the extractor, masks count only while at least two threads are
alive; a HITM can fire after the last worker exits (main reading
worker-dirtied lines during reduction), and those are not concurrency.
"""

from dataclasses import dataclass, field

from repro.analysis.layout_check import (classify_lines,
                                         false_sharing_lines,
                                         true_sharing_lines)
from repro.analysis.observer import EngineObserver
from repro.sim.costs import LINE_SIZE

_LINE_MASK = ~(LINE_SIZE - 1)


class HitmGroundTruth(EngineObserver):
    """Observer + HITM listener collecting sharing ground truth."""

    def __init__(self):
        self.lines = {}        # line_va -> {tid: [read_mask, write_mask]}
        self.hitm_count = 0
        self._alive = 0

    def on_attach(self, engine):
        engine.machine.add_hitm_listener(self._on_hitm)

    def on_thread_create(self, parent_tid, child_tid):
        self._alive += 1

    def on_thread_exit(self, tid):
        self._alive -= 1

    def _on_hitm(self, event):
        self.hitm_count += 1
        if self._alive < 2:
            return None
        addr = event.va
        end = addr + event.width
        lines = self.lines
        while addr < end:
            line = addr & _LINE_MASK
            take = min(end, line + LINE_SIZE) - addr
            mask = ((1 << take) - 1) << (addr - line)
            record = lines.setdefault(line, {}).setdefault(
                event.tid, [0, 0])
            record[1 if event.is_store else 0] |= mask
            addr += take
        return None               # zero added cost

    def shared_lines(self):
        return classify_lines(self.lines)


@dataclass
class GroundTruth:
    """Classified HITM ground truth from one baseline run."""

    workload: str
    shared_lines: list = field(default_factory=list)
    hitm_count: int = 0
    result: object = None

    @property
    def false_lines(self):
        return false_sharing_lines(self.shared_lines)

    @property
    def true_lines(self):
        return true_sharing_lines(self.shared_lines)


def collect_ground_truth(workload, variant=None):
    """Simulate ``workload`` under pthreads and classify HITM lines."""
    from repro.baselines.pthreads import PthreadsRuntime
    from repro.engine.scheduler import Engine

    program = (workload.build() if variant is None
               else workload.build(variant))
    collector = HitmGroundTruth()
    engine = Engine(program, PthreadsRuntime())
    engine.attach_observer(collector)
    result = engine.run()
    return GroundTruth(
        workload=program.name,
        shared_lines=collector.shared_lines(),
        hitm_count=collector.hitm_count,
        result=result,
    )


def precision_recall(predicted_lines, truth_lines):
    """Precision/recall of predicted line addresses vs ground truth.

    Both arguments are SharedLine lists (typically the false-sharing
    subset on each side).  Returns (precision, recall, tp, fp, fn);
    precision/recall are 1.0 when their denominator is empty.
    """
    predicted = {line.line_va for line in predicted_lines}
    truth = {line.line_va for line in truth_lines}
    tp = len(predicted & truth)
    fp = len(predicted - truth)
    fn = len(truth - predicted)
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return precision, recall, tp, fp, fn
