"""FastTrack-style data-race sanitizer fed from engine observer events.

Per-byte shadow state: the last write epoch and the set of read epochs
not yet ordered behind a write.  An access races with a prior access
when neither thread's clock covers the other's epoch and they conflict
(at least one write).  Races where *both* sides are atomic — including
``volatile`` accesses, which the simulator models as relaxed atomics —
are exempt, matching the C11 rule that atomics never race (they may
still be wrong, but that is ordering, not a data race).

Happens-before edges come from the engine's observer stream:

- mutex release publishes the releaser's clock on the lock; acquire
  joins it (also used for the release half of ``cond_wait``);
- barriers join all participants into one clock;
- thread create/join and cond-signal wake-ups are direct edges;
- full fences join through one global fence clock (fences are totally
  ordered in the simulator), and non-relaxed atomic stores/RMWs publish
  a per-address release clock that non-relaxed loads/RMWs acquire.

The sanitizer also audits TMI's code-centric consistency claim
(PAPER.md section 3.4): every PTSB commit records the committing
thread's epoch for each merged byte, and two commits of the *same byte*
from different processes must be happens-before ordered — otherwise the
merge order is a coherence decision the hardware never made.
"""

from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, Finding, format_findings
from repro.analysis.observer import EngineObserver
from repro.analysis.vectorclock import VectorClock
from repro.isa.ops import RELAXED
from repro.sim.costs import LINE_SIZE

_LINE_MASK = ~(LINE_SIZE - 1)

#: Stop collecting after this many distinct race reports.
DEFAULT_MAX_REPORTS = 50


@dataclass
class RaceReport:
    """Result of one sanitized run."""

    races: list = field(default_factory=list)
    commit_violations: list = field(default_factory=list)
    accesses: int = 0
    commits_checked: int = 0

    @property
    def findings(self):
        return self.races + self.commit_violations

    @property
    def ok(self):
        return not self.races and not self.commit_violations

    def format(self, title=""):
        head = title or (f"sanitizer: {self.accesses} accesses, "
                         f"{self.commits_checked} PTSB commits checked")
        return format_findings(self.findings, title=head)


class RaceSanitizer(EngineObserver):
    """Attach to an Engine before ``run()``; read ``.report`` after."""

    def __init__(self, max_reports=DEFAULT_MAX_REPORTS):
        self.report = RaceReport()
        self._max_reports = max_reports
        self._engine = None
        self._clocks = {}          # tid -> VectorClock
        self._lock_clocks = {}     # id(sync obj) -> VectorClock
        self._fence_clock = VectorClock()
        self._atomic_release = {}  # addr -> VectorClock
        # byte va -> (tid, clock, atomic, site)
        self._write_shadow = {}
        # byte va -> {tid: (clock, atomic, site)}
        self._read_shadow = {}
        # byte pa -> (tid, clock, pid) of the last PTSB commit
        self._commit_shadow = {}
        self._seen_races = set()
        self._seen_commit_pairs = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_attach(self, engine):
        self._engine = engine

    def _clock(self, tid):
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
        return clock

    def on_thread_create(self, parent_tid, child_tid):
        if parent_tid is None:
            self._clock(child_tid)
            return
        parent = self._clock(parent_tid)
        child = parent.copy()
        child.tick(child_tid)
        self._clocks[child_tid] = child
        parent.tick(parent_tid)

    def on_hb_edge(self, src_tid, dst_tid):
        self._clock(dst_tid).join(self._clock(src_tid))
        self._clock(src_tid).tick(src_tid)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def on_acquire(self, tid, obj):
        published = self._lock_clocks.get(id(obj))
        if published is not None:
            self._clock(tid).join(published)

    def on_release(self, tid, obj):
        clock = self._clock(tid)
        key = id(obj)
        published = self._lock_clocks.get(key)
        if published is None:
            self._lock_clocks[key] = clock.copy()
        else:
            published.join(clock)
        clock.tick(tid)

    def on_barrier(self, tids):
        joined = VectorClock()
        for tid in tids:
            joined.join(self._clock(tid))
        for tid in tids:
            clock = self._clock(tid)
            clock.join(joined)
            clock.tick(tid)

    def on_fence(self, tid):
        clock = self._clock(tid)
        clock.join(self._fence_clock)
        self._fence_clock.join(clock)
        clock.tick(tid)

    # ------------------------------------------------------------------
    # accesses
    # ------------------------------------------------------------------
    def on_access(self, tid, site, addr, width, is_write, volatile):
        # volatile is modeled as a relaxed atomic: exempt from racing
        # against other atomics, but establishing no happens-before
        self._access(tid, site, addr, width, is_write, atomic=volatile)

    def on_atomic(self, tid, site, addr, width, is_write, is_rmw,
                  ordering):
        if ordering != RELAXED:
            clock = self._clock(tid)
            if is_rmw or not is_write:
                published = self._atomic_release.get(addr)
                if published is not None:
                    clock.join(published)
            if is_write:
                published = self._atomic_release.get(addr)
                if published is None:
                    self._atomic_release[addr] = clock.copy()
                else:
                    published.join(clock)
                clock.tick(tid)
        self._access(tid, site, addr, width, is_write, atomic=True)

    def _access(self, tid, site, addr, width, is_write, atomic):
        report = self.report
        report.accesses += 1
        if len(report.races) >= self._max_reports:
            return
        clock = self._clock(tid)
        epoch = clock.get(tid)
        write_shadow = self._write_shadow
        read_shadow = self._read_shadow
        for byte in range(addr, addr + width):
            last_write = write_shadow.get(byte)
            if last_write is not None:
                wtid, wclock, watomic, wsite = last_write
                if (wtid != tid and not (atomic and watomic)
                        and not clock.covers(wtid, wclock)):
                    self._race(byte, wsite, wtid, True, site, tid,
                               is_write)
            if is_write:
                readers = read_shadow.get(byte)
                if readers:
                    for rtid, (rclock, ratomic, rsite) in \
                            readers.items():
                        if (rtid != tid and not (atomic and ratomic)
                                and not clock.covers(rtid, rclock)):
                            self._race(byte, rsite, rtid, False, site,
                                       tid, True)
                    del read_shadow[byte]
                write_shadow[byte] = (tid, epoch, atomic, site)
            else:
                readers = read_shadow.get(byte)
                if readers is None:
                    read_shadow[byte] = {tid: (epoch, atomic, site)}
                else:
                    readers[tid] = (epoch, atomic, site)

    def _race(self, byte, first_site, first_tid, first_write,
              second_site, second_tid, second_write):
        key = (first_site.pc, second_site.pc)
        if key in self._seen_races:
            return
        self._seen_races.add(key)
        second_kind = "write" if second_write else "read"
        first_kind = "write" if first_write else "read"
        self.report.races.append(Finding(
            "data-race", ERROR,
            f"{second_kind} of {byte:#x} by t{second_tid} at "
            f"{second_site.label or hex(second_site.pc)} races with "
            f"{first_kind} by t{first_tid} at "
            f"{first_site.label or hex(first_site.pc)}",
            pc=second_site.pc, label=second_site.label,
            line_va=byte & _LINE_MASK,
            detail={"other_pc": first_site.pc,
                    "other_label": first_site.label,
                    "tids": (first_tid, second_tid)}))

    # ------------------------------------------------------------------
    # TMI PTSB commit ordering
    # ------------------------------------------------------------------
    def on_ptsb_commit(self, info):
        tid = self._tid_for_core(info.get("core"))
        if tid is None:
            return
        report = self.report
        report.commits_checked += 1
        clock = self._clock(tid)
        epoch = clock.get(tid)
        pid = info.get("pid")
        shadow = self._commit_shadow
        for start, end in info.get("spans", ()):
            for byte in range(start, end):
                previous = shadow.get(byte)
                if previous is not None:
                    ptid, pclock, ppid = previous
                    if ppid != pid and not clock.covers(ptid, pclock):
                        self._commit_violation(byte, ppid, ptid, pid,
                                               tid)
                shadow[byte] = (tid, epoch, pid)

    def _commit_violation(self, byte, first_pid, first_tid, second_pid,
                          second_tid):
        key = (first_pid, second_pid, byte & _LINE_MASK)
        if key in self._seen_commit_pairs:
            return
        self._seen_commit_pairs.add(key)
        self.report.commit_violations.append(Finding(
            "ptsb-commit-order", ERROR,
            f"PTSB commit of byte {byte:#x} by process {second_pid} "
            f"(t{second_tid}) is concurrent with an earlier commit by "
            f"process {first_pid} (t{first_tid}): merge order is not "
            f"happens-before justified",
            line_va=byte & _LINE_MASK,
            detail={"pids": (first_pid, second_pid),
                    "tids": (first_tid, second_tid)}))

    def _tid_for_core(self, core):
        if core is None or self._engine is None:
            return None
        for thread in self._engine.threads.values():
            if thread.core == core:
                return thread.tid
        return None
