"""Exact re-execution of recorded schedule traces.

A :class:`~repro.schedule.trace.ScheduleTrace` pins everything that
determined the original interleaving: the run coordinates and the
decision log.  :func:`replay_trace` re-runs the cell under
:class:`~repro.schedule.policy.ReplayPolicy` and re-classifies the
outcome, so a repro artifact can be checked — deterministically, on
any machine — against the failure it claims to capture.
"""

import os
from dataclasses import dataclass, field

from repro.eval.runner import run_workload
from repro.schedule.fuzz import STATE_MISMATCH, classify_outcome
from repro.schedule.trace import ScheduleTrace


@dataclass
class ReplayResult:
    """The replayed run, classified, next to the trace's claim."""

    trace: ScheduleTrace
    outcome: object
    #: Classification of the replayed run (None when it ran clean).
    kind: object
    signatures: list = field(default_factory=list)

    @property
    def expected_kind(self):
        return self.trace.failure.get("kind")

    @property
    def expected_signatures(self):
        return [list(s) for s in self.trace.failure.get("signatures", [])]

    @property
    def matches(self):
        """True when the replay reproduced the recorded failure: same
        kind and identical race signatures."""
        if self.kind != self.expected_kind:
            return False
        return [list(s) for s in self.signatures] == \
            self.expected_signatures

    def detail(self):
        return (f"replayed kind={self.kind!r} "
                f"(expected {self.expected_kind!r}), "
                f"{len(self.signatures)} signature(s) "
                f"(expected {len(self.expected_signatures)})")


def replay_trace(trace, config=None):
    """Replay a :class:`ScheduleTrace` (or a path to its JSON artifact).

    The run is always sanitized and state-collected so the replay can
    be classified exactly as the fuzzer classified the original; for
    ``state-mismatch`` traces a fresh default-schedule baseline is run
    first to rebuild the comparison digest.
    """
    if isinstance(trace, (str, os.PathLike)):
        trace = ScheduleTrace.load(trace)
    kwargs = dict(name=trace.workload, system=trace.system,
                  scale=trace.scale, nthreads=trace.nthreads,
                  variant=trace.variant, config=config,
                  sanitize=True, collect_state=True,
                  max_cycles=trace.max_cycles)
    baseline_state = None
    if trace.failure.get("kind") == STATE_MISMATCH:
        # the digest is always rebuilt fault-free: it is the
        # metamorphic oracle the faulted run is checked against
        baseline_state = run_workload(**kwargs).final_state
    outcome = run_workload(**kwargs, schedule=trace.policy_spec(),
                           faults=getattr(trace, "faults", None))
    kind, _detail, signatures = classify_outcome(outcome, baseline_state)
    return ReplayResult(trace=trace, outcome=outcome, kind=kind,
                        signatures=signatures)
