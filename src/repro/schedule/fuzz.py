"""Seeded schedule fuzzing with shrinking repro artifacts.

:func:`fuzz_workload` runs one (workload, system) cell under many
seeded perturbation policies, fanned out across worker processes.
Every interleaving is checked two ways:

- the vector-clock race sanitizer (``sanitize=True`` runs), and
- the workload's final-state oracle: for race-free programs whose
  shared updates commute, the :meth:`Workload.final_state` digest must
  match the default schedule's digest in every legal interleaving.

A failing seed's decision log is shrunk by delta debugging
(:mod:`repro.schedule.shrink`) — each candidate log is replayed and
kept only if the *same* failure (kind and race signatures) recurs —
and saved as a versioned :class:`~repro.schedule.trace.ScheduleTrace`
artifact under ``results/fuzz/`` for exact replay.

:func:`smoke_fuzz` is the CI entry point: a bounded budget, a positive
control (the seeded fuzzer must find racy-flag's handoff race and the
replayed artifact must reproduce the identical finding) and a negative
control (a race-free workload must come back clean).
"""

import time
from dataclasses import dataclass, field

from repro.eval.parallel import job_count, run_cells
from repro.eval.runner import OK, run_workload
from repro.schedule.shrink import shrink_decisions
from repro.schedule.trace import ScheduleTrace, race_signatures

#: Failure kinds beyond the runner statuses (budget/deadlock/hang/
#: invalid pass through as their own kinds).
RACE = "race"
STATE_MISMATCH = "state-mismatch"


def classify_outcome(outcome, baseline_state=None):
    """Classify one scheduled run: ``(kind, detail, signatures)``.

    ``kind`` is None for a clean run.  Non-ok statuses (``budget``,
    ``deadlock``, ``hang``, ``invalid``) pass through as kinds; an ok
    run fails with :data:`RACE` when the sanitizer found anything and
    with :data:`STATE_MISMATCH` when its final-state digest diverges
    from ``baseline_state`` (the default schedule's digest).
    """
    signatures = race_signatures(outcome.analysis)
    if outcome.status != OK:
        return outcome.status, outcome.detail, signatures
    if signatures:
        return RACE, f"{len(signatures)} data race(s)", signatures
    if (baseline_state is not None and outcome.final_state is not None
            and outcome.final_state != baseline_state):
        diverged = sorted(
            key for key in set(baseline_state) | set(outcome.final_state)
            if baseline_state.get(key) != outcome.final_state.get(key))
        return (STATE_MISMATCH,
                "final state diverged from default schedule: "
                + ", ".join(diverged), signatures)
    return None, "", signatures


@dataclass
class FuzzFinding:
    """One failing seed, with its (possibly shrunk) decision log."""

    workload: str
    system: str
    policy: str
    seed: int
    kind: str
    detail: str = ""
    signatures: list = field(default_factory=list)
    decisions: list = field(default_factory=list)
    #: Decision count before shrinking (None when not shrunk).
    shrunk_from: object = None
    #: Path of the saved ScheduleTrace artifact.
    artifact: object = None


@dataclass
class FuzzReport:
    """Everything one :func:`fuzz_workload` call learned."""

    workload: str
    system: str
    policy: str
    scale: float
    seeds: list
    max_cycles: object
    findings: list
    baseline_status: str
    baseline_signatures: list
    elapsed: float
    budget_exhausted: bool = False

    @property
    def ok(self):
        return not self.findings

    def summary_lines(self):
        head = (f"fuzz {self.workload}/{self.system} policy={self.policy}"
                f" seeds={len(self.seeds)} findings={len(self.findings)}"
                f" ({self.elapsed:.1f}s"
                + (", budget exhausted)" if self.budget_exhausted else ")"))
        lines = [head]
        for f in self.findings:
            shrunk = ""
            if f.shrunk_from is not None:
                shrunk = f" (shrunk {f.shrunk_from}->{len(f.decisions)})"
            lines.append(f"  seed {f.seed}: {f.kind}{shrunk} -> {f.artifact}")
            if f.detail:
                lines.append(f"    {f.detail}")
        return lines


def _policy_spec(policy, seed):
    if isinstance(policy, dict):
        spec = dict(policy)
        spec["seed"] = seed
        return spec
    return {"policy": policy, "seed": seed}


def _policy_name(policy):
    if isinstance(policy, dict):
        return policy.get("policy", "?")
    return policy


def fuzz_workload(name, system="pthreads", policy="random", seeds=16,
                  scale=0.1, nthreads=None, variant=None, config=None,
                  max_cycles=None, budget=None, jobs=None, out_dir=None,
                  sanitize=True, shrink=True, max_shrinks=4,
                  shrink_attempts=48, faults=None):
    """Fuzz one (workload, system) cell over seeded schedules.

    ``seeds`` is an int (``range(seeds)``) or an explicit iterable;
    ``policy`` a name from :data:`~repro.schedule.policy.POLICY_NAMES`
    or a spec dict whose ``seed`` gets overridden per run.  ``budget``
    is a wall-clock bound in seconds: no new seed batch launches after
    it expires (in-flight batches finish).  ``max_cycles`` defaults to
    a generous multiple of the default schedule's cycle count, so a
    livelocking interleaving surfaces as a ``budget`` finding with a
    replayable trace instead of hanging the fuzzer.

    ``faults`` cross-fuzzes schedules against a deterministic fault
    plan (a ``{"seed", "rates", "limits"}`` spec or a
    :class:`~repro.faults.FaultPlan`): every fuzzed cell runs with the
    plan armed while the baseline digest stays fault-free, so a fault
    sequence that corrupts final state surfaces as a
    :data:`STATE_MISMATCH` finding whose artifact replays both the
    schedule and the faults.

    Returns a :class:`FuzzReport`; every finding's trace artifact is
    already written (``results/fuzz/`` unless ``out_dir``).
    """
    start = time.monotonic()
    if isinstance(seeds, int):
        seeds = list(range(seeds))
    else:
        seeds = list(seeds)
    fault_spec = None
    if faults is not None:
        fault_spec = (faults.spec() if hasattr(faults, "spec")
                      else dict(faults))
    base_kwargs = dict(name=name, system=system, scale=scale,
                       config=config, variant=variant, nthreads=nthreads,
                       sanitize=sanitize, collect_state=True)
    cell_kwargs = dict(base_kwargs, faults=fault_spec)
    baseline = run_workload(**base_kwargs)
    baseline_state = baseline.final_state
    baseline_signatures = race_signatures(baseline.analysis)
    if max_cycles is None:
        if baseline.cycles:
            max_cycles = max(1_000_000, 25 * baseline.cycles)
        else:
            max_cycles = 500_000_000

    findings = []
    ran = []
    budget_exhausted = False
    batch = max(1, job_count(jobs))
    pending = list(seeds)
    while pending:
        if budget is not None and time.monotonic() - start >= budget:
            budget_exhausted = True
            break
        chunk, pending = pending[:batch], pending[batch:]
        cells = [dict(cell_kwargs, max_cycles=max_cycles,
                      schedule=_policy_spec(policy, seed))
                 for seed in chunk]
        for seed, outcome in zip(chunk, run_cells(cells, jobs=jobs)):
            ran.append(seed)
            kind, detail, signatures = classify_outcome(
                outcome, baseline_state)
            if kind is None:
                continue
            decisions = list((outcome.trace or {}).get("decisions", ()))
            findings.append(FuzzFinding(
                workload=name, system=system, policy=_policy_name(policy),
                seed=seed, kind=kind, detail=detail,
                signatures=signatures, decisions=decisions))

    deadline = (start + budget) if budget is not None else None
    shrunk = 0
    for finding in findings:
        if shrink and shrunk < max_shrinks and finding.decisions:
            original = len(finding.decisions)
            finding.decisions = _shrink_finding(
                finding, cell_kwargs, max_cycles, baseline_state,
                shrink_attempts, deadline)
            finding.shrunk_from = original
            shrunk += 1
        trace = ScheduleTrace(
            workload=name, system=system, policy=finding.policy,
            seed=finding.seed, scale=scale, nthreads=nthreads,
            variant=variant, max_cycles=max_cycles,
            decisions=list(finding.decisions), faults=fault_spec,
            failure={"kind": finding.kind, "detail": finding.detail,
                     "signatures": [list(s) for s in finding.signatures]})
        finding.artifact = trace.save(out_dir=out_dir)

    return FuzzReport(
        workload=name, system=system, policy=_policy_name(policy),
        scale=scale, seeds=ran, max_cycles=max_cycles, findings=findings,
        baseline_status=baseline.status,
        baseline_signatures=baseline_signatures,
        elapsed=time.monotonic() - start,
        budget_exhausted=budget_exhausted)


def _shrink_finding(finding, base_kwargs, max_cycles, baseline_state,
                    attempts, deadline):
    """Shrink one finding's decision log; the failure must recur with
    the same kind *and* the same race signatures for a candidate to be
    accepted (the replay identity the artifact promises)."""
    target_kind = finding.kind
    target_signatures = finding.signatures

    def reproduces(candidate):
        if deadline is not None and time.monotonic() >= deadline:
            return False
        outcome = run_workload(**dict(
            base_kwargs, max_cycles=max_cycles,
            schedule={"policy": "replay", "decisions": list(candidate)}))
        kind, _, signatures = classify_outcome(outcome, baseline_state)
        return kind == target_kind and signatures == target_signatures

    return shrink_decisions(finding.decisions, reproduces,
                            max_attempts=attempts)


# ----------------------------------------------------------------------
# CI smoke fuzz
# ----------------------------------------------------------------------

@dataclass
class SmokeResult:
    """Pass/fail checks from one :func:`smoke_fuzz` run."""

    checks: list                      # (name, passed, detail)
    reports: dict                     # phase -> FuzzReport

    @property
    def ok(self):
        return all(passed for _, passed, _ in self.checks)

    def summary_lines(self):
        """Check verdicts; on failure, every finding's replay artifact.

        The artifact paths are the actionable part of a failing smoke
        run — ``python -m repro.eval.cli replay <path>`` re-executes
        the exact interleaving — so CI output must carry them.  A
        passing run stays terse (the positive control finds races by
        design; listing those would be noise).
        """
        lines = []
        for name, passed, detail in self.checks:
            mark = "PASS" if passed else "FAIL"
            lines.append(f"[{mark}] {name}: {detail}")
        if self.ok:
            return lines
        artifacts = [
            f"  {phase} seed {f.seed} ({f.kind}) -> {f.artifact}"
            for phase, report in self.reports.items()
            for f in report.findings if f.artifact]
        if artifacts:
            lines.append("replay artifacts:")
            lines.extend(artifacts)
        return lines


def smoke_fuzz(seeds=16, budget=60.0, jobs=None, out_dir=None):
    """Bounded CI smoke: the fuzzer must *work*, fast.

    - positive control: seeded fuzzing of ``racy-flag`` (pthreads,
      buggy variant) must find the volatile-flag handoff race, and
      replaying the emitted artifact must reproduce the identical
      sanitizer finding;
    - negative control: a race-free workload (histogram, small scale)
      must produce zero findings under the same policy.
    """
    from repro.schedule.replay import replay_trace
    start = time.monotonic()
    checks = []
    reports = {}

    racy_budget = None if budget is None else budget * 0.6
    racy = fuzz_workload(
        "racy-flag", system="pthreads", policy="random", seeds=seeds,
        scale=1.0, budget=racy_budget, jobs=jobs, out_dir=out_dir,
        max_shrinks=1)
    reports["racy-flag"] = racy
    races = [f for f in racy.findings if f.kind == RACE]
    checks.append((
        "racy-flag: fuzz finds the handoff race", bool(races),
        f"{len(races)} racing seed(s) out of {len(racy.seeds)} run"))

    if races:
        result = replay_trace(races[0].artifact)
        checks.append((
            "racy-flag: artifact replay reproduces the finding",
            result.matches, result.detail()))
    else:
        checks.append((
            "racy-flag: artifact replay reproduces the finding", False,
            "no race artifact to replay"))

    clean_budget = None
    if budget is not None:
        clean_budget = max(5.0, (start + budget) - time.monotonic())
    clean_seeds = max(1, min(8, seeds if isinstance(seeds, int)
                             else len(list(seeds))))
    clean = fuzz_workload(
        "histogram", system="pthreads", policy="random",
        seeds=clean_seeds, scale=0.05, budget=clean_budget, jobs=jobs,
        out_dir=out_dir, shrink=False)
    reports["histogram"] = clean
    checks.append((
        "histogram: race-free workload fuzzes clean", clean.ok,
        f"{len(clean.findings)} finding(s) over {len(clean.seeds)} "
        f"seed(s)"))

    return SmokeResult(checks=checks, reports=reports)
