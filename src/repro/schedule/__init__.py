"""Schedule exploration: pluggable scheduling policies, deterministic
record/replay, and a seeded interleaving fuzzer.

The engine executes exactly one interleaving per workload by default
(smallest ready time, insertion-order tie-break).  The paper's claims —
TMI preserves pthreads semantics, PTSB commits respect happens-before —
are universally quantified over schedules, so this package makes the
schedule a seeded, recordable *input*:

- :class:`SchedulePolicy` implementations perturb thread selection at
  op boundaries (random bounded reordering, PCT-style priority
  preemption, targeted delay around lock/barrier/commit edges);
- every policy run emits a compact :class:`ScheduleTrace` (seed +
  decision log) that :func:`replay_trace` re-executes exactly;
- :func:`fuzz_workload` fans seeds out over worker processes, runs each
  interleaving through the race sanitizer and the workload's
  final-state oracle, and shrinks failing decision logs to a minimal
  repro artifact under ``results/fuzz/``.
"""

from repro.schedule.fuzz import (FuzzFinding, FuzzReport, fuzz_workload,
                                 smoke_fuzz)
from repro.schedule.policy import (POLICY_NAMES, DefaultPolicy,
                                   DelayInjectionPolicy, PctPolicy,
                                   RandomTieBreakPolicy, ReplayPolicy,
                                   SchedulePolicy, make_policy)
from repro.schedule.replay import ReplayResult, replay_trace
from repro.schedule.shrink import shrink_decisions
from repro.schedule.trace import TRACE_FORMAT, ScheduleTrace

__all__ = [
    "SchedulePolicy", "DefaultPolicy", "RandomTieBreakPolicy",
    "PctPolicy", "DelayInjectionPolicy", "ReplayPolicy", "make_policy",
    "POLICY_NAMES", "ScheduleTrace", "TRACE_FORMAT", "shrink_decisions",
    "fuzz_workload", "smoke_fuzz", "FuzzFinding", "FuzzReport",
    "replay_trace", "ReplayResult",
]
