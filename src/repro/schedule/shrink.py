"""Delta-debugging minimization of schedule decision logs.

A decision log replays totally even when mutated: replay pads an
exhausted log with the default choice (index 0) and clamps
out-of-range entries, so *any* shortened or zeroed list is a valid
schedule.  Shrinking exploits this with two passes:

1. **Truncation** — binary-search the shortest prefix that still
   reproduces the failure (everything after the prefix becomes default
   scheduling).
2. **ddmin zeroing** — try resetting chunks of the surviving non-zero
   decisions back to 0 (the default choice), halving chunk size on
   failure, classic delta debugging over the set of perturbations.

Trailing zeros are stripped at the end (replay regenerates them).
"""


def _strip_trailing_zeros(decisions):
    end = len(decisions)
    while end > 0 and decisions[end - 1] == 0:
        end -= 1
    return decisions[:end]


def shrink_decisions(decisions, reproduces, max_attempts=80):
    """Minimize ``decisions`` while ``reproduces(candidate)`` holds.

    ``reproduces`` re-runs the workload under a replay of ``candidate``
    and returns True when the original failure still occurs.  At most
    ``max_attempts`` replays are spent; the best list found so far is
    returned (never worse than the input with trailing zeros
    stripped).  The input is assumed to reproduce; callers should
    verify that before paying for shrinking.
    """
    best = _strip_trailing_zeros(list(decisions))
    attempts = [0]

    def try_candidate(candidate):
        if attempts[0] >= max_attempts:
            return False
        attempts[0] += 1
        return reproduces(candidate)

    # pass 1: shortest reproducing prefix, by binary search.  The
    # predicate is not monotone in general (a shorter prefix can fail
    # while a longer one reproduces), so the search is a heuristic that
    # keeps the best verified prefix.
    lo, hi = 0, len(best)
    while lo < hi and attempts[0] < max_attempts:
        mid = (lo + hi) // 2
        candidate = _strip_trailing_zeros(best[:mid])
        if try_candidate(candidate):
            best = candidate
            hi = len(best)
        else:
            lo = mid + 1

    # pass 2: ddmin over the non-default decisions — zero out chunks.
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and attempts[0] < max_attempts:
        changed = False
        start = 0
        while start < len(best) and attempts[0] < max_attempts:
            stop = min(start + chunk, len(best))
            if any(best[start:stop]):
                candidate = best[:start] + [0] * (stop - start) \
                    + best[stop:]
                candidate = _strip_trailing_zeros(candidate)
                if try_candidate(candidate):
                    best = candidate
                    changed = True
            start = stop
        if not changed:
            if chunk == 1:
                break
            chunk //= 2
    return _strip_trailing_zeros(best)
