"""Schedule traces: the compact, replayable record of one fuzzed run.

A trace is everything needed to re-execute an interleaving exactly:
the run's coordinates (workload, system, scale, nthreads, variant,
``max_cycles``), the policy and seed that generated it, and the
decision log — the index the policy chose, at every point where more
than one thread was runnable, into the candidate list sorted by
``(ready_time, seq)``.  Traces serialize to JSON artifacts under
``results/fuzz/`` with a versioned format tag so drift is detected at
load time rather than as garbage replays.
"""

import json
import os
from dataclasses import asdict, dataclass, field

from repro.eval.report import results_dir

#: Versioned artifact format tag.
TRACE_FORMAT = "repro-schedule-trace/1"


@dataclass
class ScheduleTrace:
    """One recorded interleaving plus the failure it provoked."""

    workload: str
    system: str
    policy: str
    seed: object = None
    scale: float = 1.0
    nthreads: object = None
    variant: object = None
    max_cycles: object = None
    decisions: list = field(default_factory=list)
    #: Fault-injection spec ({"seed", "rates", "limits"}) when the run
    #: was cross-fuzzed under a fault plan, so a replay re-arms the
    #: identical failure sequence; None for fault-free traces (older
    #: artifacts omit the key entirely).
    faults: object = None
    #: Failure record: {"kind": ..., "detail": ..., "signatures": [...]}.
    #: ``signatures`` are [rule, label, line_va] triples from the race
    #: sanitizer, the replay identity check's ground truth.
    failure: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def policy_spec(self):
        """Replay spec for :func:`repro.schedule.policy.make_policy`."""
        return {"policy": "replay", "decisions": list(self.decisions)}

    def to_dict(self):
        data = {"format": TRACE_FORMAT}
        data.update(asdict(self))
        return data

    @classmethod
    def from_dict(cls, data):
        tag = data.get("format")
        if tag != TRACE_FORMAT:
            raise ValueError(
                f"unsupported schedule trace format {tag!r} "
                f"(expected {TRACE_FORMAT})")
        fields = {k: v for k, v in data.items() if k != "format"}
        return cls(**fields)

    # ------------------------------------------------------------------
    def save(self, path=None, out_dir=None):
        """Write the artifact; returns its path.

        Default location: ``results/fuzz/<workload>-<system>-<policy>-
        s<seed>.json`` (``REPRO_RESULTS_DIR`` aware).
        """
        if path is None:
            directory = out_dir or os.path.join(results_dir(), "fuzz")
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, self.default_name())
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        return path

    def default_name(self):
        return (f"{self.workload}-{self.system}-{self.policy}"
                f"-s{self.seed}.json")

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def race_signatures(report):
    """Canonical, order-independent signatures of a RaceReport's
    findings: sorted [rule, label, line_va] triples."""
    if report is None:
        return []
    return sorted([f.rule, f.label, f.line_va]
                  for f in report.findings)
