"""Schedule policies: who runs next, made pluggable and seedable.

The engine calls :meth:`SchedulePolicy.choose` whenever more than one
thread is runnable, passing the candidates sorted by ``(ready_time,
seq)`` — index 0 is always what the default scheduler would have run.
The engine records every returned index in its decision log, so any
policy run (including a replay) leaves a trace that
:class:`ReplayPolicy` can re-execute bit-for-bit.

All randomness comes from one :class:`random.Random` seeded at
``reset``, so a (policy, seed) pair fully determines the schedule; the
decision log exists for replay robustness and shrinking, not because
the policies are irreproducible.
"""

import random

#: Op class names that mark lock/barrier/PTSB-commit edges.  TMI-style
#: runtimes commit their PTSBs at sync release/acquire boundaries, so
#: delaying around these ops is delaying around commit edges too.
SYNC_EDGE_OPS = frozenset({
    "MutexLock", "MutexUnlock", "BarrierWait", "CondWait", "CondSignal",
    "Fence",
})


class SchedulePolicy:
    """Base policy: override :meth:`choose`; optionally consume per-op
    events by setting ``wants_op_events`` and overriding
    :meth:`notify_op`."""

    name = "base"
    #: Seed recorded into traces (None for unseeded policies).
    seed = None
    #: When True the engine calls :meth:`notify_op` for every executed
    #: op (off by default: it costs a call per op).
    wants_op_events = False

    def reset(self, engine):
        """Called once at the start of ``Engine.run``."""

    def choose(self, candidates):
        """Pick the next thread; returns an index into ``candidates``
        (sorted by ready time then seq, so 0 is the default choice)."""
        raise NotImplementedError

    def notify_op(self, tid, op_kind):
        """Thread ``tid`` is executing an op of class name ``op_kind``."""


class DefaultPolicy(SchedulePolicy):
    """Reproduces the heap scheduler's order decision-for-decision.

    Exists so the decision-recording machinery can be pinned against
    the fast path: a run under this policy is cycle- and
    result-identical to a policy-less run.
    """

    name = "default"

    def choose(self, candidates):
        return 0


class RandomTieBreakPolicy(SchedulePolicy):
    """Random choice among the near-ready candidates.

    With ``window=0`` only exact ready-time ties are shuffled; a
    positive window treats every candidate within ``window`` cycles of
    the earliest as tied, which perturbs real interleavings while
    keeping the timing plausible.
    """

    name = "random"

    def __init__(self, seed=0, window=5_000):
        self.seed = seed
        self.window = window
        self._rng = random.Random(seed)

    def reset(self, engine):
        self._rng = random.Random(self.seed)

    def choose(self, candidates):
        horizon = candidates[0].ready_time + self.window
        tied = 1
        while tied < len(candidates) and \
                candidates[tied].ready_time <= horizon:
            tied += 1
        if tied == 1:
            return 0
        return self._rng.randrange(tied)


class PctPolicy(SchedulePolicy):
    """PCT-style priority preemption (Burckhardt et al.).

    Every thread gets a random priority on first sight; the
    highest-priority runnable thread always runs.  At random op-count
    change points (probability ``change_prob`` per op) the running
    thread's priority drops below every other, forcing a preemption —
    the online variant of PCT's d-1 priority change points.
    """

    name = "pct"
    wants_op_events = True

    def __init__(self, seed=0, change_prob=1 / 512):
        self.seed = seed
        self.change_prob = change_prob
        self._rng = random.Random(seed)
        self._prio = {}
        self._floor = 0

    def reset(self, engine):
        self._rng = random.Random(self.seed)
        self._prio = {}
        self._floor = 0

    def _priority(self, tid):
        prio = self._prio.get(tid)
        if prio is None:
            prio = self._rng.random()
            self._prio[tid] = prio
        return prio

    def choose(self, candidates):
        best, best_prio = 0, None
        for i, thread in enumerate(candidates):
            prio = self._priority(thread.tid)
            if best_prio is None or prio > best_prio:
                best, best_prio = i, prio
        return best

    def notify_op(self, tid, op_kind):
        if self._rng.random() < self.change_prob:
            self._floor -= 1
            self._prio[tid] = self._floor


class DelayInjectionPolicy(SchedulePolicy):
    """Targeted delay around lock/barrier/PTSB-commit edges.

    After a thread executes a sync-edge op (lock, unlock, barrier,
    condvar, fence — the boundaries where TMI commits PTSBs), with
    probability ``prob`` that thread is held off the core for the next
    ``hold`` scheduling decisions, widening critical sections and
    commit windows so other threads run inside them.
    """

    name = "delay"
    wants_op_events = True

    def __init__(self, seed=0, prob=0.5, hold=24):
        self.seed = seed
        self.prob = prob
        self.hold = hold
        self._rng = random.Random(seed)
        self._held = {}
        self._decision = 0

    def reset(self, engine):
        self._rng = random.Random(self.seed)
        self._held = {}
        self._decision = 0

    def choose(self, candidates):
        self._decision += 1
        held = self._held
        for i, thread in enumerate(candidates):
            if held.get(thread.tid, 0) <= self._decision:
                return i
        return 0                     # everyone held: default order

    def notify_op(self, tid, op_kind):
        if op_kind in SYNC_EDGE_OPS and self._rng.random() < self.prob:
            self._held[tid] = self._decision + self.hold


class ReplayPolicy(SchedulePolicy):
    """Re-executes a recorded decision log exactly.

    An exhausted or over-long log falls back to the default choice
    (index 0) and out-of-range entries clamp, so *any* decision list is
    a total schedule — the property delta-debugging shrinking relies
    on.
    """

    name = "replay"

    def __init__(self, decisions):
        self.decisions = list(decisions)
        self._next = 0

    def reset(self, engine):
        self._next = 0

    def choose(self, candidates):
        if self._next >= len(self.decisions):
            return 0
        decision = self.decisions[self._next]
        self._next += 1
        if decision >= len(candidates):
            return len(candidates) - 1
        return decision


#: Perturbation policies selectable by name (CLI ``--policy``).
POLICY_NAMES = ("default", "random", "pct", "delay")

_FACTORIES = {
    "default": lambda spec: DefaultPolicy(),
    "random": lambda spec: RandomTieBreakPolicy(
        seed=spec.get("seed", 0), window=spec.get("window", 5_000)),
    "pct": lambda spec: PctPolicy(
        seed=spec.get("seed", 0),
        change_prob=spec.get("change_prob", 1 / 512)),
    "delay": lambda spec: DelayInjectionPolicy(
        seed=spec.get("seed", 0), prob=spec.get("prob", 0.5),
        hold=spec.get("hold", 24)),
    "replay": lambda spec: ReplayPolicy(spec["decisions"]),
}


def make_policy(spec):
    """Build a policy from a picklable spec dict.

    ``spec`` is ``{"policy": <name>, "seed": <int>, ...params}`` — the
    form carried inside schedule traces and across the worker-process
    boundary.  ``None`` returns None (engine fast path).
    """
    if spec is None:
        return None
    if isinstance(spec, SchedulePolicy):
        return spec
    name = spec.get("policy")
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown schedule policy {name!r}; "
                       f"known: {sorted(_FACTORIES)}")
    return factory(spec)
