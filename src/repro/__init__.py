"""repro — a reproduction of TMI: Thread Memory Isolation for False
Sharing Repair (DeLozier, Eizenberg, Hu, Pokam, Devietti; MICRO-50,
2017).

The package is organized as the paper's system stack:

- :mod:`repro.sim` — simulated multicore machine: physical memory,
  per-process virtual address spaces with COW and huge pages, a MESI
  coherence directory that surfaces HITM events, and the cycle model;
- :mod:`repro.isa` / :mod:`repro.engine` — the tiny instruction set,
  generator-based threads, and the deterministic execution engine;
- :mod:`repro.oskit` — shm, /proc/pid/maps, perf/PEBS sampling, ptrace;
- :mod:`repro.alloc`, :mod:`repro.sync` — allocator and pthreads;
- :mod:`repro.core` — TMI itself: the detector, targeted PTSB repair,
  thread-to-process conversion, and code-centric consistency;
- :mod:`repro.baselines` — pthreads, Sheriff, and LASER;
- :mod:`repro.workloads` — the paper's 35 benchmarks plus cholesky;
- :mod:`repro.obs` — structured tracing, metrics, self-profiling;
- :mod:`repro.eval` — one entry point per table and figure.

Quickstart::

    from repro import Engine, TmiRuntime, get_workload

    program = get_workload("histogramfs").build()
    result = Engine(program, TmiRuntime("protect")).run()
    print(result.seconds, result.runtime_report["repaired"])
"""

from repro.baselines import LaserRuntime, PthreadsRuntime, SheriffRuntime
from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine, Program, RunResult
from repro.errors import ReproError
from repro.eval import run_workload
from repro.obs import MetricsRegistry, Tracer
from repro.sim import CostModel, Machine
from repro.workloads import get as get_workload

__version__ = "1.0.0"

__all__ = [
    "LaserRuntime", "PthreadsRuntime", "SheriffRuntime", "TmiConfig",
    "TmiRuntime", "Engine", "Program", "RunResult", "ReproError",
    "run_workload", "CostModel", "Machine", "MetricsRegistry",
    "Tracer", "get_workload", "__version__",
]
