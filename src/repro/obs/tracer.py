"""Structured event tracing for simulation runs.

A :class:`Tracer` is an :class:`~repro.analysis.observer.EngineObserver`
(attached with ``Engine.attach_observer``), so it charges zero cycles
and cannot perturb simulation results — the cycle-exactness goldens pin
that a traced run computes exactly the bytes an untraced run does.  On
top of the base observer callbacks it consumes the observability hooks
added for this layer: machine HITM events, PEBS sample batches, detector
interval decisions, thread-to-process conversions, and PTSB
commits/flushes.

Events are plain dicts with a simulated-cycle timestamp.  Two export
formats:

- **JSONL** (:func:`write_jsonl`): a ``repro-trace/1`` header line
  followed by one event per line — grep/jq-friendly, and the format the
  determinism-bisection workflow diffs;
- **Chrome trace JSON** (:func:`write_chrome_trace`): a
  ``chrome://tracing`` / Perfetto-loadable ``trace.json`` with one
  track per simulated core, one per application thread, and one for the
  TMI monitor (detector + repair machinery).
"""

import json

from repro.analysis.observer import EngineObserver

#: Trace format version; bump when the event schema changes.
TRACE_VERSION = "repro-trace/1"


class Tracer(EngineObserver):
    """Collects structured events from one simulation run.

    ``access_events=True`` additionally records every plain and atomic
    data access — complete but enormous; leave it off unless a handful
    of operations is under the microscope.
    """

    def __init__(self, access_events=False):
        self.access_events = access_events
        # without per-access events every access callback is a no-op,
        # so the vector batch executor may stay active under tracing;
        # access-level tracing needs the serial callback-emitting path
        self.vector_safe = not access_events
        self.events = []
        self.meta = {}
        self._engine = None
        self._costs = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def on_attach(self, engine):
        """Capture run metadata; the engine is fully constructed."""
        self._engine = engine
        self._costs = engine.costs
        self.meta = {
            "program": engine.program.name,
            "system": engine.runtime.name,
            "n_cores": engine.machine.n_cores,
            "cycles_per_second": engine.costs.cycles_per_second,
        }
        topology = engine.machine.topology
        if topology.sockets > 1:
            # only on multi-socket machines: single-socket trace dicts
            # stay byte-identical to every earlier PR
            self.meta["sockets"] = topology.sockets
            self.meta["cores_per_socket"] = topology.cores_per_socket

    def _now(self, tid=None):
        """Current cycle on ``tid``'s core (machine time if unknown)."""
        if tid is not None:
            thread = self._engine.threads.get(tid)
            if thread is not None:
                return self._engine.machine.core_clock[thread.core]
        return self._engine.machine.now

    def _core_of(self, tid):
        """The core ``tid`` runs on (-1 when the thread is unknown)."""
        thread = self._engine.threads.get(tid)
        return thread.core if thread is not None else -1

    def _emit(self, kind, ts, **fields):
        fields["kind"] = kind
        fields["ts"] = ts
        self.events.append(fields)

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------
    def on_thread_create(self, parent_tid, child_tid):
        """Record a thread creation edge."""
        self._emit("thread_create", self._now(child_tid),
                   tid=child_tid, parent=parent_tid,
                   core=self._core_of(child_tid))

    def on_thread_exit(self, tid):
        """Record a thread running to completion."""
        self._emit("thread_exit", self._now(tid), tid=tid)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    @staticmethod
    def _sync_id(obj):
        kind = type(obj).__name__.lower()
        ident = getattr(obj, "mid", None) or getattr(obj, "bid", None) \
            or getattr(obj, "cid", None)
        return f"{kind}:{ident}" + (f":{obj.name}" if obj.name else "")

    def on_acquire(self, tid, obj):
        """Record a lock acquisition."""
        self._emit("sync_acquire", self._now(tid), tid=tid,
                   obj=self._sync_id(obj))

    def on_release(self, tid, obj):
        """Record a lock release (including cond_wait's)."""
        self._emit("sync_release", self._now(tid), tid=tid,
                   obj=self._sync_id(obj))

    def on_barrier(self, tids):
        """Record a barrier release with all participants."""
        self._emit("barrier", self._engine.machine.now, tids=list(tids))

    def on_hb_edge(self, src_tid, dst_tid):
        """Record a direct happens-before edge (join, cond signal)."""
        self._emit("hb_edge", self._now(dst_tid), src=src_tid,
                   dst=dst_tid)

    def on_fence(self, tid):
        """Record a full memory fence."""
        self._emit("fence", self._now(tid), tid=tid)

    # ------------------------------------------------------------------
    # data accesses (opt-in: high volume)
    # ------------------------------------------------------------------
    def on_access(self, tid, site, addr, width, is_write, volatile):
        """Record one plain access when ``access_events`` is on."""
        if self.access_events:
            self._emit("access", self._now(tid), tid=tid, pc=site.pc,
                       addr=addr, width=width, is_write=is_write,
                       volatile=volatile)

    def on_atomic(self, tid, site, addr, width, is_write, is_rmw,
                  ordering):
        """Record one atomic access when ``access_events`` is on."""
        if self.access_events:
            self._emit("atomic", self._now(tid), tid=tid, pc=site.pc,
                       addr=addr, width=width, is_write=is_write,
                       is_rmw=is_rmw, ordering=ordering)

    # ------------------------------------------------------------------
    # observability hooks (machine / TMI runtime)
    # ------------------------------------------------------------------
    def on_hitm(self, event):
        """Record one machine HITM (remote-Modified hit)."""
        self._emit("hitm", event.cycle, core=event.core, tid=event.tid,
                   pc=event.pc, va=event.va, pa=event.pa,
                   width=event.width, is_store=event.is_store,
                   remote_core=event.remote_core)

    def on_pebs_records(self, records):
        """Record a drained batch of PEBS samples."""
        for record in records:
            self._emit("pebs_record", record.cycle, tid=record.tid,
                       pc=record.pc, va=record.va)

    def on_detect_interval(self, report, cycle):
        """Record one detector interval decision."""
        self._emit(
            "detect_interval", cycle, interval=report.interval,
            records=report.records, filtered=report.filtered,
            estimated_events=report.estimated_events,
            false_lines=report.false_lines,
            true_lines=report.true_lines,
            targets=[{"page_va": t.page_va, "page_size": t.page_size,
                      "line_va": t.line_va,
                      "estimated_rate": t.estimated_rate}
                     for t in report.targets])

    def on_t2p(self, info):
        """Record a thread-to-process conversion episode."""
        self._emit("t2p", info.get("cycle", self._engine.machine.now),
                   threads=info.get("threads"),
                   cycles=info.get("cycles"),
                   mode=info.get("mode", "initial"))

    def on_ptsb_commit(self, info):
        """Record one PTSB commit (diff + merge)."""
        core = info.get("core", 0)
        self._emit("ptsb_commit", self._engine.machine.core_clock[core],
                   pid=info.get("pid"), core=core,
                   reason=info.get("reason"), pages=info.get("pages"),
                   bytes=info.get("bytes"))

    def on_ptsb_flush(self, info):
        """Record a consistency-driven PTSB flush (atomic/asm entry)."""
        self._emit("ptsb_flush", self._now(info.get("tid")),
                   tid=info.get("tid"), region=info.get("region"))

    def on_fault(self, event):
        """Record one injected fault (or fault-driven page demotion)."""
        fields = {k: v for k, v in event.items()
                  if k not in ("kind", "ts", "cycle")}
        self._emit("fault", event.get("cycle",
                                      self._engine.machine.now),
                   **fields)

    def on_degradation(self, info):
        """Record a degradation-ladder transition."""
        self._emit("degradation", info.get("cycle", 0),
                   interval=info.get("interval"),
                   level_from=info.get("from"), level_to=info.get("to"),
                   reason=info.get("reason"))

    def on_vector_switch(self, tid, ts, mode, ops):
        """Record a vector<->slow-path execution switch.

        Rendered on the per-thread tracks, so a Perfetto view shows
        exactly where batching ran (``vector_batch`` /
        ``vector_lockstep``) and where it broke (``vector_fallback``).
        """
        self._emit(f"vector_{mode}", ts, tid=tid, ops=ops)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def counts(self):
        """Event totals by kind (deterministic ordering)."""
        totals = {}
        for event in self.events:
            kind = event["kind"]
            totals[kind] = totals.get(kind, 0) + 1
        return dict(sorted(totals.items()))

    def trace_data(self):
        """The full trace as one plain, picklable dict.

        This is the hand-off format: workers can ship it across process
        boundaries and the export functions below render it to disk.
        """
        return {"version": TRACE_VERSION, "meta": dict(self.meta),
                "counts": self.counts(), "events": list(self.events)}


class EventLog:
    """Tracer-shaped event collector for host-side services.

    The campaign service streams progress (submissions, shard
    completions, cache hits) as the same plain event dicts the
    :class:`Tracer` emits, so :func:`write_jsonl` exports them and the
    determinism-bisection workflow can diff them.  There is no engine
    and no simulated clock here: ``ts`` is a deterministic per-log
    sequence number, which keeps campaign state files byte-stable for
    identical submission histories.

    Growth is bounded: once the log holds ``max_events`` events, the
    oldest half rotates out, summarized by a synthetic ``log_rotated``
    event (dropped-event count, cumulative total) so week-long serve
    loops and multi-thousand-cell campaigns cannot grow state files
    without bound.  Rotation is a pure function of the emit sequence,
    so byte-stability for identical histories survives it; dropped
    events stay in :meth:`counts` totals.  ``max_events=0`` disables
    rotation.
    """

    def __init__(self, meta=None, max_events=2048):
        self.meta = dict(meta or {})
        self.events = []
        self.max_events = max_events
        self._seq = 0
        self._dropped = {}

    def emit(self, kind, **fields):
        """Append one event (rotating if at cap); returns the event."""
        event = dict(fields)
        event["kind"] = kind
        event["ts"] = self._seq
        self._seq += 1
        self.events.append(event)
        if self.max_events and len(self.events) >= self.max_events:
            self._rotate()
        return event

    def _rotate(self):
        """Drop the oldest half; append the deterministic summary."""
        keep = max(1, self.max_events // 2)
        dropped = self.events[:-keep]
        self.events = self.events[-keep:]
        for event in dropped:
            kind = event["kind"]
            self._dropped[kind] = self._dropped.get(kind, 0) + 1
        summary = {"kind": "log_rotated", "ts": self._seq,
                   "dropped": len(dropped),
                   "dropped_total": sum(self._dropped.values())}
        self._seq += 1
        self.events.append(summary)

    def counts(self):
        """Event totals by kind, rotated-out events included."""
        totals = dict(self._dropped)
        for event in self.events:
            kind = event["kind"]
            totals[kind] = totals.get(kind, 0) + 1
        return dict(sorted(totals.items()))

    def trace_data(self):
        """The log in the :class:`Tracer` hand-off format."""
        return {"version": TRACE_VERSION, "meta": dict(self.meta),
                "counts": self.counts(), "events": list(self.events)}


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------

def write_jsonl(trace_data, path):
    """Write a trace as JSONL: header line, then one event per line."""
    header = {"version": trace_data["version"],
              "meta": trace_data["meta"],
              "counts": trace_data["counts"]}
    with open(path, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in trace_data["events"]:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return path


#: Synthetic pids for the Chrome trace's process groups.
_PID_CORES = 0
_PID_THREADS = 1
_PID_MONITOR = 2
#: Event kinds drawn on the per-core tracks.
_CORE_KINDS = {"hitm", "ptsb_commit"}
#: Event kinds drawn on the TMI monitor track.
_MONITOR_KINDS = {"pebs_record", "detect_interval", "t2p", "fault",
                  "degradation"}


def _microseconds(trace_data, cycle):
    hz = trace_data["meta"].get("cycles_per_second") or 1e9
    return cycle / hz * 1e6


def write_chrome_trace(trace_data, path):
    """Write a Chrome-trace/Perfetto ``trace.json``.

    Tracks: one per simulated core (HITM and PTSB-commit activity),
    one per application thread (sync and lifecycle events), and one
    for the TMI monitor (PEBS samples, detector intervals, T2P).
    """
    meta = trace_data["meta"]
    out = []

    def metadata(pid, tid, what, name):
        out.append({"ph": "M", "pid": pid, "tid": tid, "name": what,
                    "args": {"name": name}})

    metadata(_PID_CORES, 0, "process_name",
             f"cores ({meta.get('system', '?')})")
    metadata(_PID_THREADS, 0, "process_name", "threads")
    metadata(_PID_MONITOR, 0, "process_name", "tmi-monitor")
    metadata(_PID_MONITOR, 0, "thread_name", "monitor")
    per_socket = meta.get("cores_per_socket") or 0
    for core in range(meta.get("n_cores") or 0):
        if (meta.get("sockets") or 1) > 1:
            track = f"core {core} (socket {core // per_socket})"
        else:
            track = f"core {core}"
        metadata(_PID_CORES, core, "thread_name", track)

    seen_tids = set()
    for event in trace_data["events"]:
        kind = event["kind"]
        ts = _microseconds(trace_data, event["ts"])
        args = {k: v for k, v in event.items()
                if k not in ("kind", "ts")}
        if kind in _CORE_KINDS:
            pid, tid = _PID_CORES, event.get("core", 0)
        elif kind in _MONITOR_KINDS:
            pid, tid = _PID_MONITOR, 0
        elif kind == "barrier":
            pid, tid = _PID_THREADS, (event.get("tids") or [0])[0]
        else:
            pid, tid = _PID_THREADS, event.get("tid", 0)
        if pid == _PID_THREADS and tid not in seen_tids:
            seen_tids.add(tid)
            metadata(_PID_THREADS, tid, "thread_name", f"thread {tid}")
        out.append({"ph": "i", "s": "t", "name": kind, "cat": kind,
                    "pid": pid, "tid": tid, "ts": ts, "args": args})

    document = {"traceEvents": out, "displayTimeUnit": "ms",
                "otherData": {"version": trace_data["version"],
                              "program": meta.get("program"),
                              "system": meta.get("system")}}
    with open(path, "w") as fh:
        json.dump(document, fh, sort_keys=True)
    return path
