"""Observability layer: structured tracing, metrics, self-profiling.

Three zero-overhead-when-off tools over the simulator (see
``docs/ARCHITECTURE.md`` for how they sit in the layer map):

- :class:`Tracer` — an engine observer that streams versioned JSONL
  events and exports a Perfetto/``chrome://tracing`` ``trace.json``
  (one track per core, per thread, and per TMI monitor), covering
  HITM events, PEBS samples, detector decisions, T2P conversions, and
  PTSB commits/flushes;
- :class:`MetricsRegistry` — labeled counters/gauges/histograms with
  deterministic JSON snapshots, replacing the ad-hoc end-of-run stat
  dicts;
- :class:`Profiler` — host wall-time attribution per simulator
  subsystem (the ``--profile`` CLI mode), so perf work knows where to
  aim.

Tracing off is the default everywhere and costs nothing: observers
attach through ``Engine.attach_observer``, which charges zero cycles,
and the cycle-exactness goldens pin bit-identical results.
"""

from repro.obs.metrics import (DEFAULT_BUCKETS, METRICS_VERSION, Counter,
                               Gauge, Histogram, MetricsRegistry)
from repro.obs.profile import Profiler, format_profile
from repro.obs.tracer import (TRACE_VERSION, EventLog, Tracer,
                              write_chrome_trace, write_jsonl)

__all__ = [
    "DEFAULT_BUCKETS", "METRICS_VERSION", "Counter", "EventLog",
    "Gauge", "Histogram", "MetricsRegistry", "Profiler",
    "TRACE_VERSION", "Tracer", "format_profile", "write_chrome_trace",
    "write_jsonl",
]
