"""Metrics registry: typed, labeled instruments with JSON snapshots.

The registry replaces the ad-hoc stat dicts that used to be assembled
at the end of a run (``Machine`` counters, ``RunResult.faults``, the
runtimes' ``report()`` dicts): every producer now fills one
:class:`MetricsRegistry` through a first-class instrument API, and the
snapshot is a single deterministic JSON document (sorted keys, stable
label rendering) that is byte-identical for identical simulations —
including across ``REPRO_JOBS`` worker counts, which the test suite
pins.

Three instrument kinds, following the Prometheus vocabulary:

- :class:`Counter` — monotonically increasing totals (HITM events,
  PTSB commits);
- :class:`Gauge` — point-in-time values (twin bytes peak, per-core
  clocks);
- :class:`Histogram` — bucketed distributions (commit sizes, detector
  interval record counts).

Instruments are identified by ``(name, labels)``; asking for the same
identity twice returns the same instrument, so independent subsystems
can accumulate into shared families.
"""

import json

#: Snapshot format version; bump when the JSON layout changes.
METRICS_VERSION = "repro-metrics/1"

#: Default histogram bucket upper bounds (powers of four: wide enough
#: for byte counts and record counts alike).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


def _label_key(labels):
    """Render a label dict into the canonical ``{k=v,...}`` suffix."""
    if not labels:
        return ""
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + parts + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter decremented by {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        """Replace the gauge's value."""
        self.value = value

    def add(self, amount):
        """Shift the gauge by ``amount`` (either sign)."""
        self.value += amount


class Histogram:
    """A bucketed distribution with count and sum.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the overflow, so ``observe`` never drops a sample.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value):
        """Record one sample."""
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """A namespace of named, labeled instruments.

    The registry is cheap to create and entirely passive: nothing in
    it runs on the simulator's hot paths unless a producer explicitly
    increments an instrument, and end-of-run collection (``Machine.
    fill_metrics``, ``Engine.metrics``) only reads state that already
    exists.
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ------------------------------------------------------------------
    # instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name, **labels):
        """The :class:`Counter` for ``(name, labels)``."""
        key = name + _label_key(labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name, **labels):
        """The :class:`Gauge` for ``(name, labels)``."""
        key = name + _label_key(labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name, buckets=DEFAULT_BUCKETS, **labels):
        """The :class:`Histogram` for ``(name, labels)``."""
        key = name + _label_key(labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # ------------------------------------------------------------------
    # bulk ingestion
    # ------------------------------------------------------------------
    def ingest(self, prefix, mapping, **labels):
        """Fold a plain ``{key: number}`` dict into gauges.

        Non-numeric values are stringified into a ``info`` gauge-style
        entry so legacy ``report()`` dicts survive the migration
        losslessly.  Nested dicts recurse with a dotted prefix.
        """
        for key in sorted(mapping):
            value = mapping[key]
            name = f"{prefix}.{key}"
            if isinstance(value, dict):
                self.ingest(name, value, **labels)
            elif isinstance(value, bool):
                self.gauge(name, **labels).set(int(value))
            elif isinstance(value, (int, float)):
                self.gauge(name, **labels).set(value)
            else:
                self.gauge(f"{name}.info",
                           value=str(value), **labels).set(1)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self):
        """The registry as one deterministic, JSON-ready dict."""
        histograms = {}
        for key in sorted(self._histograms):
            h = self._histograms[key]
            buckets = {str(bound): count
                       for bound, count in zip(h.buckets, h.counts)}
            buckets["+Inf"] = h.counts[-1]
            histograms[key] = {"count": h.count, "sum": h.sum,
                               "buckets": buckets}
        return {
            "version": METRICS_VERSION,
            "counters": {key: self._counters[key].value
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value
                       for key in sorted(self._gauges)},
            "histograms": histograms,
        }

    def to_json(self, indent=None):
        """Serialize :meth:`snapshot` to a canonical JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path, indent=1):
        """Write the JSON snapshot to ``path``; returns the path."""
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent) + "\n")
        return path
