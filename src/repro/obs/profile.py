"""Host-side self-profiling: where does the simulator spend wall time?

The simulator's own performance work (ROADMAP: "as fast as the hardware
allows") needs attribution, not guesswork.  A :class:`Profiler` wraps a
run's subsystem boundaries with ``time.perf_counter`` timers and
reports *exclusive* (self) time per category, so a future perf PR can
read off the next hot path instead of re-deriving it with ``cProfile``
runs.

Profiling perturbs host wall time only — simulated cycles are computed
identically, so a profiled run's ``RunResult`` matches an unprofiled
one bit for bit (the obs test suite pins this).

Categories wrapped by :meth:`Profiler.install`:

- ``memory-system`` — :meth:`~repro.sim.machine.Machine.mem_access`
  (coherence directory + physical memory + HITM listeners);
- ``runtime-translate`` — the runtime's ``translate`` hook, when
  overridden (TMI's code-centric routing);
- ``runtime-sync`` — the runtime's sync-hook surface, which is where
  TMI's PTSB commits happen;
- ``detector`` — the runtime's ``on_tick`` (PEBS drain, interval
  analysis, repair requests);
- everything else lands in the ``engine`` residue, computed as the
  ``run`` phase minus all attributed time.

Phases (``build``, ``engine-init``, ``run``, ``result``) are timed by
the harness through :meth:`Profiler.phase`.
"""

import time
from contextlib import contextmanager


class Profiler:
    """Exclusive wall-time attribution across simulator subsystems."""

    def __init__(self):
        #: Exclusive (self) seconds per category.
        self.seconds = {}
        #: Inclusive seconds per category (children included).
        self.inclusive = {}
        self.calls = {}
        #: Timer nesting stack: [category, child_seconds] frames, so a
        #: wrapped call that re-enters another wrapped call attributes
        #: self time only (no double counting).
        self._stack = []

    # ------------------------------------------------------------------
    # accounting primitives
    # ------------------------------------------------------------------
    def _enter(self, category):
        self._stack.append([category, 0.0])
        return time.perf_counter()

    def _exit(self, category, start):
        elapsed = time.perf_counter() - start
        _, child = self._stack.pop()
        self.seconds[category] = (self.seconds.get(category, 0.0)
                                  + elapsed - child)
        self.inclusive[category] = (self.inclusive.get(category, 0.0)
                                    + elapsed)
        self.calls[category] = self.calls.get(category, 0) + 1
        if self._stack:
            self._stack[-1][1] += elapsed

    @contextmanager
    def phase(self, name):
        """Time one harness phase (``build``, ``run``, ...)."""
        start = self._enter(name)
        try:
            yield
        finally:
            self._exit(name, start)

    def wrap(self, obj, attr, category):
        """Replace ``obj.attr`` with a timed wrapper (per instance)."""
        inner = getattr(obj, attr)

        def timed(*args, **kwargs):
            start = self._enter(category)
            try:
                return inner(*args, **kwargs)
            finally:
                self._exit(category, start)

        setattr(obj, attr, timed)

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, engine):
        """Wrap ``engine``'s subsystem boundaries for attribution."""
        from repro.engine.hooks import RuntimeHooks

        self.wrap(engine.machine, "mem_access", "memory-system")
        # the batched-run fast path can bypass mem_access and drive the
        # directory directly; same category, so the split stays honest
        self.wrap(engine.machine.directory, "access", "memory-system")
        self.wrap(engine.root_aspace, "translate", "vm-translate")
        runtime = engine.runtime
        rt_cls = type(runtime)
        if rt_cls.translate is not RuntimeHooks.translate:
            self.wrap(runtime, "translate", "runtime-translate")
        for hook in ("on_sync_acquired", "on_sync_release",
                     "sync_cost_extra", "on_sync_object_init"):
            if getattr(rt_cls, hook) is not getattr(RuntimeHooks, hook):
                self.wrap(runtime, hook, "runtime-sync")
        if rt_cls.on_tick is not RuntimeHooks.on_tick:
            self.wrap(runtime, "on_tick", "detector")
        # the engine caches hook-override flags at construction; the
        # wrappers replace instance attributes, so the cached flags and
        # the wrapped hot paths stay consistent

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    #: Harness phases (reported with inclusive time); every other
    #: category is a subsystem and reports exclusive (self) time.
    PHASES = ("build", "engine-init", "run", "result")

    def report(self):
        """Attribution as a plain dict (category -> seconds/calls).

        Phases report inclusive seconds; subsystems report exclusive
        seconds.  ``engine`` is the ``run`` phase's self time — the
        dispatch loop and op execution not claimed by any wrapped
        subsystem.
        """
        out = {}
        for name in sorted(self.seconds):
            inclusive = name in self.PHASES
            value = self.inclusive[name] if inclusive else \
                self.seconds[name]
            out[name] = {"seconds": round(value, 6),
                         "calls": self.calls.get(name, 0)}
        if "run" in self.seconds:
            out["engine"] = {"seconds": round(self.seconds["run"], 6),
                             "calls": self.calls.get("run", 0)}
        return out

    def format(self):
        """Human-readable attribution table, hottest first."""
        return format_profile(self.report())


def format_profile(report):
    """Format a :meth:`Profiler.report` dict as a table, hottest first.

    Works on the plain dict (which is what crosses process boundaries
    and lands on ``RunOutcome.profile``), not on a live Profiler.
    """
    total = sum(report[name]["seconds"] for name in Profiler.PHASES
                if name in report)
    lines = ["self-profile (host wall time by subsystem):"]
    order = sorted(report.items(),
                   key=lambda item: -item[1]["seconds"])
    for name, entry in order:
        if name == "run":
            continue               # shown as its 'engine' self time
        pct = (100.0 * entry["seconds"] / total) if total else 0.0
        calls = entry["calls"] or ""
        lines.append(f"  {name:<18} {entry['seconds']*1e3:10.2f} ms"
                     f"  {pct:5.1f}%  {calls:>10}")
    lines.append(f"  {'total':<18} {total*1e3:10.2f} ms")
    return "\n".join(lines)
