"""Consistency-callback table (the loader interposition point).

The paper's code-centric consistency callbacks are library function
calls that are NOPs by default; runtime systems instruct the loader to
replace them with runtime-specific versions (section 3.4.2).  This
module is that replacement table: the engine's region events route
through whatever implementation is currently installed, so a program
runs unperturbed when no runtime cares (the compatible-by-default
property) and pays only a call when one does.
"""


def _nop(*_args, **_kwargs):
    return 0


class CallbackTable:
    """Replaceable begin/end callbacks for atomic and asm regions."""

    NAMES = ("atomic_begin", "atomic_end", "asm_begin", "asm_end")

    def __init__(self):
        self._impl = {name: _nop for name in self.NAMES}
        self.installed_by = None

    def install(self, owner, **implementations):
        """Install runtime-specific callback implementations.

        Unspecified callbacks stay NOPs.  ``owner`` is recorded for
        diagnostics.
        """
        for name, fn in implementations.items():
            if name not in self._impl:
                raise KeyError(f"unknown consistency callback {name!r}")
            self._impl[name] = fn
        self.installed_by = owner

    def reset(self):
        self._impl = {name: _nop for name in self.NAMES}
        self.installed_by = None

    def fire(self, name, *args):
        """Invoke a callback; returns its extra-cycle cost."""
        return self._impl[name](*args) or 0
