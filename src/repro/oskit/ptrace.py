"""Simulated ptrace: the monitor process's lever on the application.

TMI runs the application under a monitoring process PM.  When the
detector signals that repair is necessary, PM attaches to every
application thread, stops it, saves its context, points it at a
trampoline that enables page protection and calls ``fork()``, then
restores the context in the new process and detaches (paper section
3.2, Figure 5).  The paper measures the whole conversion at under 200
microseconds per application; we charge the same cost structure.
"""

from dataclasses import dataclass, field

from repro.errors import PtraceError


@dataclass
class ConversionRecord:
    """Timing of one thread->process conversion batch."""

    stop_cycle: int
    thread_count: int
    total_cycles: int = 0
    per_thread_cycles: dict = field(default_factory=dict)
    #: Threads whose fork() failed past its retry budget this batch
    #: (only ever nonempty under an armed fault plan).
    failed_tids: list = field(default_factory=list)

    @property
    def complete(self):
        """Whether every thread in the batch was converted."""
        return not self.failed_tids

    def t2p_microseconds(self, costs):
        """Wall time of the conversion in microseconds (Table 3, T2P)."""
        return costs.seconds(self.total_cycles) * 1e6


class PtraceMonitor:
    """The monitoring process PM."""

    def __init__(self, engine):
        self._engine = engine
        self._costs = engine.costs
        self.conversions = []

    # ------------------------------------------------------------------
    def stop_all_and(self, action):
        """Bring every application thread to a stop at its next op
        boundary, run ``action(engine, stop_time)``, resume.

        This is PM attaching with ptrace; each thread is charged the
        attach/detach cost as a wake-up penalty.
        """
        def callback(engine, stop_time):
            for thread in engine.threads.values():
                if thread.state != "done":
                    thread.pending_penalty += (self._costs.ptrace_attach
                                               + self._costs.ptrace_detach)
            action(engine, stop_time)

        self._engine.request_stop_world(callback)

    def convert_all_threads(self, engine, stop_time, faults=None,
                            fork_retries=0, only_tids=None):
        """Convert every live thread into its own process.

        Returns the :class:`ConversionRecord`; the per-thread fork,
        register save/restore, and trampoline costs are charged as
        wake-up penalties, and the batch is timed for Table 3.

        With an armed ``faults`` injector, each thread's fork() may fail
        (``ptrace.fork_fail``); it is retried up to ``fork_retries``
        times, every attempt charging the fork cost, and a thread whose
        budget runs out lands on the record's ``failed_tids`` still
        unconverted.  ``only_tids`` restricts the batch (the repair
        manager's retry episodes re-attempt exactly the failed threads).
        """
        live = [t for t in engine.threads.values()
                if t.state != "done"
                and (only_tids is None or t.tid in only_tids)]
        if not live:
            raise PtraceError("no threads to convert")
        record = ConversionRecord(stop_cycle=stop_time,
                                  thread_count=len(live))
        per_thread = (self._costs.ptrace_regs * 2   # save + restore
                      + self._costs.fork
                      + self._costs.trampoline)
        for thread in live:
            cost = per_thread
            converted = True
            if faults is not None:
                for attempt in range(fork_retries + 1):
                    if not faults.fire("ptrace.fork_fail",
                                       cycle=stop_time, tid=thread.tid,
                                       attempt=attempt):
                        break
                    cost += self._costs.fork     # the failed attempt
                else:
                    converted = False
            if converted:
                engine.convert_thread_to_process(thread)
            else:
                record.failed_tids.append(thread.tid)
            thread.pending_penalty += cost
            record.per_thread_cycles[thread.tid] = cost
        # PM performs conversions serially but they overlap with the
        # per-thread stop window; the wall cost is one conversion plus
        # the attach round.
        record.total_cycles = per_thread + self._costs.ptrace_attach
        self.conversions.append(record)
        return record
