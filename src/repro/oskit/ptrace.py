"""Simulated ptrace: the monitor process's lever on the application.

TMI runs the application under a monitoring process PM.  When the
detector signals that repair is necessary, PM attaches to every
application thread, stops it, saves its context, points it at a
trampoline that enables page protection and calls ``fork()``, then
restores the context in the new process and detaches (paper section
3.2, Figure 5).  The paper measures the whole conversion at under 200
microseconds per application; we charge the same cost structure.
"""

from dataclasses import dataclass, field

from repro.errors import PtraceError


@dataclass
class ConversionRecord:
    """Timing of one thread->process conversion batch."""

    stop_cycle: int
    thread_count: int
    total_cycles: int = 0
    per_thread_cycles: dict = field(default_factory=dict)

    def t2p_microseconds(self, costs):
        """Wall time of the conversion in microseconds (Table 3, T2P)."""
        return costs.seconds(self.total_cycles) * 1e6


class PtraceMonitor:
    """The monitoring process PM."""

    def __init__(self, engine):
        self._engine = engine
        self._costs = engine.costs
        self.conversions = []

    # ------------------------------------------------------------------
    def stop_all_and(self, action):
        """Bring every application thread to a stop at its next op
        boundary, run ``action(engine, stop_time)``, resume.

        This is PM attaching with ptrace; each thread is charged the
        attach/detach cost as a wake-up penalty.
        """
        def callback(engine, stop_time):
            for thread in engine.threads.values():
                if thread.state != "done":
                    thread.pending_penalty += (self._costs.ptrace_attach
                                               + self._costs.ptrace_detach)
            action(engine, stop_time)

        self._engine.request_stop_world(callback)

    def convert_all_threads(self, engine, stop_time):
        """Convert every live thread into its own process.

        Returns the :class:`ConversionRecord`; the per-thread fork,
        register save/restore, and trampoline costs are charged as
        wake-up penalties, and the batch is timed for Table 3.
        """
        live = [t for t in engine.threads.values() if t.state != "done"]
        if not live:
            raise PtraceError("no threads to convert")
        record = ConversionRecord(stop_cycle=stop_time,
                                  thread_count=len(live))
        per_thread = (self._costs.ptrace_regs * 2   # save + restore
                      + self._costs.fork
                      + self._costs.trampoline)
        for thread in live:
            engine.convert_thread_to_process(thread)
            thread.pending_penalty += per_thread
            record.per_thread_cycles[thread.tid] = per_thread
        # PM performs conversions serially but they overlap with the
        # per-thread stop window; the wall cost is one conversion plus
        # the attach round.
        record.total_cycles = per_thread + self._costs.ptrace_attach
        self.conversions.append(record)
        return record
