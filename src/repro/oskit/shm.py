"""Named shared-memory regions (the ``shm_open`` analog).

TMI places all application memory — stacks, globals, and heap — in a
shared, file-backed region at program start, so that after threads
become processes the same physical pages remain reachable, and so that
individual pages can later be remapped process-private for repair
(paper section 3.2, Figure 6).
"""

from repro.errors import InvalidMappingError
from repro.sim.addrspace import Backing


class SharedMemoryNamespace:
    """Registry of named shared regions for one simulated system."""

    def __init__(self, physmem):
        self._physmem = physmem
        self._regions = {}

    def shm_open(self, name, nbytes):
        """Create (or reopen) a named shared region."""
        region = self._regions.get(name)
        if region is not None:
            if region.nbytes != nbytes:
                raise InvalidMappingError(
                    f"shm {name!r} reopened with different size")
            return region
        region = Backing(self._physmem, nbytes, name=name,
                         file_backed=True)
        self._regions[name] = region
        return region

    def shm_unlink(self, name):
        self._regions.pop(name, None)

    def names(self):
        return sorted(self._regions)
