"""Named shared-memory regions (the ``shm_open`` analog).

TMI places all application memory — stacks, globals, and heap — in a
shared, file-backed region at program start, so that after threads
become processes the same physical pages remain reachable, and so that
individual pages can later be remapped process-private for repair
(paper section 3.2, Figure 6).

Error paths raise :class:`~repro.errors.ShmError` subclasses with the
offending name attached; an armed :class:`~repro.faults.FaultInjector`
can additionally make ``shm_open`` fail (``shm.exhausted``), which the
TMI runtime survives by retrying and, persistently, by falling back to
private memory with repair disabled (see ``docs/ROBUSTNESS.md``).
"""

from repro.errors import ShmExhaustedError, ShmNameError, \
    ShmSizeMismatchError
from repro.sim.addrspace import Backing


class SharedMemoryNamespace:
    """Registry of named shared regions for one simulated system.

    ``capacity`` bounds the number of live regions (the ``ENOSPC``
    analog); ``faults`` is an optional armed injector consulted at
    every create.
    """

    def __init__(self, physmem, capacity=64, faults=None):
        self._physmem = physmem
        self._regions = {}
        self.capacity = capacity
        self.faults = faults

    def shm_open(self, name, nbytes):
        """Create (or reopen) a named shared region.

        Reopening with the creation size returns the existing region;
        any other size raises :class:`ShmSizeMismatchError`.  Creation
        raises :class:`ShmExhaustedError` when the namespace is full or
        when an armed fault plan injects ``shm.exhausted``.
        """
        region = self._regions.get(name)
        if region is not None:
            if region.nbytes != nbytes:
                raise ShmSizeMismatchError(name, region.nbytes, nbytes)
            return region
        if len(self._regions) >= self.capacity:
            raise ShmExhaustedError(
                name, f"capacity {self.capacity} reached")
        if self.faults is not None and \
                self.faults.fire("shm.exhausted", name=name):
            raise ShmExhaustedError(name, "injected exhaustion")
        region = Backing(self._physmem, nbytes, name=name,
                         file_backed=True)
        self._regions[name] = region
        return region

    def shm_unlink(self, name):
        """Remove a named region; unknown names raise
        :class:`ShmNameError` (the ``ENOENT`` analog) instead of
        passing silently."""
        if name not in self._regions:
            raise ShmNameError(name, self.names())
        del self._regions[name]

    def names(self):
        """Sorted live region names."""
        return sorted(self._regions)
