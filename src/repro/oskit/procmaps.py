"""The ``/proc/pid/maps`` analog.

TMI's detection thread reads the address map at start-up to filter
samples: repair is restricted to the application's heap and globals;
system-library and stack addresses are discarded (paper section 3.1).
"""

import bisect
from dataclasses import dataclass

from repro.engine import layout


@dataclass(frozen=True)
class MapEntry:
    start: int
    end: int
    name: str
    kind: str          # 'heap' | 'globals' | 'stack' | 'lib' | 'internal'


class AddressMap:
    """Snapshot of a process's mappings, queryable by address."""

    def __init__(self, entries):
        self._entries = sorted(entries, key=lambda e: e.start)
        self._starts = [e.start for e in self._entries]

    @classmethod
    def from_aspace(cls, aspace):
        entries = [
            MapEntry(m.start, m.end, m.name, layout.region_kind(m.name))
            for m in aspace.mappings()
        ]
        return cls(entries)

    def classify(self, va):
        """Region kind containing ``va``, or None if unmapped."""
        index = bisect.bisect_right(self._starts, va) - 1
        if index < 0:
            return None
        entry = self._entries[index]
        return entry.kind if va < entry.end else None

    def repair_eligible(self, va):
        """True for heap and globals addresses (the detector's filter)."""
        return self.classify(va) in ("heap", "globals")

    def entries(self):
        return list(self._entries)
