"""OS services kit: shm, /proc maps, perf/PEBS sampling, ptrace,
loader callback table."""

from repro.oskit.loader import CallbackTable
from repro.oskit.perf import PebsRecord, PerfSession
from repro.oskit.procmaps import AddressMap, MapEntry
from repro.oskit.ptrace import ConversionRecord, PtraceMonitor
from repro.oskit.shm import SharedMemoryNamespace

__all__ = [
    "CallbackTable", "PebsRecord", "PerfSession", "AddressMap",
    "MapEntry", "ConversionRecord", "PtraceMonitor",
    "SharedMemoryNamespace",
]
