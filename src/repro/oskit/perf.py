"""Simulated Linux perf / Intel PEBS HITM sampling.

Mirrors the behaviour TMI depends on (paper sections 2.1 and 3.1):

- one event buffer per application thread, created at ``pthread_create``
  interposition time;
- a *period* ``n``: roughly every n-th HITM produces a PEBS record, so
  multiple events to one address can collapse into one record and the
  detector must scale counts by the period (Figure 4);
- documented imprecision: the PC is reliable, the data address less so
  (occasional skid), and store HITMs produce records at a *lower* rate
  than load HITMs even though the event is nominally a load event;
- a PEBS record does **not** say whether the access was a load or a
  store — the detector recovers that by disassembling the PC;
- record and buffer-overflow interrupt costs are charged to the
  application thread that triggered them.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PebsRecord:
    """What userspace sees for one sampled HITM.

    Deliberately excludes simulator ground truth (physical address,
    remote core, load/store flag): the detector must work from the same
    information the real system has.
    """

    cycle: int
    tid: int
    pc: int
    va: int


class _ThreadBuffer:
    """Per-thread PEBS accumulation state."""

    __slots__ = ("tid", "period_counter", "store_counter", "records",
                 "skid_counter")

    def __init__(self, tid):
        self.tid = tid
        self.period_counter = 0
        self.store_counter = 0
        self.skid_counter = 0
        self.records = []


class PerfSession:
    """HITM sampling for one monitored application."""

    #: Every Nth record suffers data-address skid (paper: the PC in a
    #: PEBS record is more accurate than the data address).
    ADDR_SKID_EVERY = 23
    ADDR_SKID_BYTES = 8

    #: Default bound on undrained records queued for the detector.
    #: Generous: fault-free runs never approach it, so bounding the
    #: queue does not perturb the cycle-exactness goldens.
    QUEUE_LIMIT = 65_536

    def __init__(self, costs, period=100, faults=None, queue_limit=None):
        self.costs = costs
        self.period = max(1, period)
        self.faults = faults       # armed FaultInjector or None
        self.queue_limit = (self.QUEUE_LIMIT if queue_limit is None
                            else queue_limit)
        self._buffers = {}
        self._queue = []           # drained, awaiting the detector
        self.events_seen = 0       # all HITM events while attached
        self.events_eligible = 0   # after store subsampling
        self.records_made = 0
        self.records_dropped = 0   # lost to overflow or injection
        self.interrupts = 0
        self.overflows = 0         # whole-buffer losses

    # ------------------------------------------------------------------
    def attach_thread(self, tid):
        """Create the per-thread event buffer (pthread_create hook)."""
        if tid not in self._buffers:
            self._buffers[tid] = _ThreadBuffer(tid)

    def on_hitm(self, event):
        """Machine HITM listener.  Returns cycles charged to the
        application thread (0 when the event is not recorded)."""
        buffer = self._buffers.get(event.tid)
        if buffer is None:
            return 0
        self.events_seen += 1
        if event.is_store:
            buffer.store_counter += 1
            if buffer.store_counter % self.costs.pebs_store_subsample:
                return 0
        self.events_eligible += 1
        buffer.period_counter += 1
        if buffer.period_counter < self.period:
            return 0
        buffer.period_counter = 0
        va = event.va
        buffer.skid_counter += 1
        if buffer.skid_counter % self.ADDR_SKID_EVERY == 0:
            va += self.ADDR_SKID_BYTES
        cost = self.costs.pebs_record
        if self.faults is not None and self.faults.fire(
                "perf.record_drop", cycle=event.cycle, tid=event.tid):
            # the hardware wrote the record but it was overwritten
            # before userspace read it: the cost stands, the data is lost
            self.records_dropped += 1
            return cost
        buffer.records.append(PebsRecord(
            cycle=event.cycle, tid=event.tid, pc=event.pc, va=va))
        self.records_made += 1
        if len(buffer.records) >= self.costs.pebs_buffer_records:
            self.interrupts += 1
            cost += self.costs.pebs_interrupt
            if self.faults is not None and self.faults.fire(
                    "perf.buffer_overflow", cycle=event.cycle,
                    tid=event.tid, lost=len(buffer.records)):
                # interrupt handling stalled; the ring wrapped and the
                # whole buffer was overwritten before it was copied out
                self.overflows += 1
                self.records_dropped += len(buffer.records)
            else:
                self._enqueue(buffer.records)
            buffer.records = []
        return cost

    def _enqueue(self, records):
        """Queue flushed records for the detector, bounded."""
        room = self.queue_limit - len(self._queue)
        if room >= len(records):
            self._queue.extend(records)
            return
        if room > 0:
            self._queue.extend(records[:room])
        self.records_dropped += len(records) - max(room, 0)

    def drain(self):
        """All pending records (detection thread consumption)."""
        for buffer in self._buffers.values():
            if buffer.records:
                self._enqueue(buffer.records)
                buffer.records = []
        records, self._queue = self._queue, []
        return records

    # ------------------------------------------------------------------
    def estimated_events(self, records_count=None):
        """Scale a record count by the period: a period of n producing
        r records is assumed to correspond to n*r actual events
        (paper section 3.1)."""
        if records_count is None:
            records_count = self.records_made
        return records_count * self.period

    def buffer_memory_bytes(self):
        """Host memory for perf event buffers (Figure 8 accounting)."""
        return len(self._buffers) * 16 * 1024 * 1024
