"""Plain pthreads execution: the paper's normalization baseline.

One process, one shared address space, anonymous memory, and the
Lockless Allocator (the paper's baseline allocator; a glibc-style
configuration is available for the allocator ablation).
"""

from repro.alloc import LocklessAllocator, RegionBump
from repro.engine import layout
from repro.engine.hooks import RuntimeHooks
from repro.sim.addrspace import Backing
from repro.sim.costs import PAGE_2M, PAGE_4K


class PthreadsRuntime(RuntimeHooks):
    """No interposition: the program runs natively.

    Anonymous heap/globals memory is mapped with 2 MB pages by default,
    modelling Linux's transparent huge pages on the paper's Ubuntu
    systems; pass ``page_size=PAGE_4K`` to disable THP.
    """

    name = "pthreads"

    def __init__(self, allocator_kind="lockless", page_size=PAGE_2M):
        self.allocator_kind = allocator_kind
        self.page_size = page_size

    # ------------------------------------------------------------------
    def setup(self, engine):
        from repro.sim.addrspace import AddressSpace

        physmem = engine.machine.physmem
        costs = engine.costs
        aspace = AddressSpace(physmem, costs, name="app")
        heap_bytes = engine.program.heap_bytes

        globals_backing = Backing(physmem, layout.GLOBALS_SIZE, "globals")
        aspace.mmap(layout.GLOBALS_BASE, layout.GLOBALS_SIZE,
                    globals_backing, page_size=self.page_size,
                    name="globals")
        heap_backing = Backing(physmem, heap_bytes, "heap")
        aspace.mmap(layout.HEAP_BASE, heap_bytes, heap_backing,
                    page_size=self.page_size, name="heap")
        libc_backing = Backing(physmem, layout.LIBC_SIZE, "libc")
        aspace.mmap(layout.LIBC_BASE, layout.LIBC_SIZE, libc_backing,
                    name="libc")

        engine.root_aspace = aspace
        heap_region = RegionBump(layout.HEAP_BASE, heap_bytes, "heap")
        engine.allocator = LocklessAllocator(
            heap_region, costs,
            name=self.allocator_kind,
            global_arena=self.allocator_kind == "glibc",
        )
        self._stack_backings = {}

    def on_thread_created(self, engine, thread):
        self._map_stack(engine, thread)

    def _map_stack(self, engine, thread):
        tid = thread.tid
        if tid in self._stack_backings:
            return
        backing = Backing(engine.machine.physmem, layout.STACK_SIZE,
                          f"stack:{tid}")
        self._stack_backings[tid] = backing
        engine.root_aspace.mmap(layout.stack_base(tid), layout.STACK_SIZE,
                                backing, name=f"stack:{tid}")

    # ------------------------------------------------------------------
    def report(self, engine):
        return {"allocator": self.allocator_kind}
