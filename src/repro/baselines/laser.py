"""LASER (Luo et al., HPCA'16) reimplemented on our substrate.

LASER detects false sharing with PEBS HITM counters like TMI, but
repairs it with a *software store buffer* over the offending code
regions: binary instrumentation buffers stores at the hot instructions
and drains them in order, preserving TSO semantics for the whole
program.  Draining at every synchronization boundary (and on buffer
pressure) keeps the batching wins small — the paper measures LASER at
~24% of the manual speedup, with no repair at all on workloads whose
synchronization is too frequent for its TSO store buffer (Figure 9).
"""

from repro.baselines.pthreads import PthreadsRuntime
from repro.core.config import TmiConfig
from repro.core.detector import FalseSharingDetector
from repro.isa.disasm import Disassembler
from repro.isa.ops import (AtomicLoad, AtomicRMW, AtomicStore, Fence,
                           Load, Store)
from repro.oskit.perf import PerfSession
from repro.oskit.procmaps import AddressMap

#: Store-buffer capacity (entries) before a forced drain.
BUFFER_CAPACITY = 42

#: Instrumentation costs (cycles per access at instrumented sites).
STORE_INSTR_COST = 170
LOAD_INSTR_COST = 110
FORWARD_COST = 45
DRAIN_PER_STORE = 60


class LaserRuntime(PthreadsRuntime):
    """perf-based detection + TSO software store-buffer repair."""

    name = "laser"

    def __init__(self, config=None):
        super().__init__()
        self.config = config or TmiConfig()
        self.tick_cycles = self.config.detect_interval_cycles
        self.perf = None
        self.detector = None
        self.instrumented_pcs = set()
        self.repair_interval = 0
        self._buffers = {}            # tid -> {addr: (value, width, pc)}
        self._intervals = 0
        self.drains = 0

    # ------------------------------------------------------------------
    def setup(self, engine):
        super().setup(engine)
        self.perf = PerfSession(engine.costs, period=self.config.period)
        engine.machine.add_hitm_listener(self.perf.on_hitm)
        self.detector = FalseSharingDetector(
            Disassembler(engine.program.binary),
            AddressMap.from_aspace(engine.root_aspace),
            engine.root_aspace, self.config)

    def on_thread_created(self, engine, thread):
        super().on_thread_created(engine, thread)
        self.perf.attach_thread(thread.tid)

    # ------------------------------------------------------------------
    # detection (same machinery as TMI)
    # ------------------------------------------------------------------
    def on_tick(self, engine, now):
        self._intervals += 1
        records = self.perf.drain()
        self.detector.address_map = AddressMap.from_aspace(
            engine.root_aspace)
        self.detector.add_records(records)
        report = self.detector.analyze(self._intervals, self.config.period)
        engine.machine.advance(engine.service_core,
                               self.detector.analysis_cost(engine.costs))
        if not self.config.enable_repair:
            return
        # (re)instrument every PC ever sampled on a targeted line — the
        # binary rewriter widens its patch set as profiles accumulate
        for line_va in self.detector.targeted_pages:
            stats = self.detector.lines.get(line_va)
            if stats is not None:
                self.instrumented_pcs.update(stats.pcs)
        if report.targets and not self.repair_interval:
            self.repair_interval = self._intervals

    # ------------------------------------------------------------------
    # repair: software store buffer at instrumented sites
    # ------------------------------------------------------------------
    def exec_access_override(self, engine, thread, op):
        buffer = self._buffers.get(thread.tid)
        if isinstance(op, Store):
            if op.site.pc not in self.instrumented_pcs:
                return None
            if buffer is None:
                buffer = {}
                self._buffers[thread.tid] = buffer
            buffer[(op.addr, op.width)] = (op.value, op.site.pc)
            thread.stores += 1
            cost = STORE_INSTR_COST
            if len(buffer) >= BUFFER_CAPACITY:
                cost += self._drain(engine, thread)
            return cost, None
        if isinstance(op, Load):
            if buffer:
                entry = buffer.get((op.addr, op.width))
                if entry is not None:
                    thread.loads += 1
                    return FORWARD_COST, entry[0]
                if any(a == op.addr for a, _w in buffer):
                    # width-mismatched aliasing: drain for correctness,
                    # then let the normal load path run
                    drain_cost = self._drain(engine, thread)
                    engine.machine.advance(thread.core, drain_cost)
            if op.site.pc in self.instrumented_pcs:
                # instrumented load: pays the lookup even on miss
                translation = self.translate(engine, thread, op, op.addr,
                                             op.width, False)
                traffic, value = engine.machine.mem_access(
                    thread.core, thread.tid, op.site.pc, op.addr,
                    translation.pa, op.width, False)
                thread.loads += 1
                return (LOAD_INSTR_COST + translation.cost + traffic,
                        value)
            return None
        if isinstance(op, (AtomicRMW, AtomicLoad, AtomicStore, Fence)):
            # TSO: atomics and fences order the store buffer
            if buffer:
                drain_cost = self._drain(engine, thread)
                if drain_cost:
                    engine.machine.advance(thread.core, drain_cost)
            return None
        return None

    def _drain(self, engine, thread, reason="pressure"):
        """Apply buffered stores to memory in order (one coherence
        transaction per distinct address)."""
        buffer = self._buffers.get(thread.tid)
        if not buffer:
            return 0
        cost = 0
        for (addr, width), (value, pc) in buffer.items():
            translation = self.translate(engine, thread, None, addr,
                                         width, True)
            traffic, _ = engine.machine.mem_access(
                thread.core, thread.tid, pc, addr, translation.pa,
                width, True, value)
            cost += traffic + DRAIN_PER_STORE + translation.cost
        buffer.clear()
        self.drains += 1
        return cost

    # ------------------------------------------------------------------
    # TSO: synchronization drains the buffer
    # ------------------------------------------------------------------
    def on_sync_acquired(self, engine, thread, obj, kind):
        return self._drain(engine, thread, kind)

    def on_sync_release(self, engine, thread, obj, kind):
        return self._drain(engine, thread, kind)

    def on_thread_exit(self, engine, thread):
        cost = self._drain(engine, thread, "exit")
        if cost:
            engine.machine.advance(thread.core, cost)

    # ------------------------------------------------------------------
    def memory_report(self, engine):
        return {
            "perf_buffers": self.perf.buffer_memory_bytes(),
            "detector": self.detector.memory_bytes(),
        }

    def report(self, engine):
        return {
            "repaired": bool(self.instrumented_pcs),
            "repair_interval": self.repair_interval,
            "instrumented_pcs": len(self.instrumented_pcs),
            "drains": self.drains,
            "perf_records": self.perf.records_made,
        }
