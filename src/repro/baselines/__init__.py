"""Comparison systems: plain pthreads, Sheriff, and LASER."""

from repro.baselines.laser import LaserRuntime
from repro.baselines.pthreads import PthreadsRuntime
from repro.baselines.sheriff import SheriffRuntime

__all__ = ["LaserRuntime", "PthreadsRuntime", "SheriffRuntime"]
