"""Sheriff (Liu & Berger, OOPSLA'11) reimplemented on our substrate.

Sheriff wraps *every* thread in a process from startup and page-protects
all of memory, committing PTSB diffs at every synchronization operation
(paper section 2.2, Figures 1-2).  Two consequences the paper leans on:

- large overheads for programs that synchronize frequently, and
  incompatibility with native-input heap sizes — Sheriff works with only
  11 of the paper's 35 workloads;
- no consistency handling: C/C++ atomics and inline assembly go through
  the PTSB, so canneal produces incorrect results and cholesky hangs
  (sections 2.2 and 4.5).

``sheriff-detect`` and ``sheriff-protect`` share the mechanism; detect
additionally pays a per-commit diff-analysis cost for its false sharing
reports.
"""

from repro.alloc import LocklessAllocator, RegionBump
from repro.core.ptsb import PageTwinningStoreBuffer
from repro.engine import layout
from repro.engine.hooks import RuntimeHooks
from repro.errors import IncompatibleWorkloadError
from repro.oskit.shm import SharedMemoryNamespace
from repro.sim.addrspace import AddressSpace, Backing, PRIVATE
from repro.sim.costs import PAGE_4K

#: Largest native-input footprint Sheriff's whole-heap protection copes
#: with (beyond this its twin/commit machinery exhausts memory).
MAX_FOOTPRINT = 128 * 1024 * 1024

MAX_THREADS = 64


class SheriffRuntime(RuntimeHooks):
    """Threads-as-processes with whole-memory page twinning."""

    def __init__(self, mode="protect"):
        if mode not in ("detect", "protect"):
            raise ValueError(f"unknown sheriff mode {mode!r}")
        self.mode = mode
        self.name = f"sheriff-{mode}"
        self.commits = 0
        self.commit_cycles = 0

    # ------------------------------------------------------------------
    def check_workload(self, program):
        if program.features.footprint_bytes > MAX_FOOTPRINT:
            raise IncompatibleWorkloadError(
                self.name, program.name,
                "native input exceeds Sheriff's protected-heap capacity")

    # ------------------------------------------------------------------
    def setup(self, engine):
        machine = engine.machine
        costs = engine.costs
        heap_bytes = engine.program.heap_bytes

        self.shm = SharedMemoryNamespace(machine.physmem)
        stacks_bytes = MAX_THREADS * layout.STACK_SIZE
        app_bytes = layout.GLOBALS_SIZE + heap_bytes + stacks_bytes
        self.app_backing = self.shm.shm_open("sheriff-app", app_bytes)
        self.internal_backing = self.shm.shm_open(
            "sheriff-internal", layout.INTERNAL_SIZE)

        aspace = AddressSpace(machine.physmem, costs, name="app")
        # every application mapping is private/COW from the start
        aspace.mmap(layout.GLOBALS_BASE, layout.GLOBALS_SIZE,
                    self.app_backing, backing_offset=0, mode=PRIVATE,
                    page_size=PAGE_4K, name="globals")
        aspace.mmap(layout.HEAP_BASE, heap_bytes, self.app_backing,
                    backing_offset=layout.GLOBALS_SIZE, mode=PRIVATE,
                    page_size=PAGE_4K, name="heap")
        aspace.mmap(layout.INTERNAL_BASE, layout.INTERNAL_SIZE,
                    self.internal_backing, name="sheriff-internal")
        libc_backing = Backing(machine.physmem, layout.LIBC_SIZE, "libc")
        aspace.mmap(layout.LIBC_BASE, layout.LIBC_SIZE, libc_backing,
                    name="libc")
        engine.root_aspace = aspace

        heap_region = RegionBump(layout.HEAP_BASE, heap_bytes, "heap")
        engine.allocator = LocklessAllocator(heap_region, costs,
                                             name="sheriff")
        self._internal_bump = RegionBump(
            layout.INTERNAL_BASE, layout.INTERNAL_SIZE, "sheriff-internal")
        self._stack_offset_base = layout.GLOBALS_SIZE + heap_bytes
        self._stacks_mapped = set()

    # ------------------------------------------------------------------
    # threads become processes at creation
    # ------------------------------------------------------------------
    def on_thread_created(self, engine, thread):
        tid = thread.tid
        if tid not in self._stacks_mapped and tid < MAX_THREADS:
            self._stacks_mapped.add(tid)
            engine.root_aspace.mmap(
                layout.stack_base(tid), layout.STACK_SIZE,
                self.app_backing,
                backing_offset=self._stack_offset_base
                + tid * layout.STACK_SIZE,
                mode=PRIVATE, name=f"stack:{tid}")
        # pthread_create is a synchronization point: the creator's PTSB
        # commits so the child forks a clean view of shared memory
        parent_ptsb = thread.process.ptsb
        if parent_ptsb is not None:
            thread.pending_penalty += parent_ptsb.commit(thread.core,
                                                         "thread_create")
        process = engine.convert_thread_to_process(thread)
        PageTwinningStoreBuffer(process, engine.machine, engine.costs,
                                huge_commit_optimization=False)
        thread.pending_penalty += engine.costs.fork

    def on_thread_exit(self, engine, thread):
        self._commit(engine, thread, "exit")

    # ------------------------------------------------------------------
    # synchronization: pshared redirection + commit at every operation
    # ------------------------------------------------------------------
    def on_sync_object_init(self, engine, thread, obj):
        shadow = self._internal_bump.take(64, align=64)
        obj.shadow_addr = shadow
        return engine.costs.alloc_fast

    def sync_cost_extra(self, engine, thread, obj):
        return engine.costs.pshared_indirect

    def on_sync_acquired(self, engine, thread, obj, kind):
        return self._commit(engine, thread, kind)

    def on_sync_release(self, engine, thread, obj, kind):
        return self._commit(engine, thread, kind)

    def _commit(self, engine, thread, reason):
        ptsb = thread.process.ptsb
        if ptsb is None:
            return 0
        cost = ptsb.commit(thread.core, reason)
        if cost:
            self.commits += 1
            self.commit_cycles += cost
            if self.mode == "detect":
                # detection work: scan the diff for cross-process
                # conflicts (Sheriff's interleaved-write analysis)
                cost += int(cost * 0.15)
        return cost

    # NOTE: no translate() override and no region handling — atomics,
    # assembly, and volatile accesses all go through the PTSB.  This is
    # precisely Sheriff's consistency flaw.

    # ------------------------------------------------------------------
    def memory_report(self, engine):
        twin_peak = 0
        private = 0
        for process in engine.processes.values():
            if process.ptsb is not None:
                twin_peak += process.ptsb.twin_bytes_peak
            private += process.aspace.private_bytes
        return {"sheriff_twins": twin_peak, "sheriff_private": private}

    def report(self, engine):
        return {"mode": self.mode, "commits": self.commits,
                "commit_cycles": self.commit_cycles}
