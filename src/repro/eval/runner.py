"""Run (workload, system) pairs and collect outcomes.

Failures are first-class results: Sheriff refusing a native input,
hanging on cholesky, or corrupting canneal are *findings* the paper
reports, not harness errors.
"""

from dataclasses import dataclass

from repro.engine import Engine
from repro.errors import (DeadlockError, HangError,
                          IncompatibleWorkloadError)
from repro.eval.systems import make_runtime, workload_variant
from repro.workloads import get as get_workload

OK = "ok"
INCOMPATIBLE = "incompatible"
HANG = "hang"
INVALID = "invalid"


@dataclass
class RunOutcome:
    """One (workload, system) execution."""

    workload: str
    system: str
    status: str
    result: object = None          # RunResult when status != incompatible
    detail: str = ""
    #: RaceReport when the run was sanitized (``sanitize=True``).
    analysis: object = None

    @property
    def ok(self):
        return self.status == OK

    @property
    def cycles(self):
        return self.result.cycles if self.result else None


def run_workload(name, system, scale=1.0, config=None, variant=None,
                 nthreads=None, sanitize=False):
    """Run one workload under one system; never raises for the failure
    modes the paper studies.

    ``sanitize=True`` attaches the vector-clock race sanitizer; its
    :class:`~repro.analysis.race.RaceReport` lands on the outcome's
    ``analysis`` field (simulation results are unaffected — observer
    callbacks charge no cycles).
    """
    workload = get_workload(name, scale=scale, nthreads=nthreads)
    program = workload.build(variant or workload_variant(system))
    runtime = make_runtime(system, config)
    try:
        engine = Engine(program, runtime)
    except IncompatibleWorkloadError as exc:
        return RunOutcome(name, system, INCOMPATIBLE, detail=exc.reason)
    sanitizer = None
    if sanitize:
        from repro.analysis import RaceSanitizer
        sanitizer = RaceSanitizer()
        engine.attach_observer(sanitizer)
    report = sanitizer.report if sanitizer else None
    try:
        result = engine.run()
    except HangError as exc:
        return RunOutcome(name, system, HANG, detail=str(exc),
                          analysis=report)
    except (DeadlockError, AssertionError) as exc:
        return RunOutcome(name, system, INVALID, detail=str(exc),
                          analysis=report)
    if not result.validated:
        return RunOutcome(name, system, INVALID, result=result,
                          detail=result.error, analysis=report)
    return RunOutcome(name, system, OK, result=result, analysis=report)


def run_matrix(workloads, systems, scale=1.0, config=None, jobs=None):
    """{workload: {system: RunOutcome}} over the cross product.

    Cells are independent simulations, so they fan out across worker
    processes (``REPRO_JOBS``/``jobs``; see :mod:`repro.eval.parallel`)
    with results identical to the serial loop.
    """
    from repro.eval.parallel import run_cells
    pairs = [(name, system) for name in workloads for system in systems]
    outcomes = run_cells(
        [dict(name=name, system=system, scale=scale, config=config)
         for name, system in pairs], jobs=jobs)
    grid = {}
    for (name, system), outcome in zip(pairs, outcomes):
        grid.setdefault(name, {})[system] = outcome
    return grid
