"""Run (workload, system) pairs and collect outcomes.

Failures are first-class results: Sheriff refusing a native input,
hanging on cholesky, or corrupting canneal are *findings* the paper
reports, not harness errors.  The same applies to schedule fuzzing:
``schedule=`` runs the cell under a perturbation policy (see
:mod:`repro.schedule`) and a livelocking interleaving comes back as a
``budget`` outcome carrying its decision log, not as a hang of the
harness.
"""

from contextlib import nullcontext
from dataclasses import dataclass

from repro.engine import Engine
from repro.errors import (CycleBudgetError, DeadlockError, HangError,
                          IncompatibleWorkloadError)
from repro.eval.systems import (STATIC_REPAIR_SYSTEMS, make_runtime,
                                workload_variant)
from repro.workloads import get as get_workload

OK = "ok"
INCOMPATIBLE = "incompatible"
HANG = "hang"
INVALID = "invalid"
DEADLOCK = "deadlock"
#: The engine's max_cycles budget ran out (livelocking schedule).
BUDGET = "budget"


@dataclass
class RunOutcome:
    """One (workload, system) execution."""

    workload: str
    system: str
    status: str
    result: object = None          # RunResult when status != incompatible
    detail: str = ""
    #: RaceReport when the run was sanitized (``sanitize=True``).
    analysis: object = None
    #: Schedule decision-log snapshot ({policy, seed, decisions}) when
    #: the run was policy-scheduled (``schedule=``); None otherwise.
    trace: object = None
    #: Workload final-state digest (``collect_state=True``, ok runs).
    final_state: object = None
    #: Tracer events as a plain ``repro-trace/1`` dict (``trace=True``);
    #: feed it to :func:`repro.obs.write_chrome_trace` / ``write_jsonl``.
    trace_data: object = None
    #: MetricsRegistry snapshot dict (``collect_metrics=True``).
    metrics: object = None
    #: Host wall-time attribution dict (``profile=True``).
    profile: object = None
    #: Fault-injection record ({"spec", "counts", "log"}) when the run
    #: executed under an armed fault plan (``faults=``); None otherwise.
    faults: object = None
    #: ``repro-repair-plan/1`` dict when the run executed a statically
    #: rewritten program (``static-repaired`` / ``static-tmi``).
    plan: object = None

    @property
    def ok(self):
        """Whether the run completed with status ``ok``."""
        return self.status == OK

    @property
    def cycles(self):
        """Simulated cycle count, or None when no result exists."""
        return self.result.cycles if self.result else None


def run_workload(name, system, scale=1.0, config=None, variant=None,
                 nthreads=None, sanitize=False, schedule=None,
                 max_cycles=None, collect_state=False, trace=False,
                 collect_metrics=False, profile=False, faults=None,
                 vector=None, sockets=None, placement=None, pages=None):
    """Run one workload under one system; never raises for the failure
    modes the paper studies.

    ``sanitize=True`` attaches the vector-clock race sanitizer; its
    :class:`~repro.analysis.race.RaceReport` lands on the outcome's
    ``analysis`` field (simulation results are unaffected — observer
    callbacks charge no cycles).

    ``schedule`` is a policy spec dict (``{"policy": "random", "seed":
    7}``, see :func:`repro.schedule.make_policy`): the run executes
    under that scheduling policy and the outcome's ``trace`` field
    records the decision log for exact replay.  ``max_cycles`` bounds
    the simulated cycle budget (livelock detection for fuzzed
    schedules).  ``collect_state=True`` computes the workload's
    schedule-independent final-state digest on ok runs.

    Observability (see :mod:`repro.obs`): ``trace=True`` attaches a
    :class:`~repro.obs.Tracer` (``trace="access"`` additionally records
    every data access) and puts its event dict on ``trace_data``;
    ``collect_metrics=True`` snapshots the run's
    :class:`~repro.obs.MetricsRegistry` onto ``metrics``;
    ``profile=True`` attributes host wall time to simulator subsystems
    onto ``profile``.  All three are observer-/wrapper-based and leave
    simulated cycles bit-identical.

    ``faults`` arms deterministic fault injection (see
    :mod:`repro.faults`): a spec dict (``{"seed", "rates", "limits"}``)
    or any object with a ``spec()`` method (a
    :class:`~repro.faults.FaultPlan`).  The injection record lands on
    the outcome's ``faults`` field; the same spec replays the identical
    failure sequence regardless of ``REPRO_JOBS``.

    ``vector`` forwards to :class:`~repro.engine.Engine`: ``False``
    forces the pure-serial interpreter, ``True`` requires the vector
    core, ``None`` (default) auto-enables it when eligible.  Results
    are bit-identical either way — the flag only changes host speed.

    NUMA (see ``docs/HARDWARE.md``): ``sockets`` builds the machine on
    a multi-socket :class:`~repro.sim.topology.Topology`, ``placement``
    names a thread-placement policy from :mod:`repro.mapping`
    (``sharing-aware`` plans from a throwaway trace extraction, like
    the static-repair systems), and ``pages`` picks the page-placement
    policy (``first-touch`` / ``interleave``).  Leaving all three at
    ``None`` runs the historical single-socket machine byte-identical
    to every earlier PR.
    """
    profiler = None
    if profile:
        from repro.obs import Profiler
        profiler = Profiler()

    def phase(stage):
        return profiler.phase(stage) if profiler else nullcontext()

    with phase("build"):
        workload = get_workload(name, scale=scale, nthreads=nthreads)
        build_variant = variant or workload_variant(system)
        program = workload.build(build_variant)
    repair_plan = None
    if system in STATIC_REPAIR_SYSTEMS:
        from repro.analysis.repair import (plan_program, plan_to_dict,
                                           rewrite_program)
        with phase("repair-plan"):
            # extraction consumes generators: plan from a throwaway
            # build, then rewrite the Program destined for the engine
            repair_plan = plan_program(
                workload.build(build_variant), variant=build_variant)
            program, _rewriter = rewrite_program(program, repair_plan)
        repair_plan = plan_to_dict(repair_plan)
    runtime = make_runtime(system, config)
    injector = None
    if faults is not None:
        from repro.faults import FaultInjector
        spec = faults.spec() if hasattr(faults, "spec") else dict(faults)
        injector = FaultInjector(**spec)
        runtime.faults = injector
    policy = None
    if schedule is not None:
        from repro.schedule import make_policy
        policy = make_policy(schedule)
    engine_kwargs = {}
    if max_cycles is not None:
        engine_kwargs["max_cycles"] = max_cycles
    if vector is not None:
        engine_kwargs["vector"] = vector
    if sockets is not None or placement is not None or pages is not None:
        from repro.mapping import affinity_groups, make_placement
        from repro.sim.machine import Machine
        from repro.sim.topology import Topology
        n_cores = program.nthreads + 2
        topology = Topology.fit(n_cores, sockets or 1)
        with phase("mapping"):
            engine_kwargs["machine"] = Machine(
                n_cores=n_cores, topology=topology,
                pages=pages or "first-touch")
            if placement is not None:
                groups = None
                if placement == "sharing-aware":
                    # like the static-repair systems: measure sharing
                    # on a throwaway build, place the real program
                    from repro.analysis.extract import TraceExtractor
                    extract = TraceExtractor(
                        workload.build(build_variant)).run()
                    groups = affinity_groups(extract.lines,
                                             program.nthreads + 2)
                engine_kwargs["placement"] = make_placement(
                    placement, topology, n_cores, groups=groups)
    try:
        with phase("engine-init"):
            engine = Engine(program, runtime, policy=policy,
                            **engine_kwargs)
    except IncompatibleWorkloadError as exc:
        return RunOutcome(name, system, INCOMPATIBLE, detail=exc.reason)
    sanitizer = None
    if sanitize:
        from repro.analysis import RaceSanitizer
        sanitizer = RaceSanitizer()
        engine.attach_observer(sanitizer)
    tracer = None
    if trace:
        from repro.obs import Tracer
        tracer = Tracer(access_events=trace == "access")
        engine.attach_observer(tracer)
    if profiler is not None:
        profiler.install(engine)
    report = sanitizer.report if sanitizer else None

    def outcome(status, result=None, detail=""):
        out = RunOutcome(name, system, status, result=result,
                         detail=detail, analysis=report,
                         trace=engine.schedule_trace(),
                         plan=repair_plan)
        if collect_state and status == OK:
            view_fn = getattr(program, "memory_view", None)
            state_engine = view_fn(engine) if view_fn else engine
            out.final_state = workload.final_state(program.env,
                                                   state_engine)
        if tracer is not None:
            out.trace_data = tracer.trace_data()
        if collect_metrics:
            out.metrics = engine.metrics().snapshot()
        if profiler is not None:
            out.profile = profiler.report()
        if injector is not None:
            out.faults = {
                "spec": {"seed": injector.seed,
                         "rates": dict(injector.rates),
                         "limits": dict(injector.limits)},
                "counts": injector.fired_counts(),
                "log": injector.log()}
        return out

    try:
        with phase("run"):
            result = engine.run()
    except CycleBudgetError as exc:
        return outcome(BUDGET, detail=str(exc))
    except HangError as exc:
        return outcome(HANG, detail=str(exc))
    except DeadlockError as exc:
        return outcome(DEADLOCK, detail=str(exc))
    except AssertionError as exc:
        return outcome(INVALID, detail=str(exc))
    if not result.validated:
        return outcome(INVALID, result=result, detail=result.error)
    return outcome(OK, result=result)


def run_matrix(workloads, systems, scale=1.0, config=None, jobs=None):
    """{workload: {system: RunOutcome}} over the cross product.

    Cells are independent simulations, so they fan out across worker
    processes (``REPRO_JOBS``/``jobs``; see :mod:`repro.eval.parallel`)
    with results identical to the serial loop.
    """
    from repro.eval.parallel import run_cells
    pairs = [(name, system) for name in workloads for system in systems]
    outcomes = run_cells(
        [dict(name=name, system=system, scale=scale, config=config)
         for name, system in pairs], jobs=jobs)
    grid = {}
    for (name, system), outcome in zip(pairs, outcomes):
        grid.setdefault(name, {})[system] = outcome
    return grid
