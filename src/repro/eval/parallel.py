"""Parallel execution of independent (workload, system) grid cells.

Every cell of an experiment grid is an isolated simulation: one
:class:`~repro.sim.machine.Machine`, one engine, one runtime, built
from scratch inside ``run_workload``.  Nothing is shared between cells,
so fanning them out across worker *processes* cannot perturb results —
each worker computes exactly the bytes the serial loop would have, and
the parent reassembles them in the caller's order.

Worker count comes from ``REPRO_JOBS`` (default ``os.cpu_count()``;
a malformed value warns and pins serial execution).  ``REPRO_JOBS=1``
— or any pool failure, e.g. a sandbox that forbids fork — falls back
to the serial in-process loop, which is also the configuration to use
when bisecting determinism bugs.

The grid is hardened against worker failure
(:func:`run_cells_recorded`): a cell that blows past its wall-clock
timeout is recorded as ``timeout`` instead of wedging the experiment,
and a :class:`~concurrent.futures.process.BrokenProcessPool` (a worker
segfaulted or was OOM-killed) no longer aborts the grid — the cells
that never finished are re-run serially in the parent and surfaced
with ``retried=True``.
"""

import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass

#: Cell-record statuses (harness-level, distinct from RunOutcome.status:
#: a simulated hang is still a *harness*-ok cell).
CELL_OK = "ok"
CELL_FAILED = "failed"
CELL_TIMEOUT = "timeout"


def job_count(jobs=None):
    """Resolve the worker count: explicit arg > REPRO_JOBS > cpu count.

    A malformed ``REPRO_JOBS`` pins serial execution (``1``) and warns
    — silent degradation to a surprise worker count hid real
    configuration mistakes.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                warnings.warn(
                    f"REPRO_JOBS={env!r} is not an integer; running "
                    "serially (jobs=1)", RuntimeWarning, stacklevel=2)
                jobs = 1
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass
class CellRecord:
    """Harness-level outcome of one grid cell.

    ``status`` is ``ok`` (the worker returned a
    :class:`~repro.eval.runner.RunOutcome` — which may itself report a
    simulated hang or failure), ``failed`` (the worker raised or
    died), or ``timeout`` (the cell exceeded its wall-clock budget).
    ``retried`` marks cells that were re-run serially after a broken
    pool or a worker exception.
    """

    cell: dict
    status: str
    outcome: object = None
    retried: bool = False
    error: str = ""


def _run_cell(kwargs):
    # imported here so worker processes resolve it after fork/spawn
    from repro.eval.runner import run_workload
    if os.environ.get("REPRO_HARNESS_FAULTS"):
        # chaos seam (see repro.faults.harness): may raise a poison
        # failure or hard-exit a pool worker before the workload runs
        from repro.faults.harness import active_plan
        plan = active_plan()
        if plan is not None:
            plan.apply(kwargs)
    return run_workload(**kwargs)


def _run_serial(cell, retried=False):
    """Run one cell in-process, capturing any exception as a record."""
    try:
        outcome = _run_cell(cell)
    except Exception as exc:  # noqa: BLE001 - harness boundary
        return CellRecord(cell=dict(cell), status=CELL_FAILED,
                          retried=retried,
                          error=f"{type(exc).__name__}: {exc}")
    return CellRecord(cell=dict(cell), status=CELL_OK, outcome=outcome,
                      retried=retried)


def run_cells_recorded(cells, jobs=None, timeout=None):
    """Run every cell, never abort the grid; returns
    :class:`CellRecord` objects in input order.

    ``timeout`` (seconds of host wall-clock, pooled execution only)
    bounds each cell from the moment the parent starts waiting on it;
    a cell that exceeds it is recorded as ``timeout`` and is *not*
    retried (it would exceed the budget serially too).  A broken pool
    or a raising worker marks the affected cells for a serial re-run
    in the parent, surfaced with ``retried=True``.
    """
    cells = list(cells)
    jobs = job_count(jobs)
    records = [None] * len(cells)
    if jobs <= 1 or len(cells) <= 1:
        for index, cell in enumerate(cells):
            records[index] = _run_serial(cell)
        return records
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
        futures = [pool.submit(_run_cell, cell) for cell in cells]
    except (OSError, PermissionError):
        # no subprocesses available (restricted environments): degrade
        # to the serial path rather than failing the experiment
        for index, cell in enumerate(cells):
            records[index] = _run_serial(cell)
        return records
    timed_out = False
    try:
        for index, future in enumerate(futures):
            cell = cells[index]
            try:
                outcome = future.result(timeout=timeout)
            except _FutureTimeout:
                future.cancel()
                timed_out = True
                records[index] = CellRecord(
                    cell=dict(cell), status=CELL_TIMEOUT,
                    error=f"exceeded {timeout}s wall-clock budget")
            except BrokenExecutor:
                # the pool is gone (a worker segfaulted / was killed);
                # every unfinished cell stays None and is re-run
                # serially below
                break
            except Exception as exc:  # noqa: BLE001 - worker raised
                records[index] = _run_serial(cell, retried=True)
                if records[index].status == CELL_FAILED:
                    records[index].error = (
                        f"{type(exc).__name__}: {exc}; serial retry: "
                        f"{records[index].error}")
            else:
                records[index] = CellRecord(cell=dict(cell),
                                            status=CELL_OK,
                                            outcome=outcome)
    finally:
        # don't block on a wedged worker: timed-out cells may still be
        # burning CPU inside it
        pool.shutdown(wait=not timed_out, cancel_futures=True)
    for index, cell in enumerate(cells):
        if records[index] is None:
            records[index] = _run_serial(cell, retried=True)
    return records


def run_cells(cells, jobs=None, timeout=None):
    """Run ``run_workload(**cell)`` for every cell; returns outcomes in
    input order.

    ``cells`` is a sequence of keyword dicts for
    :func:`repro.eval.runner.run_workload`.  With ``jobs > 1`` the cells
    execute across a :class:`ProcessPoolExecutor`; the outcomes (and
    every simulated cycle/HITM count inside them) are identical to the
    serial loop's.  A broken pool is recovered by re-running only the
    unfinished cells serially; a cell that fails even serially (or
    times out) raises — callers wanting per-cell failure records use
    :func:`run_cells_recorded`.
    """
    records = run_cells_recorded(cells, jobs=jobs, timeout=timeout)
    for record in records:
        if record.status != CELL_OK:
            raise RuntimeError(
                f"grid cell {record.cell!r} {record.status}: "
                f"{record.error}")
    return [record.outcome for record in records]
