"""Parallel execution of independent (workload, system) grid cells.

Every cell of an experiment grid is an isolated simulation: one
:class:`~repro.sim.machine.Machine`, one engine, one runtime, built
from scratch inside ``run_workload``.  Nothing is shared between cells,
so fanning them out across worker *processes* cannot perturb results —
each worker computes exactly the bytes the serial loop would have, and
the parent reassembles them in the caller's order.

Worker count comes from ``REPRO_JOBS`` (default ``os.cpu_count()``).
``REPRO_JOBS=1`` — or any pool failure, e.g. a sandbox that forbids
fork — falls back to the serial in-process loop, which is also the
configuration to use when bisecting determinism bugs.
"""

import os
from concurrent.futures import ProcessPoolExecutor


def job_count(jobs=None):
    """Resolve the worker count: explicit arg > REPRO_JOBS > cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = 1
        else:
            jobs = os.cpu_count() or 1
    return max(1, jobs)


def _run_cell(kwargs):
    # imported here so worker processes resolve it after fork/spawn
    from repro.eval.runner import run_workload
    return run_workload(**kwargs)


def run_cells(cells, jobs=None):
    """Run ``run_workload(**cell)`` for every cell; returns outcomes in
    input order.

    ``cells`` is a sequence of keyword dicts for
    :func:`repro.eval.runner.run_workload`.  With ``jobs > 1`` the cells
    execute across a :class:`ProcessPoolExecutor`; the outcomes (and
    every simulated cycle/HITM count inside them) are identical to the
    serial loop's.
    """
    cells = list(cells)
    jobs = job_count(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            return list(pool.map(_run_cell, cells))
    except (OSError, PermissionError):
        # no subprocesses available (restricted environments): degrade
        # to the serial path rather than failing the experiment
        return [_run_cell(cell) for cell in cells]
