"""Command-line interface for the evaluation harness.

Regenerate any paper artifact without pytest::

    python -m repro.eval.cli figure9 --scale 1.0
    python -m repro.eval.cli table3
    python -m repro.eval.cli run histogramfs tmi-protect --scale 0.5
    python -m repro.eval.cli run racy-flag pthreads --sanitize
    python -m repro.eval.cli lint histogramfs
    python -m repro.eval.cli lint all --scale 0.05
    python -m repro.eval.cli fuzz --seeds 16 --budget 60
    python -m repro.eval.cli fuzz racy-flag --policy pct --seeds 32
    python -m repro.eval.cli replay results/fuzz/racy-flag-....json
    python -m repro.eval.cli list
"""

import argparse
import os
import sys

from repro.eval import experiments
from repro.eval.runner import run_workload
from repro.eval.systems import SYSTEM_NAMES
from repro.workloads import all_names

#: Experiments exposed on the command line.
EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "figure4": experiments.figure4,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "figure9": experiments.figure9,
    "figure10": experiments.figure10,
    "ablation-ptsb": experiments.ablation_ptsb_everywhere,
    "ablation-alloc": experiments.ablation_allocator,
    "ablation-huge-commit": experiments.ablation_huge_commit,
    "ablation-code-centric": experiments.ablation_code_centric,
    "lint-accuracy": experiments.lint_accuracy,
}

#: Experiments whose signature takes no scale.
_NO_SCALE = {"table2"}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.eval",
        description="Regenerate the TMI paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in EXPERIMENTS:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        if name not in _NO_SCALE:
            cmd.add_argument("--scale", type=float, default=None,
                            help="workload scale (default per experiment)")
        cmd.add_argument("--no-save", action="store_true",
                        help="don't write results/<name>.txt")
        cmd.add_argument("--jobs", type=int, default=None,
                        help="grid worker processes (default: REPRO_JOBS "
                             "env var, then cpu count); results are "
                             "identical at any job count")

    run = sub.add_parser("run", help="run one workload under one system")
    run.add_argument("workload", choices=sorted(all_names()))
    run.add_argument("system", choices=sorted(SYSTEM_NAMES))
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--sanitize", action="store_true",
                     help="attach the vector-clock race sanitizer "
                          "(zero cycle impact); nonzero exit on races")

    lint = sub.add_parser(
        "lint", help="statically lint workload(s); no simulation")
    lint.add_argument("workload", choices=sorted(all_names()) + ["all"])
    lint.add_argument("--scale", type=float, default=0.1)
    lint.add_argument("--variant", default=None,
                      help="force a build variant (default/fixed); "
                           "defaults to each workload's canonical build")

    fuzz = sub.add_parser(
        "fuzz", help="fuzz schedules; no workload = bounded CI smoke "
                     "(positive + negative control)")
    fuzz.add_argument("workload", nargs="?", default=None,
                      choices=sorted(all_names()),
                      help="workload to fuzz (omit for smoke mode)")
    fuzz.add_argument("--system", default="pthreads",
                      choices=sorted(SYSTEM_NAMES))
    fuzz.add_argument("--policy", default="random",
                      help="perturbation policy: default/random/pct/delay")
    fuzz.add_argument("--seeds", type=int, default=16)
    fuzz.add_argument("--scale", type=float, default=0.1)
    fuzz.add_argument("--budget", type=float, default=None,
                      help="wall-clock budget in seconds (smoke default 60)")
    fuzz.add_argument("--max-cycles", type=int, default=None,
                      help="simulated-cycle budget per run (default: "
                           "25x the default schedule)")
    fuzz.add_argument("--variant", default=None)
    fuzz.add_argument("--nthreads", type=int, default=None)
    fuzz.add_argument("--no-sanitize", action="store_true",
                      help="skip the race sanitizer (final-state "
                           "oracle only)")
    fuzz.add_argument("--out-dir", default=None,
                      help="artifact directory (default results/fuzz)")
    fuzz.add_argument("--jobs", type=int, default=None)

    replay = sub.add_parser(
        "replay", help="re-execute a recorded schedule trace artifact")
    replay.add_argument("artifact", help="path to a ScheduleTrace JSON")

    sub.add_parser("list", help="list workloads and systems")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:", ", ".join(all_names()))
        print("systems:  ", ", ".join(SYSTEM_NAMES))
        return 0

    if args.command == "lint":
        from repro.analysis import lint_workload
        names = (sorted(all_names()) if args.workload == "all"
                 else [args.workload])
        failed = 0
        for name in names:
            report = lint_workload(name, scale=args.scale,
                                   variant=args.variant)
            print(report.format())
            if not report.ok:
                failed += 1
        if len(names) > 1:
            print(f"linted {len(names)} workloads, "
                  f"{failed} with errors")
        return 1 if failed else 0

    if args.command == "run":
        outcome = run_workload(args.workload, args.system,
                               scale=args.scale,
                               sanitize=args.sanitize)
        print(f"{args.workload} under {args.system}: {outcome.status}")
        if outcome.result is not None:
            result = outcome.result
            print(f"  runtime : {result.seconds * 1e3:.3f} ms "
                  f"({result.cycles} cycles)")
            print(f"  HITM    : {result.hitm_total} "
                  f"(loads {result.hitm_loads}, "
                  f"stores {result.hitm_stores})")
            print(f"  sync ops: {result.sync_ops}   "
                  f"data ops: {result.data_ops}")
            if result.runtime_report:
                print(f"  report  : {result.runtime_report}")
        if outcome.detail:
            print(f"  detail  : {outcome.detail}")
        if outcome.analysis is not None:
            print(outcome.analysis.format())
            if not outcome.analysis.ok:
                return 1
        return 0 if outcome.ok else 1

    if args.command == "fuzz":
        from repro.schedule import fuzz_workload, smoke_fuzz
        if args.jobs is not None:
            os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.workload is None:
            result = smoke_fuzz(seeds=args.seeds,
                                budget=args.budget or 60.0,
                                jobs=args.jobs, out_dir=args.out_dir)
            print("\n".join(result.summary_lines()))
            return 0 if result.ok else 1
        report = fuzz_workload(
            args.workload, system=args.system, policy=args.policy,
            seeds=args.seeds, scale=args.scale, nthreads=args.nthreads,
            variant=args.variant, max_cycles=args.max_cycles,
            budget=args.budget, jobs=args.jobs, out_dir=args.out_dir,
            sanitize=not args.no_sanitize)
        print("\n".join(report.summary_lines()))
        return 0 if report.ok else 1

    if args.command == "replay":
        from repro.schedule import replay_trace
        result = replay_trace(args.artifact)
        trace = result.trace
        print(f"replay {trace.workload}/{trace.system} "
              f"policy={trace.policy} seed={trace.seed} "
              f"({len(trace.decisions)} decisions)")
        print(f"  outcome : {result.outcome.status}"
              + (f" ({result.outcome.detail})"
                 if result.outcome.detail else ""))
        print(f"  {result.detail()}")
        print("  reproduced" if result.matches else "  DID NOT reproduce")
        return 0 if result.matches else 1

    fn = EXPERIMENTS[args.command]
    kwargs = {}
    if args.command not in _NO_SCALE and args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    result = fn(**kwargs)
    print(result.text)
    if not args.no_save:
        print(f"[saved {result.save()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
