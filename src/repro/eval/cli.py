"""Command-line interface for the evaluation harness.

Regenerate any paper artifact without pytest::

    python -m repro.eval.cli figure9 --scale 1.0
    python -m repro.eval.cli table3
    python -m repro.eval.cli run histogramfs tmi-protect --scale 0.5
    python -m repro.eval.cli run racy-flag pthreads --sanitize
    python -m repro.eval.cli run histogramfs tmi-protect --profile
    python -m repro.eval.cli trace histogramfs tmi-protect --scale 0.3
    python -m repro.eval.cli metrics histogramfs tmi-protect
    python -m repro.eval.cli lint histogramfs
    python -m repro.eval.cli lint all --scale 0.05
    python -m repro.eval.cli lint all --format json --fail-on warning
    python -m repro.eval.cli repair histogram
    python -m repro.eval.cli repair all --scale 0.05
    python -m repro.eval.cli repair-compare --scale 0.1
    python -m repro.eval.cli fuzz --seeds 16 --budget 60
    python -m repro.eval.cli fuzz racy-flag --policy pct --seeds 32
    python -m repro.eval.cli chaos --seeds 16
    python -m repro.eval.cli chaos --smoke
    python -m repro.eval.cli replay results/fuzz/racy-flag-....json
    python -m repro.eval.cli replay results/chaos/histogramfs-....json
    python -m repro.eval.cli submit --workloads histogram,histogramfs
    python -m repro.eval.cli submit --workloads reverse --tenant acme
    python -m repro.eval.cli serve --once
    python -m repro.eval.cli serve --drain
    python -m repro.eval.cli status
    python -m repro.eval.cli status grid-....-1 --json
    python -m repro.eval.cli results grid-....-1
    python -m repro.eval.cli quarantine list
    python -m repro.eval.cli quarantine inspect <digest>
    python -m repro.eval.cli quarantine release <digest>
    python -m repro.eval.cli resilience-chaos
    python -m repro.eval.cli list
"""

import argparse
import os
import sys

from repro.eval import experiments
from repro.eval.runner import run_workload
from repro.eval.systems import SYSTEM_NAMES
from repro.mapping import PLACEMENT_NAMES
from repro.sim.machine import PAGE_POLICIES
from repro.workloads import all_names

#: Experiments exposed on the command line.
EXPERIMENTS = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "table3": experiments.table3,
    "figure4": experiments.figure4,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "figure9": experiments.figure9,
    "figure10": experiments.figure10,
    "ablation-ptsb": experiments.ablation_ptsb_everywhere,
    "ablation-alloc": experiments.ablation_allocator,
    "ablation-huge-commit": experiments.ablation_huge_commit,
    "ablation-code-centric": experiments.ablation_code_centric,
    "lint-accuracy": experiments.lint_accuracy,
    "repair-compare": experiments.repair_compare,
    "placement-repair": experiments.placement_repair,
    "resilience-chaos": experiments.resilience_chaos,
}

#: Experiments whose signature takes no scale.
_NO_SCALE = {"table2"}


def build_parser():
    """Build the full argparse tree for ``python -m repro.eval.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro.eval",
        description="Regenerate the TMI paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in EXPERIMENTS:
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        if name not in _NO_SCALE:
            cmd.add_argument("--scale", type=float, default=None,
                            help="workload scale (default per experiment)")
        cmd.add_argument("--no-save", action="store_true",
                        help="don't write results/<name>.txt")
        cmd.add_argument("--jobs", type=int, default=None,
                        help="grid worker processes (default: REPRO_JOBS "
                             "env var, then cpu count); results are "
                             "identical at any job count")

    run = sub.add_parser("run", help="run one workload under one system")
    run.add_argument("workload", choices=sorted(all_names()))
    run.add_argument("system", choices=sorted(SYSTEM_NAMES))
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--sanitize", action="store_true",
                     help="attach the vector-clock race sanitizer "
                          "(zero cycle impact); nonzero exit on races")
    run.add_argument("--profile", action="store_true",
                     help="attribute host wall time to simulator "
                          "subsystems (simulated cycles unchanged)")
    run.add_argument("--no-vector", action="store_true",
                     help="force the pure-serial interpreter (the "
                          "vector core is on by default when eligible; "
                          "results are bit-identical either way)")
    run.add_argument("--sockets", type=int, default=None,
                     help="simulate a multi-socket NUMA machine with "
                          "this many sockets (see docs/HARDWARE.md)")
    run.add_argument("--placement", default=None,
                     choices=sorted(PLACEMENT_NAMES),
                     help="thread-placement policy (implies a "
                          "topology-aware machine)")
    run.add_argument("--pages", default=None,
                     choices=sorted(PAGE_POLICIES),
                     help="page-placement policy for multi-socket "
                          "machines (default first-touch)")

    trace = sub.add_parser(
        "trace", help="run one cell with the tracer attached and "
                      "export the event stream")
    trace.add_argument("workload", choices=sorted(all_names()))
    trace.add_argument("system", choices=sorted(SYSTEM_NAMES))
    trace.add_argument("--scale", type=float, default=1.0)
    trace.add_argument("--out", default=None,
                       help="output path (default results/"
                            "trace-<workload>-<system>.json)")
    trace.add_argument("--format", dest="fmt", default="chrome",
                       choices=("chrome", "jsonl", "both"),
                       help="chrome = Perfetto/chrome://tracing "
                            "trace.json; jsonl = one event per line")
    trace.add_argument("--access", action="store_true",
                       help="also record every data access "
                            "(large traces; off by default)")

    metrics = sub.add_parser(
        "metrics", help="run one cell and snapshot its metrics "
                        "registry as JSON")
    metrics.add_argument("workload", choices=sorted(all_names()))
    metrics.add_argument("system", choices=sorted(SYSTEM_NAMES))
    metrics.add_argument("--scale", type=float, default=1.0)
    metrics.add_argument("--out", default=None,
                         help="write the snapshot here instead of "
                              "stdout")

    lint = sub.add_parser(
        "lint", help="statically lint workload(s); no simulation")
    lint.add_argument("workload", choices=sorted(all_names()) + ["all"])
    lint.add_argument("--scale", type=float, default=0.1)
    lint.add_argument("--variant", default=None,
                      help="force a build variant (default/fixed); "
                           "defaults to each workload's canonical build")
    lint.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "json"),
                      help="json = one stable sorted-key document "
                           "(schema repro-lint-report/1) for tooling")
    lint.add_argument("--fail-on", default=None,
                      choices=("info", "warning", "error"),
                      help="exit nonzero when any finding is at or "
                           "above this severity (default: errors only)")

    repair = sub.add_parser(
        "repair", help="plan static layout repair for workload(s) and "
                       "save repro-repair-plan/1 artifacts; no "
                       "simulation beyond trace extraction")
    repair.add_argument("workload",
                        choices=sorted(all_names()) + ["all"],
                        help="workload to plan, or 'all' for the "
                             "repair suite")
    repair.add_argument("--scale", type=float, default=0.1)
    repair.add_argument("--variant", default="default",
                        help="build variant to plan against")
    repair.add_argument("--out-dir", default=None,
                        help="artifact directory (default "
                             "results/repair)")

    fuzz = sub.add_parser(
        "fuzz", help="fuzz schedules; no workload = bounded CI smoke "
                     "(positive + negative control)")
    fuzz.add_argument("workload", nargs="?", default=None,
                      choices=sorted(all_names()),
                      help="workload to fuzz (omit for smoke mode)")
    fuzz.add_argument("--system", default="pthreads",
                      choices=sorted(SYSTEM_NAMES))
    fuzz.add_argument("--policy", default="random",
                      help="perturbation policy: default/random/pct/delay")
    fuzz.add_argument("--seeds", type=int, default=16)
    fuzz.add_argument("--scale", type=float, default=0.1)
    fuzz.add_argument("--budget", type=float, default=None,
                      help="wall-clock budget in seconds (smoke default 60)")
    fuzz.add_argument("--max-cycles", type=int, default=None,
                      help="simulated-cycle budget per run (default: "
                           "25x the default schedule)")
    fuzz.add_argument("--variant", default=None)
    fuzz.add_argument("--nthreads", type=int, default=None)
    fuzz.add_argument("--no-sanitize", action="store_true",
                      help="skip the race sanitizer (final-state "
                           "oracle only)")
    fuzz.add_argument("--out-dir", default=None,
                      help="artifact directory (default results/fuzz)")
    fuzz.add_argument("--jobs", type=int, default=None)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign over the "
                      "repair suite; --smoke = bounded CI control")
    chaos.add_argument("--seeds", type=int, default=16,
                       help="number of fault plans (seeds 0..N-1)")
    chaos.add_argument("--scale", type=float, default=0.1)
    chaos.add_argument("--smoke", action="store_true",
                       help="small bounded plan set with positive "
                            "control and replay identity check")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock timeout in seconds")
    chaos.add_argument("--out-dir", default=None,
                       help="artifact directory (default results/chaos)")
    chaos.add_argument("--jobs", type=int, default=None)

    replay = sub.add_parser(
        "replay", help="re-execute a recorded artifact (schedule "
                       "trace or fault plan; dispatched on its "
                       "format tag)")
    replay.add_argument("artifact",
                        help="path to a ScheduleTrace or FaultPlan JSON")

    serve = sub.add_parser(
        "serve", help="run the campaign service: poll the inbox, "
                      "shard cells over worker pools, serve cached "
                      "results")
    serve.add_argument("--root", default=None,
                       help="service root (default results/service)")
    serve.add_argument("--once", action="store_true",
                       help="process everything currently submitted, "
                            "then exit (CI smoke mode)")
    serve.add_argument("--poll", type=float, default=0.2,
                       help="inbox poll interval in seconds")
    serve.add_argument("--jobs", type=int, default=None)
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-cell wall-clock timeout in seconds")
    serve.add_argument("--drain", action="store_true",
                       help="graceful shutdown: accept no new inbox "
                            "work, finish resumed campaigns and "
                            "parked retries, flush the supervision "
                            "record, exit")
    serve.add_argument("--no-resilience", action="store_true",
                       help="disable the supervision layer (no "
                            "retries, no quarantine, no tenant "
                            "quotas; PR 8 fail-fast semantics)")

    submit = sub.add_parser(
        "submit", help="submit a campaign spec (a JSON file, or "
                       "built from the flags below)")
    submit.add_argument("spec", nargs="?", default=None,
                        help="path to a repro-campaign-spec/1 JSON "
                             "(omit to build one from flags)")
    submit.add_argument("--root", default=None)
    submit.add_argument("--id", dest="campaign_id", default=None,
                        help="explicit campaign id (default: derived "
                             "from the spec digest)")
    submit.add_argument("--kind", default="grid",
                        choices=("grid", "fuzz", "chaos"))
    submit.add_argument("--workloads", default=None,
                        help="comma-separated workload names")
    submit.add_argument("--systems", default="pthreads",
                        help="comma-separated system names")
    submit.add_argument("--scale", type=float, default=0.1)
    submit.add_argument("--seeds", default=None,
                        help="comma-separated integer seeds "
                             "(fuzz/chaos campaigns)")
    submit.add_argument("--priority", type=int, default=0,
                        help="lower runs sooner")
    submit.add_argument("--name", default="")
    submit.add_argument("--tenant", default="",
                        help="submitting tenant (quota + fairness "
                             "identity under the resilience layer)")
    submit.add_argument("--run", action="store_true",
                        help="process the campaign inline instead of "
                             "spooling it for a running server")
    submit.add_argument("--jobs", type=int, default=None)

    status = sub.add_parser(
        "status", help="show one campaign's state (or list all)")
    status.add_argument("campaign", nargs="?", default=None,
                        help="campaign id (omit to list)")
    status.add_argument("--root", default=None)
    status.add_argument("--json", dest="as_json", action="store_true",
                        help="print the raw repro-campaign/1 document")
    status.add_argument("--assert-cache-hits", type=float,
                        default=None, metavar="FRAC",
                        help="exit nonzero unless the cache-hit "
                             "fraction is >= FRAC (CI gate)")

    results = sub.add_parser(
        "results", help="print a campaign's per-cell results from "
                        "the content-addressed store")
    results.add_argument("campaign", help="campaign id")
    results.add_argument("--root", default=None)
    results.add_argument("--out", default=None,
                         help="write the JSON here instead of stdout")

    quarantine = sub.add_parser(
        "quarantine", help="inspect or release quarantined poison "
                           "cells (repro-quarantine/1 entries)")
    quarantine.add_argument("action",
                            choices=("list", "inspect", "release"),
                            help="list entries, print one entry with "
                                 "its replay command, or release "
                                 "digest(s) back into execution")
    quarantine.add_argument("digest", nargs="?", default=None,
                            help="cell digest (release also accepts "
                                 "'all')")
    quarantine.add_argument("--root", default=None,
                            help="service root (default "
                                 "results/service)")

    sub.add_parser("list", help="list workloads and systems")
    return parser


def _campaign_summary(state):
    """One status line for a campaign state document."""
    counts = state.get("counts", {})
    hits = state.get("cache_hit_fraction", 0.0)
    line = (f"{state.get('id')}: {state.get('status')} "
            f"({counts.get('ok', 0)}/{counts.get('total', 0)} ok, "
            f"{counts.get('cache_hits', 0)} cached [{hits:.0%}], "
            f"{counts.get('executed', 0)} executed, "
            f"{counts.get('failed', 0)} failed, "
            f"{counts.get('timeout', 0)} timeout, "
            f"{counts.get('retried', 0)} retried")
    if counts.get("quarantined"):
        line += f", {counts['quarantined']} quarantined"
    if counts.get("hung"):
        line += f", {counts['hung']} hung"
    return line + ")"


def _service_command(args):
    """Dispatch the campaign-service subcommands."""
    import asyncio
    import json

    from repro.service import (CampaignService, CampaignSpec,
                               ServiceClient)

    if args.command == "serve":
        service = CampaignService(root=args.root, jobs=args.jobs,
                                  timeout=args.timeout,
                                  resilience=not args.no_resilience)
        done = asyncio.run(service.serve(once=args.once,
                                         poll=args.poll,
                                         drain=args.drain))
        for job in done:
            print(_campaign_summary(job.to_dict()))
        if service.resilience is not None:
            held = service.resilience.quarantine.digests()
            if held:
                print(f"{len(held)} digest(s) in quarantine; "
                      f"see `quarantine list`")
        failed = sum(1 for job in done if job.status != "completed")
        return 1 if failed else 0

    if args.command == "quarantine":
        return _quarantine_command(args)

    if args.command == "submit":
        if args.spec is not None:
            spec = CampaignSpec.load(args.spec)
        else:
            if not args.workloads:
                print("submit: need a spec file or --workloads",
                      file=sys.stderr)
                return 2
            seeds = None
            if args.seeds:
                seeds = tuple(int(s)
                              for s in args.seeds.split(","))
            spec = CampaignSpec(
                workloads=tuple(args.workloads.split(",")),
                systems=tuple(args.systems.split(",")),
                kind=args.kind, scale=args.scale, seeds=seeds,
                priority=args.priority, name=args.name,
                tenant=args.tenant)
        if args.run:
            service = CampaignService(root=args.root, jobs=args.jobs)
            job = service.run_spec(spec,
                                   campaign_id=args.campaign_id)
            print(_campaign_summary(job.to_dict()))
            return 0 if job.status == "completed" else 1
        client = ServiceClient(root=args.root)
        try:
            campaign_id = client.submit(
                spec, campaign_id=args.campaign_id)
        except FileExistsError:
            print(f"submit: campaign id {args.campaign_id!r} already "
                  f"has a spec waiting in the inbox",
                  file=sys.stderr)
            return 2
        print(f"submitted {campaign_id} "
              f"({len(spec.cells())} cells, kind={spec.kind}); "
              f"run `serve` against the same root to execute")
        return 0

    client = ServiceClient(root=args.root)
    if args.command == "status":
        if args.campaign is None:
            listed = 0
            for campaign_id in client.campaign_ids():
                state = client.status(campaign_id)
                if state is not None:
                    print(_campaign_summary(state))
                    listed += 1
            if not listed:
                print("no campaigns")
            return 0
        state = client.status(args.campaign)
        if state is None:
            print(f"unknown campaign {args.campaign!r}",
                  file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(state, indent=1, sort_keys=True))
        else:
            print(_campaign_summary(state))
        if args.assert_cache_hits is not None:
            frac = state.get("cache_hit_fraction", 0.0)
            if frac < args.assert_cache_hits:
                print(f"cache-hit fraction {frac:.2%} below required "
                      f"{args.assert_cache_hits:.2%}", file=sys.stderr)
                return 1
        return 0 if state.get("status") == "completed" else 1

    # results
    rows = client.results(args.campaign)
    if rows is None:
        print(f"unknown campaign {args.campaign!r}", file=sys.stderr)
        return 2
    text = json.dumps(rows, indent=1, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[saved {args.out}]")
    else:
        print(text)
    return 0


def _quarantine_command(args):
    """Dispatch the ``quarantine`` subcommand (list/inspect/release)."""
    import json

    from repro.eval.report import results_dir
    from repro.service import Quarantine

    root = args.root or os.path.join(results_dir(), "service")
    quarantine = Quarantine(os.path.join(root, "quarantine"))

    if args.action == "list":
        digests = quarantine.digests()
        if not digests:
            print("quarantine empty")
            return 0
        for digest in digests:
            entry = quarantine.get(digest) or {}
            cell = entry.get("cell", {})
            print(f"{digest[:16]}  {cell.get('name', '?')}/"
                  f"{cell.get('system', '?')}  "
                  f"attempts={entry.get('attempts', '?')}  "
                  f"{entry.get('reason', '')}")
        print(f"{len(digests)} digest(s) held; `quarantine inspect "
              f"<digest>` shows replay kwargs")
        return 0

    if args.digest is None:
        print(f"quarantine {args.action}: need a digest",
              file=sys.stderr)
        return 2

    def resolve(prefix):
        """Expand a unique digest prefix (as ``list`` prints) to the
        full digest; ambiguous or unknown prefixes pass through."""
        matches = [d for d in quarantine.digests()
                   if d.startswith(prefix)]
        return matches[0] if len(matches) == 1 else prefix

    if args.action == "release":
        digests = (quarantine.digests() if args.digest == "all"
                   else [resolve(args.digest)])
        released = [d for d in digests if quarantine.release(d)]
        for digest in released:
            print(f"released {digest}")
        if not released:
            print(f"no quarantine entry matches {args.digest!r}",
                  file=sys.stderr)
            return 2
        print(f"{len(released)} digest(s) released; resubmit the "
              f"campaign (same id) to re-execute them")
        return 0

    # inspect
    entry = quarantine.get(resolve(args.digest))
    if entry is None:
        print(f"no quarantine entry for {args.digest!r}",
              file=sys.stderr)
        return 2
    print(json.dumps(entry, indent=1, sort_keys=True))
    cell = entry.get("cell", {})
    if cell.get("name") and cell.get("system"):
        replay = (f"python -m repro.eval.cli run {cell['name']} "
                  f"{cell['system']}")
        if cell.get("scale") is not None:
            replay += f" --scale {cell['scale']}"
        print(f"replay: {replay}")
    return 0


def main(argv=None):
    """Entry point: dispatch one parsed subcommand; returns exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:", ", ".join(all_names()))
        print("systems:  ", ", ".join(SYSTEM_NAMES))
        return 0

    if args.command == "lint":
        from repro.analysis import lint_workload
        from repro.analysis.findings import meets_severity
        names = (sorted(all_names()) if args.workload == "all"
                 else [args.workload])
        reports = [lint_workload(name, scale=args.scale,
                                 variant=args.variant)
                   for name in names]
        if args.fmt == "json":
            import json
            docs = [report.to_dict() for report in reports]
            payload = docs[0] if len(docs) == 1 else {
                "format": docs[0]["format"], "reports": docs}
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for report in reports:
                print(report.format())
            if len(reports) > 1:
                failed = sum(1 for report in reports if not report.ok)
                print(f"linted {len(reports)} workloads, "
                      f"{failed} with errors")
        if args.fail_on is not None:
            gate = any(meets_severity(report.findings, args.fail_on)
                       for report in reports)
        else:
            gate = any(not report.ok for report in reports)
        return 1 if gate else 0

    if args.command == "repair":
        from repro.analysis.repair import plan_workload, save_plan
        from repro.workloads import repair_suite_names
        names = (sorted(repair_suite_names())
                 if args.workload == "all" else [args.workload])
        for name in names:
            plan = plan_workload(name, scale=args.scale,
                                 variant=args.variant)
            fixed = len(plan.predicted_fixed)
            residual = len(plan.predicted_residual)
            print(f"repair {name}: {fixed + residual} false line(s), "
                  f"{fixed} fixed, {residual} residual; "
                  f"{len(plan.relocations)} relocation(s), "
                  f"arena {plan.arena_bytes} B, "
                  f"score {plan.cost.get('score', 0):.3f}")
            for line in plan.lines:
                verdict = (line.transformation if line.fixed
                           else f"residual: {line.reason}")
                print(f"  line {line.line_va:#x}: {verdict}")
            path = (save_plan(plan) if args.out_dir is None
                    else save_plan(plan, os.path.join(
                        args.out_dir, f"{plan.workload}-plan.json")))
            print(f"  [saved {path}]")
        return 0

    if args.command == "run":
        outcome = run_workload(args.workload, args.system,
                               scale=args.scale,
                               sanitize=args.sanitize,
                               profile=args.profile,
                               vector=False if args.no_vector else None,
                               sockets=args.sockets,
                               placement=args.placement,
                               pages=args.pages,
                               collect_metrics=args.sockets is not None)
        print(f"{args.workload} under {args.system}: {outcome.status}")
        if outcome.result is not None:
            result = outcome.result
            print(f"  runtime : {result.seconds * 1e3:.3f} ms "
                  f"({result.cycles} cycles)")
            print(f"  HITM    : {result.hitm_total} "
                  f"(loads {result.hitm_loads}, "
                  f"stores {result.hitm_stores})")
            print(f"  sync ops: {result.sync_ops}   "
                  f"data ops: {result.data_ops}")
            if outcome.metrics is not None:
                counters = outcome.metrics["counters"]
                print(f"  NUMA    : "
                      f"{counters.get('machine.hitm.cross_socket', 0)} "
                      f"cross-socket HITM, "
                      f"{counters.get('machine.qpi.hops', 0)} QPI hops, "
                      f"{counters.get('machine.numa.remote_fills', 0)} "
                      f"remote fills")
            if result.runtime_report:
                print(f"  report  : {result.runtime_report}")
        if outcome.detail:
            print(f"  detail  : {outcome.detail}")
        if outcome.analysis is not None:
            print(outcome.analysis.format())
            if not outcome.analysis.ok:
                return 1
        if outcome.profile is not None:
            from repro.obs import format_profile
            print(format_profile(outcome.profile))
        return 0 if outcome.ok else 1

    if args.command == "trace":
        from repro.eval.report import results_dir
        from repro.obs import write_chrome_trace, write_jsonl
        outcome = run_workload(
            args.workload, args.system, scale=args.scale,
            trace="access" if args.access else True)
        print(f"{args.workload} under {args.system}: {outcome.status}")
        if outcome.trace_data is None:
            if outcome.detail:
                print(f"  detail: {outcome.detail}")
            return 1
        counts = outcome.trace_data["counts"]
        total = sum(counts.values())
        print(f"  {total} events: " + ", ".join(
            f"{kind}={n}" for kind, n in counts.items()))
        out = args.out or os.path.join(
            results_dir(), f"trace-{args.workload}-{args.system}.json")
        if args.fmt in ("chrome", "both"):
            write_chrome_trace(outcome.trace_data, out)
            print(f"[saved {out}] (open in ui.perfetto.dev or "
                  "chrome://tracing)")
        if args.fmt in ("jsonl", "both"):
            jsonl = (out if args.fmt == "jsonl"
                     else os.path.splitext(out)[0] + ".jsonl")
            write_jsonl(outcome.trace_data, jsonl)
            print(f"[saved {jsonl}]")
        return 0 if outcome.ok else 1

    if args.command == "metrics":
        outcome = run_workload(args.workload, args.system,
                               scale=args.scale, collect_metrics=True)
        if outcome.metrics is None:
            print(f"{args.workload} under {args.system}: "
                  f"{outcome.status}")
            if outcome.detail:
                print(f"  detail: {outcome.detail}")
            return 1
        import json
        text = json.dumps(outcome.metrics, indent=1, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"[saved {args.out}]")
        else:
            print(text)
        return 0 if outcome.ok else 1

    if args.command == "fuzz":
        from repro.schedule import fuzz_workload, smoke_fuzz
        if args.jobs is not None:
            os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.workload is None:
            result = smoke_fuzz(seeds=args.seeds,
                                budget=args.budget or 60.0,
                                jobs=args.jobs, out_dir=args.out_dir)
            print("\n".join(result.summary_lines()))
            return 0 if result.ok else 1
        report = fuzz_workload(
            args.workload, system=args.system, policy=args.policy,
            seeds=args.seeds, scale=args.scale, nthreads=args.nthreads,
            variant=args.variant, max_cycles=args.max_cycles,
            budget=args.budget, jobs=args.jobs, out_dir=args.out_dir,
            sanitize=not args.no_sanitize)
        print("\n".join(report.summary_lines()))
        return 0 if report.ok else 1

    if args.command == "chaos":
        from repro.faults import chaos_repair_suite, chaos_smoke
        if args.jobs is not None:
            os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.smoke:
            smoke = chaos_smoke(seeds=min(args.seeds, 8),
                                scale=min(args.scale, 0.05),
                                jobs=args.jobs, out_dir=args.out_dir,
                                timeout=args.timeout)
            print("\n".join(smoke.summary_lines()))
            return 0 if smoke.ok else 1
        report = chaos_repair_suite(
            seeds=args.seeds, scale=args.scale, jobs=args.jobs,
            out_dir=args.out_dir, timeout=args.timeout)
        print("\n".join(report.summary_lines()))
        return 0 if report.ok else 1

    if args.command == "replay":
        import json as json_mod
        with open(args.artifact) as fh:
            tag = json_mod.load(fh).get("format", "")
        if tag.startswith("repro-fault-plan/"):
            from repro.faults import FaultPlan, replay_plan
            plan = FaultPlan.load(args.artifact)
            matches, detail, outcome = replay_plan(plan)
            print(f"replay {plan.workload}/{plan.system} fault plan "
                  f"seed={plan.seed} "
                  f"({len(plan.rates)} armed point(s))")
            print(f"  outcome : {outcome.status}"
                  + (f" ({outcome.detail})" if outcome.detail else ""))
            print(f"  {detail}")
            if matches:
                print("  reproduced")
                return 0
            print(f"  DID NOT reproduce (artifact: {args.artifact})")
            return 1
        from repro.schedule import replay_trace
        result = replay_trace(args.artifact)
        trace = result.trace
        print(f"replay {trace.workload}/{trace.system} "
              f"policy={trace.policy} seed={trace.seed} "
              f"({len(trace.decisions)} decisions)")
        print(f"  outcome : {result.outcome.status}"
              + (f" ({result.outcome.detail})"
                 if result.outcome.detail else ""))
        print(f"  {result.detail()}")
        if result.matches:
            print("  reproduced")
            return 0
        print(f"  DID NOT reproduce (artifact: {args.artifact})")
        return 1

    if args.command in ("serve", "submit", "status", "results",
                        "quarantine"):
        return _service_command(args)

    fn = EXPERIMENTS[args.command]
    kwargs = {}
    if args.command not in _NO_SCALE and args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    result = fn(**kwargs)
    print(result.text)
    if not args.no_save:
        print(f"[saved {result.save()}]")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `... | head` closed stdout; exit quietly like other CLIs do.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
