"""One entry point per table/figure of the paper's evaluation.

Each function runs the required (workload x system) grid and returns an
:class:`ExperimentResult` holding both structured data and the rendered
paper-style table.  Scales default to values that keep a full
regeneration in minutes; pass ``scale=1.0`` for the sized-up runs
recorded in EXPERIMENTS.md.
"""

from dataclasses import dataclass, field

from repro.core.config import TmiConfig
from repro.core.consistency import TABLE2
from repro.eval.charts import bar_chart
from repro.eval.parallel import run_cells
from repro.eval.report import format_table, geomean, save_text
from repro.eval.runner import run_matrix, run_workload
from repro.workloads import figure7_names, repair_suite_names

MB = 1024 * 1024


@dataclass
class ExperimentResult:
    """One regenerated table/figure: data, rendered text, and notes."""

    name: str
    data: dict
    text: str
    notes: list = field(default_factory=list)

    def save(self):
        """Write the rendered text under results/; returns the path."""
        return save_text(f"{self.name}.txt", self.text)


def _norm(outcome, baseline_cycles):
    """Normalized runtime (x over baseline; lower is better)."""
    if not outcome.ok:
        return None
    return outcome.result.cycles / baseline_cycles


def _cell(value, status=""):
    if value is None:
        return status or "--"
    return value


# ----------------------------------------------------------------------
# Figure 4: perf sample-period sweep on leveldb
# ----------------------------------------------------------------------
def figure4(scale=2.0, periods=(1, 5, 10, 50, 100, 1000)):
    """Runtime and recorded HITM events vs. perf period on leveldb."""
    rows = []
    data = {"periods": {}, "workload": "leveldb"}
    for period in periods:
        config = TmiConfig(period=period)
        outcome = run_workload("leveldb", "tmi-detect", scale=scale,
                               config=config)
        report = outcome.result.runtime_report
        entry = {
            "runtime_s": outcome.result.seconds,
            "records": report["perf_records"],
            "estimated_events": report["perf_estimated_events"],
            "events_seen": report["perf_events_seen"],
        }
        data["periods"][period] = entry
        rows.append((period, round(entry["runtime_s"] * 1e3, 2),
                     entry["records"], entry["estimated_events"],
                     entry["events_seen"]))
    text = format_table(
        ["period", "runtime (ms)", "records", "estimated", "actual"],
        rows,
        title="Figure 4: leveldb runtime and HITM events vs perf period")
    return ExperimentResult("figure4", data, text)


# ----------------------------------------------------------------------
# Figure 7: detection overhead across all 35 workloads
# ----------------------------------------------------------------------
def figure7(scale=0.25, workloads=None):
    """Normalized runtime of sheriff-detect / tmi-alloc / tmi-detect."""
    workloads = workloads or figure7_names()
    systems = ["pthreads", "sheriff-detect", "tmi-alloc", "tmi-detect"]
    grid = run_matrix(workloads, systems, scale=scale)
    rows = []
    data = {"workloads": {}, "scale": scale}
    per_system = {s: [] for s in systems[1:]}
    sheriff_works = 0
    for name in workloads:
        base = grid[name]["pthreads"]
        assert base.ok, f"baseline failed on {name}: {base.detail}"
        row = [name]
        entry = {}
        for system in systems[1:]:
            outcome = grid[name][system]
            norm = _norm(outcome, base.result.cycles)
            entry[system] = {"norm": norm, "status": outcome.status}
            row.append(_cell(norm, outcome.status))
            if norm is not None:
                per_system[system].append(norm)
        if grid[name]["sheriff-detect"].ok:
            sheriff_works += 1
        data["workloads"][name] = entry
        rows.append(row)
    summary = ["geomean"]
    for system in systems[1:]:
        summary.append(geomean(per_system[system]))
    rows.append(summary)
    data["geomean"] = {s: geomean(per_system[s]) for s in systems[1:]}
    data["sheriff_compatible"] = sheriff_works
    data["tmi_detect_overhead_pct"] = \
        (data["geomean"]["tmi-detect"] - 1) * 100
    text = format_table(
        ["workload", "sheriff-detect", "tmi-alloc", "tmi-detect"],
        rows,
        title=("Figure 7: runtime normalized to pthreads+Lockless "
               "(lower is better)"))
    chart_rows = [
        (name, entry["tmi-detect"]["norm"],
         entry["tmi-detect"]["status"]
         if entry["tmi-detect"]["norm"] is None else "")
        for name, entry in data["workloads"].items()]
    text += "\n\n" + bar_chart("tmi-detect normalized runtime",
                                chart_rows, baseline=1.0)
    return ExperimentResult("figure7", data, text)


# ----------------------------------------------------------------------
# Figure 8: memory overhead
# ----------------------------------------------------------------------
def figure8(scale=0.25, workloads=None):
    """Memory usage (MB): pthreads vs TMI-full."""
    workloads = workloads or figure7_names()
    rows = []
    data = {"workloads": {}}
    overheads = []
    outcomes = run_cells(
        [dict(name=name, system=system, scale=scale)
         for name in workloads for system in ("pthreads", "tmi-protect")])
    by_cell = {}
    for (name, system), outcome in zip(
            [(n, s) for n in workloads
             for s in ("pthreads", "tmi-protect")], outcomes):
        by_cell[(name, system)] = outcome
    for name in workloads:
        base = by_cell[(name, "pthreads")]
        tmi = by_cell[(name, "tmi-protect")]
        base_mb = base.result.total_memory / MB
        tmi_mb = tmi.result.total_memory / MB if tmi.ok else None
        data["workloads"][name] = {"pthreads_mb": base_mb,
                                   "tmi_mb": tmi_mb}
        if tmi_mb and base_mb > 64:
            overheads.append(tmi_mb / base_mb)
        rows.append((name, round(base_mb, 1),
                     _cell(round(tmi_mb, 1) if tmi_mb else None)))
    data["large_workload_overhead"] = geomean(overheads)
    text = format_table(
        ["workload", "pthreads (MB)", "TMI-full (MB)"], rows,
        title="Figure 8: memory usage (MB, absolute)")
    return ExperimentResult("figure8", data, text)


# ----------------------------------------------------------------------
# Figure 9 + Table 3: repair speedups and characterization
# ----------------------------------------------------------------------
def figure9(scale=0.6, workloads=None):
    """Speedup over pthreads for manual / sheriff-protect / LASER /
    TMI-protect on the false-sharing suite."""
    workloads = workloads or repair_suite_names()
    systems = ["pthreads", "manual", "sheriff-protect", "laser",
               "tmi-protect"]
    grid = run_matrix(workloads, systems, scale=scale)
    rows = []
    data = {"workloads": {}, "scale": scale}
    speedups = {s: [] for s in systems[1:]}
    for name in workloads:
        base = grid[name]["pthreads"]
        row = [name]
        entry = {}
        for system in systems[1:]:
            outcome = grid[name][system]
            speedup = (base.result.cycles / outcome.result.cycles
                       if outcome.ok else None)
            entry[system] = {"speedup": speedup,
                             "status": outcome.status}
            row.append(_cell(speedup, outcome.status))
            if speedup is not None:
                speedups[system].append(speedup)
        data["workloads"][name] = entry
        data["workloads"][name]["tmi_report"] = (
            grid[name]["tmi-protect"].result.runtime_report
            if grid[name]["tmi-protect"].ok else {})
        rows.append(row)
    rows.append(["geomean"] + [geomean(speedups[s]) for s in systems[1:]])
    data["geomean"] = {s: geomean(speedups[s]) for s in systems[1:]}
    manual = data["geomean"]["manual"]
    data["tmi_pct_of_manual"] = (
        100 * data["geomean"]["tmi-protect"] / manual if manual else 0)
    data["laser_pct_of_manual"] = (
        100 * data["geomean"]["laser"] / manual if manual else 0)
    text = format_table(
        ["workload", "manual", "sheriff-protect", "LASER",
         "TMI-protect"], rows,
        title="Figure 9: speedup over pthreads (higher is better)")
    chart_rows = []
    for name in workloads:
        for system in ("manual", "tmi-protect"):
            entry = data["workloads"][name][system]
            chart_rows.append((f"{name} [{system}]", entry["speedup"],
                               entry["status"] if entry["speedup"] is None
                               else ""))
    text += "\n\n" + bar_chart("speedup over pthreads", chart_rows,
                                baseline=1.0)
    return ExperimentResult("figure9", data, text)


def table3(scale=0.6, workloads=None, figure9_result=None):
    """Unrepaired time, T2P latency, and commit rate per repaired app."""
    workloads = workloads or repair_suite_names()
    rows = []
    data = {}
    for name in workloads:
        if figure9_result is not None:
            report = figure9_result.data["workloads"][name]["tmi_report"]
        else:
            outcome = run_workload(name, "tmi-protect", scale=scale)
            report = outcome.result.runtime_report if outcome.ok else {}
        entry = {
            "unrepaired_s": report.get("unrepaired_intervals", 0),
            "t2p_us": report.get("t2p_us", 0.0),
            "commits_per_s": report.get("commits_per_interval", 0.0),
        }
        data[name] = entry
        rows.append((name, entry["unrepaired_s"], entry["t2p_us"],
                     entry["commits_per_s"]))
    text = format_table(
        ["app", "unrepaired (s*)", "T2P (us)", "commits/s*"], rows,
        title=("Table 3: repair characterization "
               "(* one detection interval = one scaled second)"))
    return ExperimentResult("table3", data, text)


# ----------------------------------------------------------------------
# Figure 10: 4KB vs 2MB huge pages
# ----------------------------------------------------------------------
def figure10(scale=1.0, workloads=None):
    """Overhead of 4KB pages relative to 2MB huge pages for TMI's
    process-shared file-backed region."""
    workloads = workloads or figure7_names()
    rows = []
    data = {"workloads": {}}
    ratios = []
    outcomes = run_cells(
        [dict(name=name, system="tmi-detect", scale=scale,
              config=TmiConfig(huge_pages=huge))
         for name in workloads for huge in (False, True)])
    for index, name in enumerate(workloads):
        small = outcomes[2 * index]
        huge = outcomes[2 * index + 1]
        pct = (small.result.cycles / huge.result.cycles - 1) * 100
        data["workloads"][name] = {"overhead_pct": pct}
        ratios.append(small.result.cycles / huge.result.cycles)
        rows.append((name, round(pct, 1)))
    data["huge_page_speedup_pct"] = (geomean(ratios) - 1) * 100
    rows.append(("geomean", round(data["huge_page_speedup_pct"], 1)))
    text = format_table(
        ["workload", "4KB overhead vs 2MB (%)"], rows,
        title="Figure 10: 4KB page overhead relative to 2MB huge pages")
    chart_rows = [(name, max(entry["overhead_pct"], 0.0), "")
                  for name, entry in data["workloads"].items()]
    text += "\n\n" + bar_chart("4KB overhead vs 2MB (%)", chart_rows,
                                unit="%")
    return ExperimentResult("figure10", data, text)


# ----------------------------------------------------------------------
# Table 1: the requirements matrix
# ----------------------------------------------------------------------
def table1(figure7_result=None, figure9_result=None, scale=0.25):
    """Compatibility / consistency / overhead / % of manual speedup."""
    fig7 = figure7_result or figure7(scale=scale)
    fig9 = figure9_result or figure9(scale=max(scale, 0.5))
    manual = fig9.data["geomean"]["manual"]

    def pct_of_manual(system):
        value = fig9.data["geomean"].get(system)
        return round(100 * value / manual, 0) if value and manual else 0

    sheriff_compat = fig7.data["sheriff_compatible"]
    total = len(fig7.data["workloads"])
    data = {
        "sheriff": {
            "compatible": f"{sheriff_compat}/{total} workloads",
            "memory_consistency": False,
            "overhead_pct": round(
                (fig7.data["geomean"]["sheriff-detect"] - 1) * 100, 1),
            "pct_manual": pct_of_manual("sheriff-protect"),
        },
        "laser": {
            "compatible": "yes",
            "memory_consistency": True,
            "overhead_pct": 2.0,
            "pct_manual": pct_of_manual("laser"),
        },
        "tmi": {
            "compatible": "yes",
            "memory_consistency": True,
            "overhead_pct": round(
                (fig7.data["geomean"]["tmi-detect"] - 1) * 100, 1),
            "pct_manual": pct_of_manual("tmi-protect"),
        },
    }
    rows = [
        ("compatible", data["sheriff"]["compatible"], "yes", "yes"),
        ("memory consistency", "no", "yes", "yes"),
        ("overhead w/o contention",
         f"{data['sheriff']['overhead_pct']}%",
         f"{data['laser']['overhead_pct']}%",
         f"{data['tmi']['overhead_pct']}%"),
        ("% of manual speedup",
         f"{data['sheriff']['pct_manual']:.0f}%",
         f"{data['laser']['pct_manual']:.0f}%",
         f"{data['tmi']['pct_manual']:.0f}%"),
    ]
    text = format_table(["requirement", "Sheriff", "LASER", "TMI"], rows,
                        title="Table 1: requirements for effective "
                              "false sharing repair")
    return ExperimentResult("table1", data, text)


# ----------------------------------------------------------------------
# Table 2: consistency semantics (static, from the model)
# ----------------------------------------------------------------------
def table2():
    """Render the code-centric consistency interaction matrix."""
    kinds = ("regular", "atomic", "asm")
    rows = []
    for a in kinds:
        row = [a]
        for b in kinds:
            semantics, permitted = TABLE2[frozenset([a, b])]
            row.append(f"{semantics}{' [PTSB]' if permitted else ''}")
        rows.append(row)
    text = format_table(["", "regular", "atomic", "x86 asm"], rows,
                        title=("Table 2: semantics of concurrent "
                               "conflicting accesses ([PTSB] = PTSB "
                               "use permitted)"))
    return ExperimentResult("table2", {"table": dict(
        (",".join(sorted(k)), v) for k, v in
        ((tuple(key), value) for key, value in TABLE2.items()))}, text)


# ----------------------------------------------------------------------
# Ablations (section 4.3 and 4.4 call-outs)
# ----------------------------------------------------------------------
def ablation_ptsb_everywhere(scale=0.6,
                             workloads=("histogram", "histogramfs")):
    """Targeted repair vs. protecting all of memory (section 4.3)."""
    rows = []
    data = {}
    for name in workloads:
        base = run_workload(name, "pthreads", scale=scale)
        targeted = run_workload(name, "tmi-protect", scale=scale)
        everywhere = run_workload(
            name, "tmi-protect", scale=scale,
            config=TmiConfig(targeted=False))
        s_t = base.result.cycles / targeted.result.cycles
        s_e = base.result.cycles / everywhere.result.cycles
        data[name] = {"targeted": s_t, "everywhere": s_e}
        rows.append((name, s_t, s_e))
    text = format_table(
        ["workload", "targeted speedup", "PTSB-everywhere speedup"],
        rows, title="Ablation: targeted repair vs PTSB-everywhere")
    return ExperimentResult("ablation_ptsb", data, text)


def ablation_allocator(scale=0.25,
                       workloads=("kmeans", "reverse", "dedup",
                                  "wordcount", "histogram")):
    """Lockless vs glibc-style allocator (section 4.1: ~16%)."""
    rows = []
    ratios = []
    data = {}
    for name in workloads:
        lockless = run_workload(name, "pthreads", scale=scale)
        glibc = run_workload(name, "glibc", scale=scale)
        ratio = glibc.result.cycles / lockless.result.cycles
        data[name] = ratio
        ratios.append(ratio)
        rows.append((name, ratio))
    data["geomean"] = geomean(ratios)
    rows.append(("geomean", data["geomean"]))
    text = format_table(
        ["workload", "glibc / lockless runtime"], rows,
        title="Ablation: allocator choice (paper: Lockless ~16% faster)")
    return ExperimentResult("ablation_alloc", data, text)


def ablation_huge_commit(scale=0.6, workload="histogramfs"):
    """Huge-page commit memcmp prefilter on vs off (section 4.4).

    Forces paper-literal 2 MB page protection (no 4 KB split) so the
    commit path actually diffs whole huge pages.
    """
    on = run_workload(workload, "tmi-protect", scale=scale,
                      config=TmiConfig(huge_pages=True,
                                       repair_page_split=False,
                                       huge_commit_optimization=True))
    off = run_workload(workload, "tmi-protect", scale=scale,
                       config=TmiConfig(huge_pages=True,
                                        repair_page_split=False,
                                        huge_commit_optimization=False))
    data = {"optimized_cycles": on.result.cycles,
            "unoptimized_cycles": off.result.cycles,
            "benefit_pct": (off.result.cycles / on.result.cycles - 1)
            * 100}
    text = format_table(
        ["configuration", "cycles"],
        [("memcmp prefilter ON", on.result.cycles),
         ("memcmp prefilter OFF", off.result.cycles)],
        title=f"Ablation: huge-page commit optimization ({workload})")
    return ExperimentResult("ablation_huge_commit", data, text)


def ablation_code_centric(scale=0.6, workload="shptr-relaxed"):
    """Code-centric consistency on vs off for relaxed atomics."""
    base = run_workload(workload, "pthreads", scale=scale)
    with_cc = run_workload(workload, "tmi-protect", scale=scale)
    no_relaxed = run_workload(
        workload, "tmi-protect", scale=scale,
        config=TmiConfig(extra={"flush_relaxed": True}))
    data = {
        "with_cc_speedup": base.result.cycles / with_cc.result.cycles,
        "relaxed_fast_path": with_cc.result.runtime_report.get(
            "relaxed_fast_path", 0),
    }
    rows = [("code-centric (relaxed fast path)",
             data["with_cc_speedup"])]
    if no_relaxed.ok:
        data["without_speedup"] = (base.result.cycles
                                   / no_relaxed.result.cycles)
        rows.append(("conservative (flush on relaxed)",
                     data["without_speedup"]))
    text = format_table(["configuration", "speedup over pthreads"], rows,
                        title="Ablation: code-centric consistency on "
                              f"{workload}")
    return ExperimentResult("ablation_code_centric", data, text)


# ----------------------------------------------------------------------
# Lint accuracy: static predictions vs simulated HITM ground truth
# ----------------------------------------------------------------------
def lint_accuracy(scale=0.1, workloads=None):
    """Score the static linter's false-sharing predictions per workload.

    Ground truth is a pthreads simulation with the HITM listener
    recording every inter-core sharing event (no sampling), classified
    with the same byte-overlap rule the linter uses.  Lint and ground
    truth run at the same scale so their traces cover the same
    iteration space.
    """
    from repro.analysis.ground_truth import (collect_ground_truth,
                                             precision_recall)
    from repro.analysis.lint import lint_workload
    from repro.eval.report import precision_recall_table
    from repro.workloads import get as get_workload

    names = list(workloads) if workloads else repair_suite_names()
    rows = []
    data = {"workloads": {}, "scale": scale}
    total_tp = total_fp = total_fn = 0
    for name in names:
        lint = lint_workload(name, scale=scale)
        truth = collect_ground_truth(get_workload(name, scale=scale))
        precision, recall, tp, fp, fn = precision_recall(
            lint.predicted_false, truth.false_lines)
        total_tp += tp
        total_fp += fp
        total_fn += fn
        data["workloads"][name] = {
            "predicted": len(lint.predicted_false),
            "ground_truth": len(truth.false_lines),
            "tp": tp, "fp": fp, "fn": fn,
            "precision": precision, "recall": recall,
            "hitm_samples": truth.hitm_count,
        }
        rows.append((name, len(lint.predicted_false),
                     len(truth.false_lines), tp, fp, fn, precision,
                     recall))
    overall_p = (total_tp / (total_tp + total_fp)
                 if total_tp + total_fp else 1.0)
    overall_r = (total_tp / (total_tp + total_fn)
                 if total_tp + total_fn else 1.0)
    data["precision"] = overall_p
    data["recall"] = overall_r
    rows.append(("OVERALL", "", "", total_tp, total_fp, total_fn,
                 overall_p, overall_r))
    text = precision_recall_table(
        rows,
        title="Lint accuracy: static false-sharing prediction vs "
              "simulated HITM ground truth")
    return ExperimentResult("lint_accuracy", data, text)


# ----------------------------------------------------------------------
# Repair-compare: static repair planner vs TMI's dynamic isolation
# ----------------------------------------------------------------------
def placement_repair(scale=0.3, workloads=None, sockets=2,
                     placements=("compact", "scatter", "sharing-aware"),
                     pages=("first-touch", "interleave")):
    """Placement x page-policy x repair grid on a multi-socket machine.

    The NUMA extension of the Fig 10 axis (see ``docs/HARDWARE.md``):
    every cell runs on a ``sockets``-socket topology and the grid
    crosses thread placement (compact / scatter / sharing-aware), page
    placement (first-touch / interleave), and repair (pthreads vs the
    static repair planner).  The questions it answers:

    - does sharing-aware placement cut *inter-socket* HITM traffic vs
      compact (the mapping-as-repair-alternative claim), and
    - does repair still dominate, since placement can only move false
      sharing on-socket, not remove it.

    The state-identity gate (``data["state_identical_all"]``) checks
    that every placement/page combination leaves each workload's final
    state bit-identical — mapping policies must never change program
    semantics, only costs.
    """
    names = (list(workloads) if workloads
             else ["clique-counters", "histogram", "histogramfs"])
    systems = ["pthreads", "static-repaired"]
    combos = [(name, system, placement, page)
              for name in names for system in systems
              for placement in placements for page in pages]
    outcomes = run_cells(
        [dict(name=name, system=system, scale=scale, sockets=sockets,
              placement=placement, pages=page, collect_metrics=True,
              collect_state=True)
         for name, system, placement, page in combos])

    def cross_hitm(outcome):
        if outcome.metrics is None:
            return None
        return outcome.metrics["counters"].get(
            "machine.hitm.cross_socket", 0)

    grid = {}
    states_ok = True
    data = {"scale": scale, "sockets": sockets, "workloads": {}}
    for (name, system, placement, page), outcome in zip(combos,
                                                        outcomes):
        assert outcome.ok, (f"{name}/{system} under {placement}/{page} "
                            f"failed: {outcome.status} {outcome.detail}")
        grid[(name, system, placement, page)] = outcome
        entry = data["workloads"].setdefault(name, {})
        entry[f"{system}/{placement}/{page}"] = {
            "cycles": outcome.result.cycles,
            "hitm": outcome.result.hitm_total,
            "cross_socket_hitm": cross_hitm(outcome),
        }
    for name in names:
        for system in systems:
            reference = None
            for placement in placements:
                for page in pages:
                    state = grid[(name, system, placement,
                                  page)].final_state
                    if reference is None:
                        reference = state
                    elif state != reference:
                        states_ok = False
    data["state_identical_all"] = states_ok

    # the mapping-vs-repair headline: aggregate cross-socket HITM of
    # the unrepaired runs under first-touch pages
    compact_cross = sum(
        cross_hitm(grid[(name, "pthreads", "compact", pages[0])]) or 0
        for name in names)
    aware_cross = sum(
        cross_hitm(grid[(name, "pthreads", "sharing-aware",
                         pages[0])]) or 0
        for name in names)
    data["cross_hitm"] = {"compact": compact_cross,
                          "sharing-aware": aware_cross}
    data["sharing_aware_cross_reduction"] = (
        1.0 - aware_cross / compact_cross if compact_cross else 0.0)

    rows = []
    for name in names:
        base = grid[(name, "pthreads", placements[0],
                     pages[0])].result.cycles
        for placement in placements:
            for page in pages:
                plain = grid[(name, "pthreads", placement, page)]
                repaired = grid[(name, "static-repaired", placement,
                                 page)]
                rows.append((
                    name, placement, page,
                    round(plain.result.cycles / base, 3),
                    plain.result.hitm_total, cross_hitm(plain),
                    round(repaired.result.cycles / base, 3),
                    cross_hitm(repaired)))
    text = format_table(
        ["workload", "placement", "pages", "pthreads", "hitm",
         "x-socket", "repaired", "x-socket"],
        rows,
        title=(f"Placement vs repair on {sockets} sockets: runtime "
               f"normalized to compact/{pages[0]} pthreads, total and "
               f"cross-socket HITM"))
    notes = [
        f"sharing-aware cuts cross-socket HITM {compact_cross} -> "
        f"{aware_cross} "
        f"({data['sharing_aware_cross_reduction']:.1%}) vs compact",
        "state-identity gate: "
        + ("all placements bit-identical" if states_ok else "VIOLATED"),
    ]
    return ExperimentResult("placement_repair", data, text, notes)


def repair_compare(scale=0.1, workloads=None):
    """pthreads vs tmi-protect vs static-repaired vs static+tmi.

    The static axis the paper positions TMI against: the repair planner
    (see :mod:`repro.analysis.repair`) rewrites each workload's layout
    from lint findings alone, and the grid compares its runtime and
    HITM counts with TMI's dynamic isolation.  A second table validates
    the planner's predictions against simulated HITM ground truth:
    fraction of falsely-shared-line HITM events eliminated, the
    precision/recall of its predicted-fixed claims, and the
    semantic-preservation gate (rewritten final state bit-identical to
    the original under pthreads).  Every plan is saved as a
    ``repro-repair-plan/1`` artifact under ``results/repair/``.
    """
    from repro.analysis.ground_truth import score_repair
    from repro.analysis.repair import plan_from_dict, save_plan
    from repro.eval.report import results_dir
    from repro.workloads import get as get_workload

    names = list(workloads) if workloads else repair_suite_names()
    systems = ["pthreads", "tmi-protect", "static-repaired",
               "static-tmi"]
    grid = run_matrix(names, systems, scale=scale)

    runtime_rows = []
    validate_rows = []
    data = {"workloads": {}, "scale": scale, "systems": systems}
    per_system = {s: [] for s in systems[1:]}
    agg_base = agg_resid = 0
    total_tp = total_fp = total_fn = 0
    states_ok = True
    plan_paths = []
    for name in names:
        base = grid[name]["pthreads"]
        assert base.ok, f"baseline failed on {name}: {base.detail}"
        entry = {}
        row = [name, base.result.hitm_total]
        for system in systems[1:]:
            outcome = grid[name][system]
            norm = _norm(outcome, base.result.cycles)
            hitm = (outcome.result.hitm_total if outcome.result
                    else None)
            entry[system] = {"norm": norm, "hitm": hitm,
                             "status": outcome.status}
            row.append(_cell(norm, outcome.status))
            row.append(_cell(hitm, outcome.status))
            if norm is not None:
                per_system[system].append(norm)
        runtime_rows.append(row)

        plan_dict = grid[name]["static-repaired"].plan
        if plan_dict is not None:
            plan_paths.append(str(save_plan(plan_from_dict(plan_dict))))

        score = score_repair(get_workload(name, scale=scale))
        entry["score"] = score
        agg_base += score["baseline_false_events"]
        agg_resid += score["repaired_false_events"]
        total_tp += score["tp"]
        total_fp += score["fp"]
        total_fn += score["fn"]
        states_ok = states_ok and score["state_identical"]
        validate_rows.append((
            name, score["baseline_false_lines"],
            score["predicted_fixed"], score["predicted_residual"],
            score["baseline_false_events"],
            score["repaired_false_events"],
            round(score["eliminated_fraction"] * 100, 1),
            score["precision"], score["recall"],
            "yes" if score["state_identical"] else "NO"))
        data["workloads"][name] = entry

    summary = ["geomean", ""]
    for system in systems[1:]:
        summary.append(geomean(per_system[system]))
        summary.append("")
    runtime_rows.append(summary)
    overall_elim = 1.0 - agg_resid / agg_base if agg_base else 1.0
    overall_p = (total_tp / (total_tp + total_fp)
                 if total_tp + total_fp else 1.0)
    overall_r = (total_tp / (total_tp + total_fn)
                 if total_tp + total_fn else 1.0)
    validate_rows.append((
        "OVERALL", "", "", "", agg_base, agg_resid,
        round(overall_elim * 100, 1), round(overall_p, 4),
        round(overall_r, 4), "yes" if states_ok else "NO"))
    data["geomean"] = {s: geomean(per_system[s]) for s in systems[1:]}
    data["eliminated_fraction"] = overall_elim
    data["precision"] = overall_p
    data["recall"] = overall_r
    data["state_identical_all"] = states_ok
    data["plan_artifacts"] = plan_paths

    text = format_table(
        ["workload", "pthreads hitm",
         "tmi-protect", "hitm", "static-repaired", "hitm",
         "static-tmi", "hitm"],
        runtime_rows,
        title=("Repair-compare: runtime normalized to pthreads "
               "(lower is better) and total HITM events"))
    text += "\n\n" + format_table(
        ["workload", "false lines", "pred fixed", "pred resid",
         "base ev", "resid ev", "elim %", "precision", "recall",
         "state ok"],
        validate_rows,
        title=("Planner validation vs simulated HITM ground truth "
               "(falsely-shared-line events, pthreads geometry)"))
    import os
    notes = [f"plans under {os.path.join(results_dir(), 'repair')}"]
    return ExperimentResult("repair_compare", data, text, notes)


def resilience_chaos(scale=0.05, jobs=None, root=None):
    """SLO-gated chaos drill for the service resilience layer.

    Runs the same multi-tenant campaign mix twice under a supervised
    :class:`~repro.service.CampaignService`: once *chaotic* — two
    poison cells that fail deterministically on every attempt, one
    cell whose pool worker is hard-killed mid-shard, a corrupted grid
    checkpoint, and an inbox flood past the flooding tenant's quota —
    and once fault-free.  The SLO gate then demands what the
    resilience layer promises:

    - every campaign reaches ``completed`` and every non-quarantined
      cell is harness-ok (retries absorbed the kill + corruption);
    - every result the chaotic run cached is byte-identical to the
      fault-free run's entry for the same digest;
    - the quarantine contains *exactly* the injected poison cells;
    - ``service.retry`` / ``service.quarantined`` match the injected
      poison count, and the flood shows up as tenant backpressure.

    The determinism design carries the gate: attempt counts live in
    the ``repro-service-state/1`` supervision record (host-dependent
    timings/crash evidence live in the health sidecar), so the
    recorded state is identical across ``REPRO_JOBS`` settings.
    """
    import asyncio
    import hashlib
    import os
    import shutil
    import warnings

    from repro.eval.report import results_dir
    from repro.faults.harness import HARNESS_FAULTS_ENV, HarnessFaultPlan
    from repro.service import (CampaignService, CampaignSpec,
                               ResiliencePolicy, cell_digest)

    base = root or os.path.join(results_dir(), "resilience-chaos")
    chaotic_root = os.path.join(base, "chaotic")
    clean_root = os.path.join(base, "fault-free")
    for directory in (chaotic_root, clean_root):
        shutil.rmtree(directory, ignore_errors=True)

    specs = {
        "acme-grid": CampaignSpec(
            workloads=("histogram", "reverse"),
            systems=("pthreads", "tmi-protect"), scale=scale,
            name="acme-grid", tenant="acme"),
        "bolt-grid": CampaignSpec(
            workloads=("histogramfs",),
            systems=("pthreads", "tmi-protect"), scale=scale,
            name="bolt-grid", tenant="bolt", priority=1),
        "acme-chaos": CampaignSpec(
            workloads=("histogramfs",), systems=("tmi-protect",),
            kind="chaos", seeds=(1, 2), scale=scale,
            name="acme-chaos", tenant="acme"),
    }
    flood_spec = CampaignSpec(workloads=("histogram",), scale=scale,
                              name="flood", tenant="bolt")
    flood_ids = [f"flood-{n}" for n in range(1, 5)]
    for cid in flood_ids:
        specs[cid] = flood_spec

    # fault targets, named by cell digest (the store/quarantine key)
    acme_cells = specs["acme-grid"].cells()
    bolt_cells = specs["bolt-grid"].cells()
    poison = {
        cell_digest(acme_cells[3]):
            "injected poison: reverse/tmi-protect",
        cell_digest(bolt_cells[1]):
            "injected poison: histogramfs/tmi-protect"}
    kill = (cell_digest(acme_cells[1]),)

    policy = ResiliencePolicy(max_attempts=2, crash_threshold=2,
                              jitter_rounds=1, tenant_max_queued=2,
                              tenant_weights={"acme": 2, "bolt": 1})

    def run_once(service_root, chaotic):
        service = CampaignService(root=service_root, jobs=jobs,
                                  resilience=policy)
        for cid, spec in specs.items():
            service.reserve_campaign_id(spec, campaign_id=cid)
        if chaotic:
            # corrupt one in-flight checkpoint; fallback_fresh must
            # absorb it (warned, then recomputed)
            ckpt = os.path.join(service_root, "checkpoints",
                                "campaign-acme-grid.json")
            os.makedirs(os.path.dirname(ckpt), exist_ok=True)
            with open(ckpt, "w") as fh:
                fh.write('{"format": "repro-grid-checkpoint/1", tru')
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            asyncio.run(service.serve(once=True))
            asyncio.run(service.serve(drain=True))
        return service

    plan_path = os.path.join(base, "harness-faults.json")
    HarnessFaultPlan(poison=poison, kill=kill).save(plan_path)
    os.environ[HARNESS_FAULTS_ENV] = plan_path
    try:
        chaotic = run_once(chaotic_root, chaotic=True)
    finally:
        os.environ.pop(HARNESS_FAULTS_ENV, None)
    clean = run_once(clean_root, chaotic=False)

    def entry_bytes(service, digest):
        try:
            with open(service.store.path(digest), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    campaigns = {}
    all_ok = True
    for cid in sorted(specs):
        state = chaotic.status(cid)
        cells = state["cells"]
        quarantined = sum(1 for e in cells.values()
                          if e["status"] == "quarantined")
        ok = sum(1 for e in cells.values() if e["status"] == "ok")
        all_ok = all_ok and state["status"] == "completed" \
            and ok + quarantined == len(cells)
        campaigns[cid] = {"status": state["status"], "ok": ok,
                          "quarantined": quarantined,
                          "cells": len(cells)}

    clean_digests = set()
    for shard in os.listdir(clean.store.root):
        shard_dir = os.path.join(clean.store.root, shard)
        if os.path.isdir(shard_dir):
            clean_digests.update(f[:-len(".json")]
                                 for f in os.listdir(shard_dir)
                                 if f.endswith(".json"))
    expected = clean_digests - set(poison)
    identical = all(entry_bytes(chaotic, d) == entry_bytes(clean, d)
                    for d in sorted(expected))
    payload_identical = identical and all(
        entry_bytes(chaotic, d) is not None for d in expected)

    quarantined_digests = chaotic.resilience.quarantine.digests()
    counters = chaotic.metrics_snapshot()["counters"]
    tenant_backpressure = sum(
        v for k, v in counters.items()
        if k.startswith("service.tenant.backpressure"))

    slo = {
        "campaigns_completed_nonquarantined_ok": all_ok,
        "payloads_byte_identical_to_fault_free": payload_identical,
        "quarantine_exactly_poison":
            quarantined_digests == sorted(poison),
        "retry_metric_matches_poison":
            counters.get("service.retry", 0) == len(poison),
        "quarantined_metric_matches_poison":
            counters.get("service.quarantined", 0) == len(poison),
        "flood_hit_tenant_quota": tenant_backpressure > 0,
    }
    slo_ok = all(slo.values())

    state_path = chaotic.resilience.state_path
    with open(state_path, "rb") as fh:
        state_sha = hashlib.sha256(fh.read()).hexdigest()

    data = {"scale": scale, "campaigns": campaigns, "slo": slo,
            "slo_ok": slo_ok, "poison": sorted(poison),
            "killed": list(kill),
            "quarantined": quarantined_digests,
            "retries": counters.get("service.retry", 0),
            "tenant_backpressure": tenant_backpressure,
            "supervision_state": state_path,
            "supervision_state_sha256": state_sha,
            "payload_bytes_checked": len(expected)}

    rows = [(cid, specs[cid].tenant, c["status"], c["cells"],
             c["ok"], c["quarantined"])
            for cid, c in sorted(campaigns.items())]
    text = format_table(
        ["campaign", "tenant", "status", "cells", "ok", "quarantined"],
        rows, title="Resilience chaos drill (chaotic run)")
    text += "\n\nSLO gate:\n"
    for key in sorted(slo):
        text += f"  {'PASS' if slo[key] else 'FAIL':4}  {key}\n"
    text += f"\noverall: {'PASS' if slo_ok else 'FAIL'}\n"
    notes = [f"supervision record: {state_path} "
             f"(sha256 {state_sha[:12]})",
             f"fault plan: {plan_path}"]
    return ExperimentResult("resilience_chaos", data, text, notes)
