"""Evaluation harness: systems, runners, and per-figure experiments."""

from repro.eval.experiments import (ExperimentResult, ablation_allocator,
                                    ablation_code_centric,
                                    ablation_huge_commit,
                                    ablation_ptsb_everywhere, figure4,
                                    figure7, figure8, figure9, figure10,
                                    table1, table2, table3)
from repro.eval.runner import (BUDGET, DEADLOCK, HANG, INCOMPATIBLE,
                               INVALID, OK, RunOutcome, run_matrix,
                               run_workload)
from repro.eval.systems import SYSTEM_NAMES, make_runtime

__all__ = [
    "ExperimentResult", "ablation_allocator", "ablation_code_centric",
    "ablation_huge_commit", "ablation_ptsb_everywhere", "figure4",
    "figure7", "figure8", "figure9", "figure10", "table1", "table2",
    "table3", "BUDGET", "DEADLOCK", "HANG", "INCOMPATIBLE", "INVALID",
    "OK", "RunOutcome", "run_matrix", "run_workload", "SYSTEM_NAMES",
    "make_runtime",
]
