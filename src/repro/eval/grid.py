"""Checkpointed experiment grids: long sweeps that survive interruption.

A chaos campaign or a full-scale figure grid can run for hours; a
crashed host, an OOM-killed worker, or a ctrl-C should not throw away
the cells that already finished.  :func:`run_checkpointed` executes a
cell list through the hardened pool
(:func:`~repro.eval.parallel.run_cells_recorded`) in batches, writing a
versioned JSON checkpoint under ``results/checkpoints/`` after every
batch; re-running the same grid name skips every cell the checkpoint
already records as harness-``ok`` and re-attempts only the cells that
failed, timed out, or never ran.

The checkpoint stores JSON-serializable *summaries* (statuses, cycles,
fault counts), not live :class:`~repro.eval.runner.RunOutcome` objects:
a resumed cell comes back with ``from_checkpoint=True`` and its summary,
which is what grid-level reporting consumes.
"""

import json
import os
import time
import warnings
from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.eval.parallel import (CELL_OK, job_count,
                                 run_cells_recorded)
from repro.eval.report import results_dir

#: Versioned checkpoint format tag.
CHECKPOINT_FORMAT = "repro-grid-checkpoint/1"


def cell_key(cell):
    """Stable identity of one cell: its kwargs, canonically encoded."""
    return json.dumps(cell, sort_keys=True, default=str)


def summarize_outcome(outcome):
    """JSON-serializable digest of one RunOutcome for the checkpoint."""
    if outcome is None:
        return None
    summary = {"workload": getattr(outcome, "workload", None),
               "system": getattr(outcome, "system", None),
               "status": getattr(outcome, "status", None),
               "detail": getattr(outcome, "detail", ""),
               "cycles": getattr(outcome, "cycles", None)}
    faults = getattr(outcome, "faults", None)
    if faults is not None:
        summary["fault_counts"] = dict(faults["counts"])
    return summary


@dataclass
class GridCell:
    """One grid cell's harness status plus its outcome summary."""

    cell: dict
    status: str
    retried: bool = False
    error: str = ""
    summary: object = None
    #: Live RunOutcome when the cell ran in this invocation; None for
    #: cells restored from the checkpoint.
    outcome: object = None
    from_checkpoint: bool = False
    #: Host wall-clock seconds attributed to this cell (its share of
    #: the batch it ran in); 0.0 for checkpoint restores.  Feeds the
    #: service watchdog's timing history — deliberately *not* part of
    #: the checkpoint, which stays deterministic.
    elapsed: float = 0.0


def checkpoint_path(name, out_dir=None):
    """Where grid ``name`` checkpoints (``REPRO_RESULTS_DIR`` aware)."""
    directory = out_dir or os.path.join(results_dir(), "checkpoints")
    return os.path.join(directory, f"{name}.json")


def load_checkpoint(path):
    """Load a checkpoint's cell entries; ``{}`` when none exists.

    A file that cannot be parsed (truncated by a crashed writer,
    hand-edited into invalid JSON) or that carries the wrong format tag
    raises :class:`~repro.errors.CheckpointError` naming the path —
    never a bare ``JSONDecodeError``.
    """
    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                path, f"truncated or corrupted JSON ({exc})") from exc
    if not isinstance(data, dict) \
            or data.get("format") != CHECKPOINT_FORMAT:
        tag = data.get("format") if isinstance(data, dict) else None
        raise CheckpointError(
            path, f"unsupported grid checkpoint format {tag!r} "
                  f"(expected {CHECKPOINT_FORMAT})")
    cells = data.get("cells", {})
    if not isinstance(cells, dict):
        raise CheckpointError(
            path, f"malformed cells table ({type(cells).__name__})")
    return cells


def _write_checkpoint(path, entries):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump({"format": CHECKPOINT_FORMAT, "cells": entries},
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def run_checkpointed(cells, name, jobs=None, timeout=None,
                     out_dir=None, fresh=False, fallback_fresh=False):
    """Run ``cells`` under checkpoint ``name``; returns
    :class:`GridCell` records in input order.

    Cells the checkpoint already records as harness-``ok`` are restored
    without re-running (``from_checkpoint=True``); everything else —
    new cells, earlier failures, earlier timeouts — runs through the
    hardened pool in batches, and the checkpoint is rewritten after
    every batch so an interruption loses at most one batch of work.
    ``fresh=True`` discards any existing checkpoint first.

    An unusable checkpoint (truncated JSON, wrong format tag) raises
    :class:`~repro.errors.CheckpointError` by default;
    ``fallback_fresh=True`` instead warns and resumes from nothing —
    the behavior long-running services want, where losing a resume is
    recoverable but crashing the campaign is not.
    """
    cells = list(cells)
    path = checkpoint_path(name, out_dir=out_dir)
    if fresh:
        entries = {}
    else:
        try:
            entries = load_checkpoint(path)
        except CheckpointError as exc:
            if not fallback_fresh:
                raise
            warnings.warn(f"{exc}; resuming from a fresh run",
                          RuntimeWarning, stacklevel=2)
            entries = {}
    results = [None] * len(cells)
    pending = []
    for index, cell in enumerate(cells):
        entry = entries.get(cell_key(cell))
        if entry is not None and entry.get("status") == CELL_OK:
            results[index] = GridCell(
                cell=dict(cell), status=entry["status"],
                retried=entry.get("retried", False),
                error=entry.get("error", ""),
                summary=entry.get("summary"), from_checkpoint=True)
        else:
            pending.append(index)

    batch = max(1, job_count(jobs)) * 2
    for base in range(0, len(pending), batch):
        chunk = pending[base:base + batch]
        start = time.monotonic()
        records = run_cells_recorded([cells[i] for i in chunk],
                                     jobs=jobs, timeout=timeout)
        share = (time.monotonic() - start) / max(1, len(chunk))
        for index, record in zip(chunk, records):
            summary = summarize_outcome(record.outcome)
            results[index] = GridCell(
                cell=dict(cells[index]), status=record.status,
                retried=record.retried, error=record.error,
                summary=summary, outcome=record.outcome,
                elapsed=share)
            entries[cell_key(cells[index])] = {
                "status": record.status, "retried": record.retried,
                "error": record.error, "summary": summary}
        _write_checkpoint(path, entries)
    if not pending:
        # nothing ran, but materialize the checkpoint for fresh grids
        _write_checkpoint(path, entries)
    return results


@dataclass
class GridReport:
    """Totals over one checkpointed grid run."""

    name: str
    records: list
    path: str = ""
    counts: dict = field(default_factory=dict)

    def summary_lines(self):
        """Totals plus one line per non-ok cell."""
        lines = [f"grid {self.name}: "
                 + ", ".join(f"{k}={v}"
                             for k, v in sorted(self.counts.items()))]
        for record in self.records:
            if record.status == CELL_OK and not record.retried:
                continue
            flags = []
            if record.retried:
                flags.append("retried")
            if record.from_checkpoint:
                flags.append("checkpointed")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {record.cell.get('name')}/"
                         f"{record.cell.get('system')}: "
                         f"{record.status}{suffix} {record.error}")
        return lines


def run_grid(cells, name, **kwargs):
    """:func:`run_checkpointed` plus a :class:`GridReport` wrapper."""
    records = run_checkpointed(cells, name, **kwargs)
    counts = {}
    for record in records:
        key = record.status + ("(resumed)" if record.from_checkpoint
                               else "")
        counts[key] = counts.get(key, 0) + 1
    return GridReport(name=name, records=records,
                      path=checkpoint_path(
                          name, out_dir=kwargs.get("out_dir")),
                      counts=counts)
