"""Registry of runtime systems the evaluation compares.

Names follow the paper's figures: ``pthreads`` (baseline, Lockless
allocator), ``glibc`` (allocator ablation), ``tmi-alloc`` /
``tmi-detect`` / ``tmi-protect``, ``sheriff-detect`` /
``sheriff-protect``, ``laser``, and ``manual`` (pthreads running the
source-fixed workload variant).
"""

from repro.baselines.laser import LaserRuntime
from repro.baselines.pthreads import PthreadsRuntime
from repro.baselines.sheriff import SheriffRuntime
from repro.core.config import TmiConfig
from repro.core.runtime import TmiRuntime

#: Systems that run the FIXED workload variant.
SOURCE_FIX_SYSTEMS = ("manual",)

#: Systems that run the DEFAULT variant rewritten by the static repair
#: planner (see :mod:`repro.analysis.repair`): plain pthreads under the
#: rewritten layout, and the rewritten layout under full TMI protection
#: (does dynamic isolation still find anything to repair?).
STATIC_REPAIR_SYSTEMS = ("static-repaired", "static-tmi")

SYSTEM_NAMES = ("pthreads", "glibc", "manual", "tmi-alloc", "tmi-detect",
                "tmi-protect", "sheriff-detect", "sheriff-protect",
                "laser", "static-repaired", "static-tmi")


def make_runtime(system, config=None):
    """Instantiate the runtime for a system name.

    ``config`` (a :class:`TmiConfig`, or a plain dict of its field
    overrides — the JSON form campaign specs carry) parameterizes TMI
    and LASER; the others ignore it.
    """
    if isinstance(config, dict):
        config = TmiConfig(**config)
    if system in ("pthreads", "manual"):
        return PthreadsRuntime()
    if system == "glibc":
        return PthreadsRuntime(allocator_kind="glibc")
    if system == "tmi-alloc":
        return TmiRuntime("alloc", config or TmiConfig())
    if system == "tmi-detect":
        return TmiRuntime("detect", config or TmiConfig())
    if system == "tmi-protect":
        return TmiRuntime("protect", config or TmiConfig())
    if system == "sheriff-detect":
        return SheriffRuntime("detect")
    if system == "sheriff-protect":
        return SheriffRuntime("protect")
    if system == "laser":
        return LaserRuntime(config or TmiConfig())
    if system == "static-repaired":
        return PthreadsRuntime()
    if system == "static-tmi":
        return TmiRuntime("protect", config or TmiConfig())
    raise KeyError(f"unknown system {system!r}; known: {SYSTEM_NAMES}")


def workload_variant(system):
    """Which workload variant a system runs."""
    return "fixed" if system in SOURCE_FIX_SYSTEMS else "default"
