"""Plain-text table rendering and results persistence."""

import os


def format_table(headers, rows, title=""):
    """Render an aligned text table (the harness's figure/table output)."""
    cells = [list(map(str, headers))]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def precision_recall_table(rows, title=""):
    """Fig-4-style accuracy table for static-analysis predictions.

    ``rows`` are (workload, predicted, truth, tp, fp, fn, precision,
    recall) tuples, as produced by
    :func:`repro.analysis.ground_truth.precision_recall`.
    """
    return format_table(
        ["workload", "predicted", "ground-truth", "tp", "fp", "fn",
         "precision", "recall"],
        rows, title=title)


def geomean(values):
    """Geometric mean of positive values (the paper's averaging)."""
    values = [v for v in values if v and v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def results_dir():
    """results/ directory next to the repo root (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(path, exist_ok=True)
    return path


def save_text(name, text):
    """Persist a rendered table under results/."""
    path = os.path.join(results_dir(), name)
    with open(path, "w") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return path
