"""ASCII bar charts for the figure benchmarks.

The paper's figures are bar charts; rendering them as text makes the
regenerated results legible in a terminal and diffable under
``results/``.
"""


def bar_chart(title, rows, unit="x", width=46, baseline=None):
    """Render labelled horizontal bars.

    ``rows`` is ``[(label, value_or_None, note)]``; None values render
    their note (e.g. ``incompatible``).  ``baseline`` draws a reference
    mark (e.g. 1.0 for normalized runtime).
    """
    values = [v for _l, v, _n in rows if v is not None]
    if not values:
        return f"{title}\n  (no data)"
    peak = max(values + ([baseline] if baseline else []))
    label_width = max(len(label) for label, _v, _n in rows)
    lines = [title]
    for label, value, note in rows:
        if value is None:
            lines.append(f"  {label.ljust(label_width)} | {note}")
            continue
        filled = int(round(width * value / peak)) if peak else 0
        bar = "#" * max(filled, 1 if value > 0 else 0)
        mark = ""
        if baseline is not None and peak:
            position = min(int(round(width * baseline / peak)),
                           width - 1)
            if position >= filled:
                bar = bar.ljust(position) + "|"
        lines.append(f"  {label.ljust(label_width)} |{bar.ljust(width)}"
                     f" {value:.2f}{unit} {note}".rstrip())
    return "\n".join(lines)


def series_chart(title, xs, series, width=50, height=12):
    """Tiny scatter/line chart for Figure 4's runtime-vs-period sweep.

    ``series`` is ``{name: [values aligned with xs]}``; each series is
    scaled independently (the paper's Figure 4 uses two y-axes).
    """
    lines = [title]
    glyphs = "*o+x"
    for index, (name, values) in enumerate(series.items()):
        top = max(values) or 1
        bottom = min(values)
        span = (top - bottom) or 1
        row = []
        for value in values:
            level = int((value - bottom) / span * 8)
            row.append(str(level))
        lines.append(f"  {glyphs[index % len(glyphs)]} {name}: "
                     f"levels {' '.join(row)}  "
                     f"(min {bottom:.3g}, max {top:.3g})")
    lines.append(f"  x = {xs}")
    return "\n".join(lines)
