"""Standard process memory layout shared by all runtimes.

Virtual-address geography is fixed so that the /proc/pid/maps analog
(:mod:`repro.oskit.procmaps`) can classify samples the way TMI's
detector does: repair is restricted to the heap and globals; stack and
system-library addresses are filtered out (section 3.1).
"""

from repro.sim.costs import PAGE_2M

GLOBALS_BASE = 0x1000_0000
GLOBALS_SIZE = 16 * 1024 * 1024

HEAP_BASE = 0x4000_0000
# heap size comes from the program (native inputs reach tens of GB)

INTERNAL_BASE = 0x2000_0000          # TMI's process-shared state region
INTERNAL_SIZE = 64 * 1024 * 1024

LIBC_BASE = 0x3000_0000
LIBC_SIZE = 4 * 1024 * 1024

STACKS_BASE = 0x7000_0000_0000
STACK_SIZE = 1 * 1024 * 1024
STACK_SPACING = PAGE_2M              # keeps stacks page-size aligned


def stack_base(tid):
    """Base virtual address of thread ``tid``'s stack."""
    return STACKS_BASE + tid * STACK_SPACING


def heap_end(heap_bytes):
    """First address past a heap of ``heap_bytes``."""
    return HEAP_BASE + heap_bytes


def region_kind(name):
    """Classify a mapping name the way the detector's maps filter does."""
    if name.startswith("stack"):
        return "stack"
    if name.startswith("libc"):
        return "lib"
    if name.startswith("tmi-"):
        return "internal"
    if name.startswith("heap"):
        return "heap"
    if name.startswith("globals"):
        return "globals"
    return "other"
