"""The API workload code is written against.

A thread body is ``def body(t: ThreadCtx): ...`` — a generator function.
Every memory/sync operation is expressed as ``yield from t.<op>(...)``;
the engine executes the yielded ISA op and sends the result back.

Atomic helpers automatically bracket themselves with the code-centric
consistency region markers that the paper's LLVM pass would insert
(section 3.4.2); ``asm()`` gives workloads explicit inline-assembly
regions.
"""

from repro.errors import HangError
from repro.isa import ops as O


class ThreadCtx:
    """Per-thread handle passed to workload bodies."""

    def __init__(self, engine, thread, binary):
        self._engine = engine
        self._thread = thread
        self._binary = binary
        # per-context memo of binary.auto_site (one dict probe instead of
        # a method call + registry probe on every anonymous access)
        self._auto_sites = {}

    def _auto_site(self, kind, width):
        key = (kind, width)
        site = self._auto_sites.get(key)
        if site is None:
            site = self._binary.auto_site(kind, width)
            self._auto_sites[key] = site
        return site

    # ------------------------------------------------------------------
    @property
    def tid(self):
        """This thread's id (pthread_self analog)."""
        return self._thread.tid

    @property
    def name(self):
        """The name given at spawn (empty for anonymous threads)."""
        return self._thread.name

    @property
    def nthreads(self):
        """The program's configured worker count."""
        return self._engine.program.nthreads

    # ------------------------------------------------------------------
    # plain data accesses
    # ------------------------------------------------------------------
    def load(self, addr, width=8, site=None, volatile=False):
        """Plain load of ``width`` bytes at ``addr``; returns the value."""
        site = site or self._auto_site("load", width)
        value = yield O.Load(site, addr, width, volatile)
        return value

    def store(self, addr, value, width=8, site=None, volatile=False):
        """Plain store of ``value`` (``width`` bytes) at ``addr``."""
        site = site or self._auto_site("store", width)
        yield O.Store(site, addr, value, width, volatile)

    def load_run(self, addr, count, stride, width=8, site=None,
                 volatile=False):
        """``count`` loads at ``addr, addr+stride, ...`` in one op.

        Returns the list of loaded values.  Cycle-for-cycle identical to
        a ``load`` loop over the same addresses — use it for pure stride
        loops with no per-iteration side effects between accesses.
        """
        if count <= 0:
            return []
        site = site or self._auto_site("load", width)
        values = yield O.AccessRun(site, addr, count, stride, width,
                                   False, 0, volatile)
        return values

    def store_run(self, addr, value, count, stride, width=8, site=None,
                  volatile=False):
        """``count`` stores of ``value`` at ``addr, addr+stride, ...``."""
        if count <= 0:
            return
        site = site or self._auto_site("store", width)
        yield O.AccessRun(site, addr, count, stride, width, True,
                          value, volatile)

    def rmw_seq(self, addrs, width, deltas, compute, load_site=None,
                store_site=None, volatile=False):
        """Load/add/store/compute over each address in ``addrs``.

        Cycle-for-cycle identical to the loop ``v = load(a); store(a,
        v + d); compute(c)`` over the same addresses — use it for
        accumulator loops whose address and delta streams are
        precomputable.  ``deltas`` is an int applied to every element
        or a sequence matched to ``addrs``.
        """
        if not addrs:
            return
        load_site = load_site or self._auto_site("load", width)
        store_site = store_site or self._auto_site("store", width)
        if not isinstance(deltas, int) and len(deltas) != len(addrs):
            raise ValueError("deltas must be an int or match addrs")
        yield O.RmwSeq(load_site, store_site, tuple(addrs), width,
                       deltas if isinstance(deltas, int)
                       else tuple(deltas), compute, volatile)

    def store_seq(self, addr, values, width, compute, site=None,
                  volatile=False):
        """Store each of ``values`` at ``addr``, ``compute`` after each.

        Cycle-for-cycle identical to the loop ``store(addr, v);
        compute(c)`` over the same values.
        """
        if not values:
            return
        site = site or self._auto_site("store", width)
        yield O.StoreSeq(site, addr, tuple(values), width, compute,
                         volatile)

    def compute(self, cycles):
        """Pure computation for ``cycles`` (no memory traffic)."""
        yield O.Compute(cycles)

    def bulk_touch(self, addr, nbytes, is_write=False, site=None):
        """Touch ``nbytes`` from ``addr`` line by line (memset/memcpy)."""
        site = site or self._auto_site(
            "store" if is_write else "load", 8)
        yield O.BulkTouch(site, addr, nbytes, is_write)

    def fence(self, site=None):
        """Full memory fence (mfence)."""
        yield O.Fence(site or self._auto_site("other", 0))

    # ------------------------------------------------------------------
    # C/C++ atomics (bracketed with consistency callbacks)
    # ------------------------------------------------------------------
    def atomic_add(self, addr, delta, width=8, ordering=O.SEQ_CST,
                   site=None):
        """fetch_add; returns the old value."""
        site = site or self._auto_site("atomic", width)
        yield O.RegionBegin(O.REGION_ATOMIC, ordering)
        old = yield O.AtomicRMW(site, addr, "add", delta, width, ordering)
        yield O.RegionEnd(O.REGION_ATOMIC)
        return old

    def atomic_xchg(self, addr, value, width=8, ordering=O.SEQ_CST,
                    site=None):
        """exchange; returns the old value."""
        site = site or self._auto_site("atomic", width)
        yield O.RegionBegin(O.REGION_ATOMIC, ordering)
        old = yield O.AtomicRMW(site, addr, "xchg", value, width, ordering)
        yield O.RegionEnd(O.REGION_ATOMIC)
        return old

    def atomic_cas(self, addr, expected, new, width=8, ordering=O.SEQ_CST,
                   site=None):
        """compare_exchange; returns the observed old value."""
        site = site or self._auto_site("atomic", width)
        yield O.RegionBegin(O.REGION_ATOMIC, ordering)
        old = yield O.AtomicRMW(site, addr, "cas", new, width, ordering,
                                expected=expected)
        yield O.RegionEnd(O.REGION_ATOMIC)
        return old

    def atomic_load(self, addr, width=8, ordering=O.SEQ_CST, site=None):
        """C11 atomic load; returns the value."""
        site = site or self._auto_site("atomic", width)
        yield O.RegionBegin(O.REGION_ATOMIC, ordering)
        value = yield O.AtomicLoad(site, addr, width, ordering)
        yield O.RegionEnd(O.REGION_ATOMIC)
        return value

    def atomic_store(self, addr, value, width=8, ordering=O.SEQ_CST,
                     site=None):
        """C11 atomic store."""
        site = site or self._auto_site("atomic", width)
        yield O.RegionBegin(O.REGION_ATOMIC, ordering)
        yield O.AtomicStore(site, addr, value, width, ordering)
        yield O.RegionEnd(O.REGION_ATOMIC)

    # ------------------------------------------------------------------
    # inline assembly regions
    # ------------------------------------------------------------------
    def asm_begin(self):
        """Enter an inline-assembly region (TSO semantics inside)."""
        yield O.RegionBegin(O.REGION_ASM)

    def asm_end(self):
        """Leave the current inline-assembly region."""
        yield O.RegionEnd(O.REGION_ASM)

    # ------------------------------------------------------------------
    # volatile flag synchronization (old-style C, Figure 12)
    # ------------------------------------------------------------------
    def volatile_load(self, addr, width=4, site=None):
        """Load through a ``volatile``-qualified pointer."""
        value = yield from self.load(addr, width, site, volatile=True)
        return value

    def volatile_store(self, addr, value, width=4, site=None):
        """Store through a ``volatile``-qualified pointer."""
        yield from self.store(addr, value, width, site, volatile=True)

    def spin_while_equal(self, addr, value, width=4, site=None,
                         max_spins=20_000, spin_cost=120):
        """Spin until ``*addr != value`` (volatile read loop).

        Raises :class:`HangError` after ``max_spins`` — the simulated
        analog of cholesky hanging forever under a PTSB without
        code-centric consistency (Figure 12).
        """
        spins = 0
        while True:
            observed = yield from self.volatile_load(addr, width, site)
            if observed != value:
                return observed
            spins += 1
            if spins >= max_spins:
                raise HangError(self.tid,
                                f"spinning on {addr:#x} == {value}")
            yield O.Compute(spin_cost)

    # ------------------------------------------------------------------
    # heap
    # ------------------------------------------------------------------
    def malloc(self, size, align=0):
        """Allocate ``size`` heap bytes; returns the address."""
        addr = yield O.Malloc(size, align)
        return addr

    def free(self, addr):
        """Release a ``malloc`` allocation."""
        yield O.FreeOp(addr)

    # ------------------------------------------------------------------
    # pthreads
    # ------------------------------------------------------------------
    def mutex(self, name=""):
        """pthread_mutex_init: allocates and registers a mutex."""
        addr = yield O.Malloc(self._engine.sync_object_size("mutex"), 8)
        mutex = self._engine.register_mutex(self._thread, addr, name)
        return mutex

    def mutex_at(self, addr, name=""):
        """Register a mutex at caller-placed memory (lock pools)."""
        return self._engine.register_mutex(self._thread, addr, name)

    def barrier(self, parties, name=""):
        """pthread_barrier_init for ``parties`` threads."""
        addr = yield O.Malloc(self._engine.sync_object_size("barrier"), 8)
        barrier = self._engine.register_barrier(self._thread, addr,
                                                parties, name)
        return barrier

    def lock(self, mutex):
        """pthread_mutex_lock (blocks until acquired)."""
        yield O.MutexLock(mutex)

    def unlock(self, mutex):
        """pthread_mutex_unlock."""
        yield O.MutexUnlock(mutex)

    def barrier_wait(self, barrier):
        """pthread_barrier_wait (blocks until all parties arrive)."""
        yield O.BarrierWait(barrier)

    def condvar(self, name=""):
        """pthread_cond_init: allocates and registers a condvar."""
        addr = yield O.Malloc(self._engine.sync_object_size("condvar"), 8)
        condvar = self._engine.register_condvar(self._thread, addr, name)
        return condvar

    def cond_wait(self, condvar, mutex):
        """Atomically release ``mutex`` and sleep until signalled; the
        mutex is re-acquired before returning."""
        yield O.CondWait(condvar, mutex)

    def cond_signal(self, condvar):
        """pthread_cond_signal: wake one waiter."""
        yield O.CondSignal(condvar)

    def cond_broadcast(self, condvar):
        """pthread_cond_broadcast: wake every waiter."""
        yield O.CondSignal(condvar, broadcast=True)

    def spawn(self, body, name=""):
        """pthread_create; returns the new thread's tid."""
        tid = yield O.ThreadCreate(body, name)
        return tid

    def join(self, tid):
        """pthread_join: block until ``tid`` exits."""
        yield O.ThreadJoin(tid)

    # ------------------------------------------------------------------
    # introspection used by a few workloads
    # ------------------------------------------------------------------
    def stack_base(self):
        """Base address of this thread's stack mapping."""
        return self._engine.stack_base(self._thread.tid)

    def now_cycles(self):
        """This thread's core clock in simulated cycles (rdtsc)."""
        return self._engine.machine.core_clock[self._thread.core]
