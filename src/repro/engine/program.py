"""Program and run-result types."""

from dataclasses import dataclass, field

from repro.errors import InvalidProgramError

#: Valid synchronization frequency classes.
SYNC_RATES = ("low", "medium", "high")


@dataclass
class WorkloadFeatures:
    """Static properties of a workload that runtimes must respect.

    These mirror what the paper reports finding in real code: inline
    assembly in canneal/dedup/leveldb, C11 atomics, volatile-flag
    synchronization in splash2, and native-input heap footprints that
    break Sheriff (section 4.2: "Sheriff works with just 11 of our 35
    workloads").
    """

    uses_atomics: bool = False
    uses_asm: bool = False
    uses_volatile_flags: bool = False
    has_false_sharing: bool = False
    has_true_sharing: bool = False
    #: Declared native-input footprint in bytes (drives Figure 8/10).
    footprint_bytes: int = 10 * 1024 * 1024
    #: Synchronization frequency class: 'low' | 'medium' | 'high'.
    sync_rate: str = "low"

    def __post_init__(self):
        if self.sync_rate not in SYNC_RATES:
            raise InvalidProgramError(
                f"sync_rate must be one of {SYNC_RATES}, "
                f"got {self.sync_rate!r}")
        if self.footprint_bytes <= 0:
            raise InvalidProgramError(
                f"footprint_bytes must be positive, "
                f"got {self.footprint_bytes}")


@dataclass
class Program:
    """A runnable workload: a main body plus its binary image."""

    name: str
    binary: object
    main: object                    # generator function main(ctx)
    nthreads: int = 4
    features: WorkloadFeatures = field(default_factory=WorkloadFeatures)
    #: Bytes of heap address space to map (native inputs can be huge).
    heap_bytes: int = 1 << 30
    #: Filled by the body with result addresses; read by ``validate``.
    env: dict = field(default_factory=dict)
    #: Optional ``validate(env, engine) -> None`` raising on bad output.
    validate: object = None

    def __post_init__(self):
        if not isinstance(self.nthreads, int) or self.nthreads <= 0:
            raise InvalidProgramError(
                f"nthreads must be a positive int, got {self.nthreads!r}")
        if self.heap_bytes <= 0:
            raise InvalidProgramError(
                f"heap_bytes must be positive, got {self.heap_bytes}")


@dataclass
class RunResult:
    """Everything a benchmark needs from one simulation run."""

    program: str
    system: str
    cycles: int
    seconds: float
    hitm_loads: int
    hitm_stores: int
    sync_ops: int
    data_ops: int
    faults: dict
    alloc_bytes: int
    memory_bytes: dict              # category -> bytes
    runtime_report: dict            # runtime-specific (detector, repair)
    env: dict
    validated: bool = True
    error: str = ""

    @property
    def hitm_total(self):
        """HITM loads + HITM stores."""
        return self.hitm_loads + self.hitm_stores

    @property
    def total_memory(self):
        """Total footprint across every memory category (bytes)."""
        return sum(self.memory_bytes.values())
