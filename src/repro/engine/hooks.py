"""Runtime hook interface.

A *runtime system* (plain pthreads, TMI, Sheriff, LASER) plugs into the
engine through this interface.  The engine owns scheduling and op
execution; the runtime owns memory layout, allocator placement, sync
interposition, consistency callbacks, sampling, and repair.

The default implementations are no-ops so that a runtime only overrides
what it changes — this is the code-level expression of TMI's
compatible-by-default principle (section 3).

Runtime hooks participate in simulation (they charge cycles and mutate
state); passive instrumentation — the race sanitizer, the HITM
ground-truth collector — attaches instead as an
:class:`~repro.analysis.observer.EngineObserver` via
``Engine.attach_observer``, which charges nothing and cannot perturb
results.
"""

from repro.sim.costs import PAGE_4K


class RuntimeHooks:
    """Base runtime: override points with no-op defaults."""

    #: Display name used in reports.
    name = "base"
    #: If nonzero, ``on_tick`` fires every this many cycles of machine time.
    tick_cycles = 0
    #: Armed :class:`~repro.faults.FaultInjector`, or None (the
    #: default: no fault plan, zero-cost injection sites).  The eval
    #: runner arms this before ``setup``.
    faults = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self, engine):
        """Create the root address space, standard mappings, and the
        allocator.  Must set ``engine.root_aspace`` and
        ``engine.allocator``."""
        raise NotImplementedError

    def teardown(self, engine):
        """End-of-program work (final commits, report finalization)."""

    def check_workload(self, program):
        """Raise :class:`~repro.errors.IncompatibleWorkloadError` if this
        runtime cannot run ``program`` (e.g. Sheriff on native inputs)."""

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def on_thread_created(self, engine, thread):
        """New application thread (pthread_create interposition)."""

    def on_thread_exit(self, engine, thread):
        """Thread finished (final PTSB commit happens here)."""

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def exec_access_override(self, engine, thread, op):
        """Fully intercept a data access; return ``(cost, value)`` or
        None to use the engine's default path (LASER's software store
        buffer lives here)."""
        return None

    def translate(self, engine, thread, op, va, width, is_write):
        """Translate an access to a physical address.

        Runtimes implementing code-centric consistency route atomic,
        assembly, and volatile accesses to the always-shared mapping
        here.  Returns a :class:`~repro.sim.addrspace.Translation`.
        """
        return thread.process.aspace.translate(va, width, is_write)

    def access_extra_cost(self, engine, thread, op):
        """Extra cycles charged per data access (instrumentation)."""
        return 0

    # ------------------------------------------------------------------
    # allocator
    # ------------------------------------------------------------------
    def malloc(self, engine, thread, size, align):
        """Allocate heap memory; returns ``(addr, cost)``."""
        return engine.allocator.malloc(thread.tid, size, align)

    def free(self, engine, thread, addr):
        """Free heap memory; returns cost."""
        return engine.allocator.free(thread.tid, addr)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def on_sync_object_init(self, engine, thread, obj):
        """A mutex/barrier/condvar was initialized (redirection point)."""

    def sync_cost_extra(self, engine, thread, obj):
        """Extra cycles per sync op (e.g. pshared indirection)."""
        return 0

    def on_sync_acquired(self, engine, thread, obj, kind):
        """A lock was acquired / a barrier was passed.  Returns extra
        cycles (PTSB empty-on-acquire happens here)."""
        return 0

    def on_sync_release(self, engine, thread, obj, kind):
        """About to release a lock / arrive at a barrier.  Returns extra
        cycles (PTSB commit-on-release happens here)."""
        return 0

    # ------------------------------------------------------------------
    # code-centric consistency callbacks (section 3.4.2)
    # ------------------------------------------------------------------
    def on_region_begin(self, engine, thread, kind, ordering):
        """Entering an atomic or asm region.  Returns extra cycles."""
        return 0

    def on_region_end(self, engine, thread, kind):
        """Leaving an atomic or asm region.  Returns extra cycles."""
        return 0

    # ------------------------------------------------------------------
    # periodic work
    # ------------------------------------------------------------------
    def on_tick(self, engine, now):
        """Fires every ``tick_cycles`` of machine time (detector pass)."""

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_report(self, engine):
        """Runtime-specific memory overheads in bytes, by category."""
        return {}

    def fill_metrics(self, engine, registry):
        """Fold runtime statistics into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        The default folds the legacy ``report()`` dict (when the
        runtime defines one) under ``runtime.*`` gauges labeled with
        the runtime's name, so every system participates in the
        metrics surface without bespoke code; runtimes with richer
        statistics (TMI) override this and add typed instruments.
        """
        report = getattr(self, "report", None)
        if callable(report):
            registry.ingest("runtime", report(engine),
                            system=self.name)

    # ------------------------------------------------------------------
    # conveniences shared by concrete runtimes
    # ------------------------------------------------------------------
    #: Default page size runtimes use for their mappings.
    page_size = PAGE_4K
