"""Simulated threads and processes.

A :class:`SimThread` is a Python generator plus an execution context:
the core it runs on, the :class:`SimProcess` whose address space its
accesses translate through, its code-centric region stack, and stats.

Thread-to-process conversion — the heart of TMI's repair (section 3.2)
— is literally ``thread.process = <new SimProcess with a forked address
space>``; after that, per-page protection changes in the new space no
longer affect other threads.
"""

from dataclasses import dataclass, field

#: Thread states.
READY = "ready"
BLOCKED = "blocked"
PARKED = "parked"       # stopped by ptrace
DONE = "done"


@dataclass(eq=False)
class SimProcess:
    """A process: a pid and an address space."""

    pid: int
    aspace: object
    name: str = ""
    threads: list = field(default_factory=list)
    #: Installed by runtimes that maintain a PTSB for this process.
    ptsb: object = None


class SimThread:
    """One simulated thread of execution."""

    def __init__(self, tid, name, core, process, body):
        self.tid = tid
        self.name = name or f"t{tid}"
        self.core = core
        self.process = process
        self.body = body
        self.gen = None                 # generator, set by the engine
        self.state = READY
        self.ready_time = 0
        self.pending_value = None       # sent into the generator next step
        self.pending_penalty = 0        # cycles charged when next scheduled
        self.region_stack = []          # [(kind, ordering)] innermost last
        self.joiners = []               # tids blocked in join on us
        self.blocked_on = None          # sync object or ('join', tid)
        self.seq = 0                    # scheduler tiebreaker
        # in-flight AccessRun continuation (engine-owned): the engine
        # yields the core mid-run whenever another thread becomes
        # runnable, then resumes here instead of re-entering the
        # generator
        self.run_op = None              # the AccessRun being executed
        self.run_index = 0              # next access within the run
        self.run_values = None          # loads accumulated so far
        # vector-executor per-thread memo (engine-owned, perf only):
        # the compiled form of run_op cached by identity (one ``is``
        # check instead of hashing the op dataclass every dispatch) and
        # whether the last dispatch of this run ended on a hit-priced
        # access (a cold flag skips the batch-kernel attempt entirely on
        # contended lines — it cannot change simulated results, only
        # when the always-exact kernel is consulted)
        self.vec_op = None
        self.vec_comp = None
        self.vec_hot = True
        # statistics
        self.ops = 0
        self.loads = 0
        self.stores = 0
        self.atomics = 0
        self.sync_ops = 0
        self.cycles = 0

    # ------------------------------------------------------------------
    @property
    def current_region(self):
        """Innermost code-centric region, or None for regular code."""
        return self.region_stack[-1] if self.region_stack else None

    @property
    def in_atomic_region(self):
        """Whether the thread is inside an atomic consistency region."""
        return any(kind == "atomic" for kind, _ in self.region_stack)

    @property
    def in_asm_region(self):
        """Whether the thread is inside an inline-assembly region."""
        return any(kind == "asm" for kind, _ in self.region_stack)

    def __repr__(self):
        return (f"SimThread({self.tid}, {self.name!r}, core={self.core}, "
                f"pid={self.process.pid}, {self.state})")
