"""The discrete-event execution engine.

Runs a :class:`~repro.engine.program.Program` on a simulated
:class:`~repro.sim.machine.Machine` under a runtime
(:class:`~repro.engine.hooks.RuntimeHooks`).

Scheduling is deterministic: the runnable thread with the smallest ready
time executes one ISA op; ties break by insertion order.  Each op's
cycle cost advances that thread's core clock.  Blocking (locks,
barriers, joins) parks threads off the ready heap; stop-the-world
requests (the monitor's ptrace attach) park every thread at its next op
boundary — exactly where a real signal stop would land.

A :class:`~repro.schedule.SchedulePolicy` passed as ``policy=`` makes
the thread-selection decision pluggable: at every op boundary the
policy picks the next thread from the full runnable set, the engine
records the decision, and the log replays any interleaving exactly
(see :mod:`repro.schedule`).  With no policy the engine takes the
original heap-driven fast path, untouched.
"""

import heapq
import os

from repro.engine import layout
from repro.engine.context import ThreadCtx
from repro.engine.hooks import RuntimeHooks
from repro.engine.program import RunResult
from repro.engine.thread import (BLOCKED, DONE, PARKED, READY, SimProcess,
                                 SimThread)
from repro.errors import CycleBudgetError, DeadlockError, SimulationError
from repro.isa import ops as O
from repro.isa.lowering import validate_run
from repro.sync.objects import Barrier, Condvar, Mutex


def _ready_order(thread):
    """Candidate sort key: the heap's (ready_time, seq) order, so index
    0 is always the thread the default scheduler would run."""
    return (thread.ready_time, thread.seq)


class Engine:
    """Executes one program under one runtime on one machine."""

    def __init__(self, program, runtime, machine=None, n_cores=None,
                 costs=None, max_cycles=200_000_000_000, policy=None,
                 vector=None, placement=None):
        from repro.sim.machine import Machine
        if n_cores is None:
            n_cores = program.nthreads + 2
        self.machine = machine or Machine(n_cores=n_cores, costs=costs)
        #: Thread-placement policy (repro.mapping); None keeps the
        #: historical round-robin formula in :meth:`_create_thread`.
        self.placement = placement
        self.costs = self.machine.costs
        self.program = program
        self.runtime = runtime
        self.max_cycles = max_cycles
        #: Schedule policy (repro.schedule); None keeps the heap-driven
        #: fast path with zero per-op overhead.
        self.policy = policy
        self._policy_notify = (policy is not None
                               and getattr(policy, "wants_op_events",
                                           False))
        #: Decision log: chosen index into the runnable candidate list
        #: (sorted by ready time, then seq) at every point where more
        #: than one thread was runnable.  Only populated in policy mode.
        self.schedule_decisions = []

        self.threads = {}
        self.processes = {}
        self._next_tid = 0
        self._next_pid = 0
        self._heap = []                # (ready_time, seq, tid)
        self._seq = 0
        self._stop_world = []          # pending monitor callbacks
        self._next_tick = runtime.tick_cycles or None
        self._mutex_ids = 0
        self._barrier_ids = 0
        self._condvar_ids = 0
        self.sync_objects = []
        #: Service core for the monitor/detector (last core).
        self.service_core = self.machine.n_cores - 1
        self._finished = False
        #: Analysis observer (repro.analysis); None keeps every
        #: emission guard a single attribute test on the hot path.
        self._observer = None
        #: Vector batch executor (repro.engine.vector); constructed in
        #: :meth:`run` once eligibility is known.  ``vector=False`` (or
        #: the REPRO_NO_VECTOR environment variable) forces the serial
        #: path; the default enables it whenever exactness-safe.
        if vector is None:
            vector = not os.environ.get("REPRO_NO_VECTOR")
        self._vector_enabled = bool(vector)
        self._vector = None

        # generic lock/barrier instruction sites (glibc text)
        self._lock_site = program.binary.site("atomic", 4, "pthread_lock")
        self._barrier_site = program.binary.site("atomic", 4,
                                                 "pthread_barrier")

        # Hook-override flags: the pthreads baseline leaves every access
        # hook at its no-op default, so the hot path can skip the calls
        # entirely instead of paying a Python frame per no-op.
        rt_cls = type(runtime)
        self._rt_override = (
            getattr(rt_cls, "exec_access_override", None)
            is not RuntimeHooks.exec_access_override)
        self._rt_translate = (getattr(rt_cls, "translate", None)
                              is not RuntimeHooks.translate)
        self._rt_extra = (getattr(rt_cls, "access_extra_cost", None)
                          is not RuntimeHooks.access_extra_cost)

        # Type-keyed dispatch: one dict probe on the op's exact class
        # instead of walking an isinstance chain per op.  Op classes are
        # final (frozen, slotted dataclasses), so exact-class keying is
        # sound.
        self._exec_table = {
            O.Compute: self._exec_compute,
            O.Load: self._exec_load,
            O.Store: self._exec_store,
            O.AccessRun: self._exec_run_op,
            O.RmwSeq: self._exec_seq_op,
            O.StoreSeq: self._exec_seq_op,
            O.AtomicLoad: self._exec_access,
            O.AtomicStore: self._exec_access,
            O.AtomicRMW: self._exec_access,
            O.BulkTouch: self._exec_bulk,
            O.RegionBegin: self._exec_region_begin,
            O.RegionEnd: self._exec_region_end,
            O.Fence: self._exec_fence,
            O.MutexLock: self._exec_lock_op,
            O.MutexUnlock: self._exec_unlock_op,
            O.BarrierWait: self._exec_barrier_op,
            O.CondWait: self._exec_cond_wait_op,
            O.CondSignal: self._exec_cond_signal_op,
            O.Malloc: self._exec_malloc,
            O.FreeOp: self._exec_free,
            O.ThreadCreate: self._exec_thread_create,
            O.ThreadJoin: self._exec_thread_join,
        }

        runtime.check_workload(program)
        runtime.setup(self)            # sets root_aspace, allocator
        root = SimProcess(pid=self._next_pid, aspace=self.root_aspace,
                          name="app")
        self._next_pid += 1
        self.processes[root.pid] = root
        self.root_process = root

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def attach_observer(self, observer):
        """Attach an analysis observer (see :mod:`repro.analysis`).

        Must happen before :meth:`run`.  Observer callbacks charge no
        cycles; with no observer attached none are emitted.  A second
        attach wraps both observers in an
        :class:`~repro.analysis.observer.ObserverMux`, so the race
        sanitizer and a tracer can ride the same run.

        Observers that override ``on_hitm`` (the tracer) are also
        registered as machine HITM listeners; the listener charges zero
        cycles, so simulated results are unchanged.
        """
        from repro.analysis.observer import EngineObserver, ObserverMux
        if self._observer is None:
            self._observer = observer
        elif isinstance(self._observer, ObserverMux):
            self._observer.add(observer)
        else:
            self._observer = ObserverMux([self._observer, observer])
        if type(observer).on_hitm is not EngineObserver.on_hitm:
            def _hitm_listener(event, _observer=observer):
                _observer.on_hitm(event)
                return 0
            self.machine.add_hitm_listener(_hitm_listener)
        observer.on_attach(self)

    def run(self):
        """Execute the program to completion; returns a RunResult."""
        self._build_vector()
        main = self._create_thread(self.program.main, "main",
                                   self.root_process)
        self.runtime.on_thread_created(self, main)
        if self._observer is not None:
            self._observer.on_thread_create(None, main.tid)
        self._schedule(main, 0)
        if self.policy is not None:
            self._run_policy_loop()
        else:
            self._run_heap_loop()
        unfinished = [t.tid for t in self.threads.values()
                      if t.state != DONE]
        if unfinished:
            raise DeadlockError(unfinished)
        return self.finish()

    def _build_vector(self):
        """Construct the vector executor when the run is eligible.

        Eligibility is the fallback-boundary contract from
        :mod:`repro.engine.vector`: no schedule policy, no runtime
        access hooks (override/translate/extra-cost — TMI, SHERIFF and
        LASER runtimes all intercept accesses), no fault injector, and
        no observer unless it declares itself ``vector_safe`` (its
        per-access callbacks are no-ops).  Ineligible runs keep
        ``_vector`` at None — the serial path, byte-identical anyway.
        """
        if not self._vector_enabled or self.policy is not None:
            return
        if self._rt_override or self._rt_translate or self._rt_extra:
            return
        if getattr(self.runtime, "faults", None) is not None:
            return
        if self._observer is not None and not getattr(
                self._observer, "vector_safe", False):
            return
        from repro.engine.vector import VectorExecutor, vector_available
        if vector_available():
            self._vector = VectorExecutor(self)

    def _run_heap_loop(self):
        """The original heap-driven scheduling loop (fast path)."""
        while self._heap:
            ready_time, seq, tid = heapq.heappop(self._heap)
            thread = self.threads[tid]
            if thread.state != READY or thread.seq != seq:
                continue
            if self._stop_world:
                self._park(thread, ready_time)
                continue
            self._dispatch(thread, ready_time)
            vector = self._vector
            if vector is not None and vector.hint:
                vector.hint = False
                vector.try_lockstep()
            if self._next_tick is not None:
                self._run_ticks()
            if self.machine.now > self.max_cycles:
                raise CycleBudgetError(self.machine.now, self.max_cycles,
                                       trace=self.schedule_trace())

    def _run_policy_loop(self):
        """Policy-driven scheduling: the policy picks the next thread
        from the full runnable set at every op boundary, and the engine
        records the decision.

        Stale heap entries accumulate here (the loop selects from the
        thread table, not the heap); :meth:`_run_accesses` drains them
        opportunistically, and every access run yields after a single
        access so each one is an enumerable decision point.
        """
        policy = self.policy
        policy.reset(self)
        decisions = self.schedule_decisions
        threads = self.threads
        while True:
            candidates = [t for t in threads.values() if t.state == READY]
            if not candidates:
                break
            candidates.sort(key=_ready_order)
            if self._stop_world:
                for thread in candidates:
                    self._park(thread, thread.ready_time)
                continue
            if len(candidates) == 1:
                thread = candidates[0]
            else:
                index = policy.choose(candidates)
                if not 0 <= index < len(candidates):
                    raise SimulationError(
                        f"policy {policy.name} chose index {index} of "
                        f"{len(candidates)} candidates")
                decisions.append(index)
                thread = candidates[index]
            self._dispatch(thread, thread.ready_time)
            if self._next_tick is not None:
                self._run_ticks()
            if self.machine.now > self.max_cycles:
                raise CycleBudgetError(self.machine.now, self.max_cycles,
                                       trace=self.schedule_trace())

    def schedule_trace(self):
        """Snapshot of the schedule decisions made so far, or None for
        default (policy-less) runs, which record nothing."""
        if self.policy is None:
            return None
        return {"policy": self.policy.name,
                "seed": getattr(self.policy, "seed", None),
                "decisions": list(self.schedule_decisions)}

    def finish(self):
        """Teardown and result collection."""
        if not self._finished:
            self.runtime.teardown(self)
            self._finished = True
        return self._build_result()

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------
    def _create_thread(self, body, name, process):
        tid = self._next_tid
        self._next_tid += 1
        if self.placement is not None:
            core = self.placement.core_for(tid)
        else:
            core = tid % (self.machine.n_cores - 1)   # last core reserved
        thread = SimThread(tid, name, core, process, body)
        ctx = ThreadCtx(self, thread, self.program.binary)
        thread.gen = body(ctx)
        process.threads.append(thread)
        self.threads[tid] = thread
        return thread

    def convert_thread_to_process(self, thread, name=""):
        """Re-home ``thread`` into a fresh process with a forked address
        space (the fork the monitor injects during T2P, section 3.2).

        Returns the new :class:`SimProcess`.  Charges nothing — callers
        (ptrace monitor) account the cost.
        """
        old = thread.process
        pid = self._next_pid
        self._next_pid += 1
        aspace = old.aspace.fork(name or f"p{pid}")
        proc = SimProcess(pid=pid, aspace=aspace,
                          name=name or f"{thread.name}-proc")
        self.processes[pid] = proc
        old.threads.remove(thread)
        thread.process = proc
        proc.threads.append(thread)
        # the converted thread's accesses now translate to new physical
        # frames as pages go COW; drop the owner micro-cache rather than
        # reasoning about which entries the re-homing can strand
        self.machine.directory.invalidate_fast_path()
        return proc

    def request_stop_world(self, callback):
        """Stop every thread at its next op boundary, then run
        ``callback(engine, stop_time)`` (the monitor's intervention)."""
        self._stop_world.append(callback)

    # ------------------------------------------------------------------
    # sync object registration (pthread_*_init interposition points)
    # ------------------------------------------------------------------
    def sync_object_size(self, kind):
        """sizeof(pthread_<kind>_t) for the workload's malloc call."""
        return {"mutex": Mutex.SIZE, "barrier": Barrier.SIZE,
                "condvar": Condvar.SIZE}[kind]

    def register_mutex(self, thread, addr, name=""):
        """pthread_mutex_init: create a mutex at ``addr``."""
        self._mutex_ids += 1
        mutex = Mutex(mid=self._mutex_ids, addr=addr, name=name)
        self.sync_objects.append(mutex)
        extra = self.runtime.on_sync_object_init(self, thread, mutex) or 0
        self.machine.advance(thread.core, extra)
        return mutex

    def register_barrier(self, thread, addr, parties, name=""):
        """pthread_barrier_init for ``parties`` threads at ``addr``."""
        self._barrier_ids += 1
        barrier = Barrier(bid=self._barrier_ids, addr=addr, parties=parties,
                          name=name)
        self.sync_objects.append(barrier)
        extra = self.runtime.on_sync_object_init(self, thread, barrier) or 0
        self.machine.advance(thread.core, extra)
        return barrier

    def register_condvar(self, thread, addr, name=""):
        """pthread_cond_init: create a condvar at ``addr``."""
        self._condvar_ids += 1
        condvar = Condvar(cid=self._condvar_ids, addr=addr, name=name)
        self.sync_objects.append(condvar)
        extra = self.runtime.on_sync_object_init(self, thread, condvar) or 0
        self.machine.advance(thread.core, extra)
        return condvar

    def stack_base(self, tid):
        """Base VA of ``tid``'s stack mapping."""
        return layout.stack_base(tid)

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, thread, at_time):
        thread.state = READY
        thread.ready_time = at_time
        self._seq += 1
        thread.seq = self._seq
        heapq.heappush(self._heap, (at_time, self._seq, thread.tid))

    def _park(self, thread, ready_time):
        thread.state = PARKED
        thread.ready_time = ready_time
        if not any(t.state == READY for t in self.threads.values()):
            self._run_stop_world()

    def _run_stop_world(self):
        stop_time = max(
            [t.ready_time for t in self.threads.values()
             if t.state == PARKED] + [self.machine.now])
        callbacks, self._stop_world = self._stop_world, []
        for callback in callbacks:
            callback(self, stop_time)
        for thread in self.threads.values():
            if thread.state == PARKED:
                penalty = thread.pending_penalty
                thread.pending_penalty = 0
                self._schedule(thread,
                               max(thread.ready_time, stop_time) + penalty)

    def _dispatch(self, thread, ready_time):
        clock = max(self.machine.core_clock[thread.core], ready_time)
        clock += thread.pending_penalty
        thread.pending_penalty = 0
        self.machine.core_clock[thread.core] = clock
        if thread.run_op is not None:
            # resume an in-flight AccessRun/RmwSeq/StoreSeq without
            # re-entering the generator
            if self._policy_notify:
                self.policy.notify_op(thread.tid,
                                      thread.run_op.__class__.__name__)
            if thread.run_op.__class__ is O.AccessRun:
                self._run_accesses(thread)
            else:
                self._run_seq(thread)
            return
        try:
            op = thread.gen.send(thread.pending_value)
        except StopIteration:
            self._finish_thread(thread)
            return
        thread.pending_value = None
        thread.ops += 1
        if self._policy_notify:
            self.policy.notify_op(thread.tid, op.__class__.__name__)
        handler = self._exec_table.get(op.__class__)
        if handler is None:
            raise SimulationError(f"unknown op {op!r}")
        cost, value, blocked = handler(thread, op)
        if blocked:
            return
        self.machine.advance(thread.core, cost)
        thread.cycles += cost
        thread.pending_value = value
        self._schedule(thread, self.machine.core_clock[thread.core])

    def _finish_thread(self, thread):
        if thread.region_stack:
            kinds = [kind for kind, _ in thread.region_stack]
            raise SimulationError(
                f"{thread} exited with open region(s): {kinds}")
        thread.state = DONE
        observer = self._observer
        self.runtime.on_thread_exit(self, thread)
        if observer is not None:
            observer.on_thread_exit(thread.tid)
        now = self.machine.core_clock[thread.core]
        for tid in thread.joiners:
            joiner = self.threads[tid]
            if joiner.state == BLOCKED:
                if observer is not None:
                    observer.on_hb_edge(thread.tid, tid)
                extra = self.runtime.on_sync_acquired(self, joiner, None,
                                                      "join")
                self._wake(joiner, now, extra)
        thread.joiners = []

    def _wake(self, thread, at_time, extra=0):
        thread.blocked_on = None
        self._schedule(thread, at_time + extra)

    def _run_ticks(self):
        now = self.machine.now
        while self._next_tick is not None and now >= self._next_tick:
            self.runtime.on_tick(self, self._next_tick)
            self._next_tick += self.runtime.tick_cycles

    # ------------------------------------------------------------------
    # op execution
    # ------------------------------------------------------------------
    def _exec(self, thread, op):
        """Execute one op; returns (cost, value_to_send, blocked)."""
        handler = self._exec_table.get(op.__class__)
        if handler is None:
            raise SimulationError(f"unknown op {op!r}")
        return handler(thread, op)

    def _exec_compute(self, thread, op):
        return op.cycles, None, False

    def _exec_region_begin(self, thread, op):
        thread.region_stack.append((op.kind, op.ordering))
        cost = self.runtime.on_region_begin(self, thread, op.kind,
                                            op.ordering)
        return cost, None, False

    def _exec_region_end(self, thread, op):
        if not thread.region_stack or \
                thread.region_stack[-1][0] != op.kind:
            raise SimulationError(
                f"unbalanced region end {op.kind} in {thread}")
        thread.region_stack.pop()
        cost = self.runtime.on_region_end(self, thread, op.kind)
        return cost, None, False

    def _exec_fence(self, thread, op):
        if self._observer is not None:
            self._observer.on_fence(thread.tid)
        return self.costs.fence, None, False

    def _exec_lock_op(self, thread, op):
        return self._exec_lock(thread, op.mutex)

    def _exec_unlock_op(self, thread, op):
        return self._exec_unlock(thread, op.mutex)

    def _exec_barrier_op(self, thread, op):
        return self._exec_barrier(thread, op.barrier)

    def _exec_cond_wait_op(self, thread, op):
        return self._exec_cond_wait(thread, op.condvar, op.mutex)

    def _exec_cond_signal_op(self, thread, op):
        return self._exec_cond_signal(thread, op.condvar, op.broadcast)

    def _exec_malloc(self, thread, op):
        addr, cost = self.runtime.malloc(self, thread, op.size, op.align)
        return cost, addr, False

    def _exec_free(self, thread, op):
        cost = self.runtime.free(self, thread, op.addr)
        return cost, None, False

    def _exec_thread_create(self, thread, op):
        child = self._create_thread(op.body, op.name, thread.process)
        self.runtime.on_thread_created(self, child)
        if self._observer is not None:
            self._observer.on_thread_create(thread.tid, child.tid)
        cost = 16_000                      # pthread_create
        start = self.machine.core_clock[thread.core] + cost
        self._schedule(child, start)
        return cost, child.tid, False

    def _exec_thread_join(self, thread, op):
        target = self.threads[op.tid]
        if target.state == DONE:
            if self._observer is not None:
                self._observer.on_hb_edge(target.tid, thread.tid)
            extra = self.runtime.on_sync_acquired(self, thread, None,
                                                  "join")
            return 2_000 + extra, None, False
        target.joiners.append(thread.tid)
        thread.state = BLOCKED
        thread.blocked_on = ("join", op.tid)
        return 0, None, True

    # ------------------------------------------------------------------
    # data accesses
    # ------------------------------------------------------------------
    def _translate_pa(self, thread, op, va, width, is_write):
        """(pa, cost) for one access, taking every fast lane the active
        runtime's hook overrides allow."""
        if self._rt_translate:
            translation = self.runtime.translate(self, thread, op, va,
                                                 width, is_write)
            return translation.pa, translation.cost
        aspace = thread.process.aspace
        pa = aspace.fast_pa(va, width)
        if pa is not None:
            return pa, 0
        translation = aspace.translate(va, width, is_write)
        return translation.pa, translation.cost

    def _exec_load(self, thread, op):
        if self._observer is not None:
            self._observer.on_access(thread.tid, op.site, op.addr,
                                     op.width, False, op.volatile)
        if self._rt_override:
            override = self.runtime.exec_access_override(self, thread, op)
            if override is not None:
                return override[0], override[1], False
        pa, cost = self._translate_pa(thread, op, op.addr, op.width, False)
        if self._rt_extra:
            cost += self.runtime.access_extra_cost(self, thread, op)
        thread.loads += 1
        traffic, value = self.machine.mem_access(
            thread.core, thread.tid, op.site.pc, op.addr, pa,
            op.width, False)
        return cost + traffic, value, False

    def _exec_store(self, thread, op):
        if self._observer is not None:
            self._observer.on_access(thread.tid, op.site, op.addr,
                                     op.width, True, op.volatile)
        if self._rt_override:
            override = self.runtime.exec_access_override(self, thread, op)
            if override is not None:
                return override[0], override[1], False
        pa, cost = self._translate_pa(thread, op, op.addr, op.width, True)
        if self._rt_extra:
            cost += self.runtime.access_extra_cost(self, thread, op)
        thread.stores += 1
        traffic, _ = self.machine.mem_access(
            thread.core, thread.tid, op.site.pc, op.addr, pa,
            op.width, True, op.value)
        return cost + traffic, None, False

    def _exec_access(self, thread, op):
        """Atomic accesses (and the pre-fast-path generic fallback)."""
        if self._observer is not None:
            is_rmw = isinstance(op, O.AtomicRMW)
            observed_write = is_rmw or isinstance(
                op, (O.Store, O.AtomicStore))
            if isinstance(op, (O.AtomicLoad, O.AtomicStore, O.AtomicRMW)):
                self._observer.on_atomic(
                    thread.tid, op.site, op.addr, op.width,
                    observed_write, is_rmw, op.ordering)
            else:
                self._observer.on_access(
                    thread.tid, op.site, op.addr, op.width,
                    observed_write, op.volatile)
        if self._rt_override:
            override = self.runtime.exec_access_override(self, thread, op)
            if override is not None:
                cost, value = override
                return cost, value, False

        machine = self.machine
        is_write = isinstance(op, (O.Store, O.AtomicStore, O.AtomicRMW))
        pa, cost = self._translate_pa(thread, op, op.addr, op.width,
                                      is_write)
        if self._rt_extra:
            cost += self.runtime.access_extra_cost(self, thread, op)
        value = None

        if isinstance(op, O.AtomicRMW):
            thread.atomics += 1
            old = machine.physmem.read_int(pa, op.width)
            if op.op == "add":
                new = old + op.operand
            elif op.op == "xchg":
                new = op.operand
            elif op.op == "cas":
                new = op.operand if old == op.expected else old
            else:
                raise SimulationError(f"unknown RMW op {op.op!r}")
            traffic, _ = machine.mem_access(
                thread.core, thread.tid, op.site.pc, op.addr, pa,
                op.width, True, new)
            cost += traffic + self.costs.atomic_extra
            value = old
        elif is_write:
            if isinstance(op, O.AtomicStore):
                thread.atomics += 1
                if op.ordering == O.SEQ_CST:
                    cost += self.costs.fence
            else:
                thread.stores += 1
            traffic, _ = machine.mem_access(
                thread.core, thread.tid, op.site.pc, op.addr, pa,
                op.width, True, op.value)
            cost += traffic
        else:
            if isinstance(op, O.AtomicLoad):
                thread.atomics += 1
            else:
                thread.loads += 1
            traffic, value = machine.mem_access(
                thread.core, thread.tid, op.site.pc, op.addr, pa,
                op.width, False)
            cost += traffic
        return cost, value, False

    # ------------------------------------------------------------------
    # batched access runs
    # ------------------------------------------------------------------
    def _exec_run_op(self, thread, op):
        """Begin an :class:`~repro.isa.ops.AccessRun`.

        The run executes access-by-access, advancing the owning core's
        clock exactly as an unbatched loop would, and yields back to the
        scheduler at precisely the points where the serial engine would
        have context-switched: another runnable thread's ready time
        reaching this core's clock, a pending stop-the-world, a due
        runtime tick, or the cycle budget.  The continuation lives on
        the thread (``run_op``/``run_index``/``run_values``), so resuming
        does not touch the workload generator.
        """
        # reject malformed shapes before a single access executes, so
        # the serial and vector paths fail with the same typed error at
        # the same simulated cycle
        validate_run(op)
        thread.run_op = op
        thread.run_index = 0
        thread.run_values = None if op.is_write else []
        self._run_accesses(thread)
        return 0, None, True

    def _run_accesses(self, thread):
        op = thread.run_op
        machine = self.machine
        core = thread.core
        core_clock = machine.core_clock
        heap = self._heap
        threads = self.threads
        runtime = self.runtime
        count = op.count
        stride = op.stride
        width = op.width
        is_write = op.is_write
        value = op.value
        pc = op.site.pc
        values = thread.run_values
        tid = thread.tid
        max_cycles = self.max_cycles
        next_tick = self._next_tick
        rt_translate = self._rt_translate
        rt_extra = self._rt_extra
        observer = self._observer
        # LASER-style full interception needs the per-access op stream;
        # synthesize singles and take the unbatched path
        single_cls = (O.Store if is_write else O.Load) \
            if self._rt_override else None
        aspace = thread.process.aspace
        mem_access = machine.mem_access
        # bound objects, not snapshots: _tcache/_fast are mutated in
        # place (cleared, never reassigned) so the bindings stay live
        tcache = aspace._tcache
        dir_access = machine.directory.access
        write_int = machine.physmem.write_int
        read_int = machine.physmem.read_int
        # with no HITM listeners (plain pthreads), mem_access degenerates
        # to directory + physmem; drive those directly
        plain = not machine._hitm_listeners
        # only this core's clock moves while the run executes, so the
        # other cores' contribution to machine.now is a constant
        others_max = 0
        for c in range(len(core_clock)):
            if c != core and core_clock[c] > others_max:
                others_max = core_clock[c]
        index = thread.run_index
        start_index = index
        addr = op.addr + index * stride
        clock = core_clock[core]
        # nothing is pushed to or popped from the ready heap while the
        # run executes (the engine only re-schedules when it ends), so
        # the earliest other ready time is a constant: drop stale heap
        # entries once and peek once, exactly as the main loop would
        # have before each op
        while heap:
            ready_time, seq, next_tid = heap[0]
            waiter = threads[next_tid]
            if waiter.state == READY and waiter.seq == seq:
                break
            heapq.heappop(heap)
        head_ready = heap[0][0] if heap else None
        vector = self._vector
        comp = None
        batched = 0
        fast_cost = -1
        if vector is not None and single_cls is None:
            # identity memo: the same run object is re-dispatched many
            # times, so hash the op dataclass once per run, not once
            # per dispatch
            if op is thread.vec_op:
                comp = thread.vec_comp
            else:
                comp = vector.lookup(op)
                thread.vec_op = op
                thread.vec_comp = comp
                thread.vec_hot = True
            if comp is not None:
                fast_cost = (self.costs.store_hit if is_write
                             else self.costs.load_hit)
        # a run that last broke on a contended (miss-priced) access
        # stays cold: skip the kernel attempt until a hit-priced access
        # shows the line is back in the owner micro-cache
        try_vector = comp is not None and thread.vec_hot
        while True:
            if try_vector:
                # batch kernel: advances every access the serial loop
                # below would have executed fast-path without breaking;
                # falls through so the blocking access runs serially
                try_vector = False
                advanced = vector.advance(
                    thread, comp, index, addr, clock, others_max,
                    head_ready, next_tick, max_cycles)
                if advanced is not None:
                    k, clock, brk = advanced
                    index += k
                    addr += stride * k
                    batched += k
                    if index >= count or brk:
                        # batch breaks are scheduler bounds, not
                        # contention — stay hot for the next dispatch
                        try_vector = True
                        break
            if single_cls is not None:
                if is_write:
                    single = O.Store(op.site, addr, value, width,
                                     op.volatile)
                    cost, _v, _b = self._exec_store(thread, single)
                else:
                    single = O.Load(op.site, addr, width, op.volatile)
                    cost, loaded, _b = self._exec_load(thread, single)
                    values.append(loaded)
            else:
                if observer is not None:
                    observer.on_access(tid, op.site, addr, width,
                                       is_write, op.volatile)
                if rt_translate:
                    translation = runtime.translate(
                        self, thread, op, addr, width, is_write)
                    pa = translation.pa
                    cost = translation.cost
                else:
                    entry = tcache.get(addr >> 12)
                    if entry is not None and addr + width <= entry[1]:
                        pa = addr + entry[0]
                        cost = 0
                    else:
                        translation = aspace.translate(addr, width,
                                                       is_write)
                        pa = translation.pa
                        cost = translation.cost
                if rt_extra:
                    cost += runtime.access_extra_cost(self, thread, op)
                if plain:
                    outcome = dir_access(core, pa, width, is_write,
                                         clock)
                    cost += outcome.cost
                    if outcome.hitm_remotes:
                        machine.hitm_events += len(outcome.hitm_remotes)
                    if is_write:
                        write_int(pa, value, width)
                    else:
                        values.append(read_int(pa, width))
                elif is_write:
                    traffic, _ = mem_access(core, tid, pc, addr, pa,
                                            width, True, value)
                    cost += traffic
                else:
                    traffic, loaded = mem_access(core, tid, pc, addr, pa,
                                                 width, False)
                    cost += traffic
                    values.append(loaded)
            index += 1
            addr += stride
            clock += cost
            core_clock[core] = clock
            thread.cycles += cost
            if cost <= fast_cost:
                # a hit-priced access means the line is (re)installed in
                # the owner micro-cache: worth re-trying the batch kernel
                try_vector = True
            if index >= count:
                break
            # --- would the serial engine have switched away here? ---
            if self.policy is not None:
                # policy mode: every access is a decision point.  Under
                # the default policy this is schedule-identical to the
                # batched path — re-dispatching resumes the run at the
                # same clock — so cycle counts don't move.
                break
            if self._stop_world:
                break
            now = clock if clock > others_max else others_max
            if next_tick is not None and now >= next_tick:
                break
            if now > max_cycles:
                break
            if head_ready is not None and head_ready <= clock:
                break
        thread.run_index = index
        if comp is not None:
            thread.vec_hot = try_vector
            if index - start_index > batched:
                vector.note_fallback(tid, clock,
                                     index - start_index - batched)
        if single_cls is None:
            # _exec_load/_exec_store count for the synthesized-singles
            # path; the inline path counts the whole batch here
            if is_write:
                thread.stores += index - start_index
            else:
                thread.loads += index - start_index
        if index >= count:
            thread.run_op = None
            thread.run_values = None
            thread.pending_value = None if is_write else values
        self._schedule(thread, clock)

    def _exec_seq_op(self, thread, op):
        """Begin an :class:`~repro.isa.ops.RmwSeq` or
        :class:`~repro.isa.ops.StoreSeq`.

        Like :meth:`_exec_run_op`, the sequence executes element-by-
        element (each load/store through the full single-access path —
        observer callbacks, runtime hooks, coherence — and each compute
        step as pure clock advance), yielding the core at exactly the
        points the unbatched multi-yield loop would.  The continuation
        lives on the thread; ``run_index`` counts *sub-ops* (each
        element is its load/store/compute steps in order), so a break
        can land between an element's load and its store.
        """
        thread.run_op = op
        thread.run_index = 0
        thread.run_values = None
        self._run_seq(thread)
        return 0, None, True

    def _run_seq(self, thread):
        op = thread.run_op
        machine = self.machine
        core = thread.core
        core_clock = machine.core_clock
        heap = self._heap
        threads = self.threads
        is_rmw = op.__class__ is O.RmwSeq
        compute = op.compute
        width = op.width
        volatile = op.volatile
        if is_rmw:
            addrs = op.addrs
            deltas = op.deltas
            const_delta = deltas if isinstance(deltas, int) else None
            count = len(addrs)
            nphases = 3 if compute else 2
            mask = (1 << (8 * width)) - 1
            load_site = op.load_site
            store_site = op.store_site
        else:
            seq_values = op.values
            seq_addr = op.addr
            count = len(seq_values)
            nphases = 2 if compute else 1
            site = op.site
        total = count * nphases
        max_cycles = self.max_cycles
        next_tick = self._next_tick
        exec_load = self._exec_load
        exec_store = self._exec_store
        vector = self._vector
        load_hit = self.costs.load_hit
        store_hit = self.costs.store_hit
        # whether the latest access was hit-priced: a head-ready break
        # after a fast hit is the round-robin steady state the seq
        # lockstep kernel extrapolates, so it is worth hinting
        fastish = False
        # same dispatch-loop constants as _run_accesses: other cores'
        # clocks and the earliest other ready time cannot change while
        # this continuation runs
        others_max = 0
        for c in range(len(core_clock)):
            if c != core and core_clock[c] > others_max:
                others_max = core_clock[c]
        index = thread.run_index
        while heap:
            ready_time, seq, next_tid = heap[0]
            waiter = threads[next_tid]
            if waiter.state == READY and waiter.seq == seq:
                break
            heapq.heappop(heap)
        head_ready = heap[0][0] if heap else None
        clock = core_clock[core]
        while True:
            element, phase = divmod(index, nphases)
            if is_rmw:
                if phase == 0:
                    single = O.Load(load_site, addrs[element], width,
                                    volatile)
                    cost, loaded, _b = exec_load(thread, single)
                    thread.run_values = loaded
                    fastish = cost <= load_hit
                elif phase == 1:
                    delta = (const_delta if const_delta is not None
                             else deltas[element])
                    single = O.Store(
                        store_site, addrs[element],
                        (thread.run_values + delta) & mask, width,
                        volatile)
                    cost, _v, _b = exec_store(thread, single)
                    thread.run_values = None
                    fastish = cost <= store_hit
                else:
                    cost = compute
            elif phase == 0:
                single = O.Store(site, seq_addr, seq_values[element],
                                 width, volatile)
                cost, _v, _b = exec_store(thread, single)
                fastish = cost <= store_hit
            else:
                cost = compute
            # handlers may advance the core clock internally (e.g. a
            # store-buffer drain), so add the returned cost on top of
            # the live clock exactly as _dispatch's machine.advance does
            core_clock[core] += cost
            clock = core_clock[core]
            thread.cycles += cost
            index += 1
            if index >= total:
                break
            # --- would the serial engine have switched away here? ---
            if self.policy is not None:
                break
            if self._stop_world:
                break
            now = clock if clock > others_max else others_max
            if next_tick is not None and now >= next_tick:
                break
            if now > max_cycles:
                break
            if head_ready is not None and head_ready <= clock:
                if fastish and vector is not None:
                    vector.hint = True
                break
        thread.run_index = index
        if index >= total:
            thread.run_op = None
            thread.run_values = None
            thread.pending_value = None
        self._schedule(thread, clock)

    def _exec_bulk(self, thread, op):
        """Analytic streaming over a large range (native-input scale)."""
        aspace = thread.process.aspace
        mapping = aspace.mapping_at(op.addr)
        if mapping is None or op.addr + op.nbytes > mapping.end:
            raise SimulationError(
                f"bulk touch [{op.addr:#x}+{op.nbytes:#x}] outside mapping")
        faulted = getattr(mapping, "bulk_pages", None)
        if faulted is None:
            faulted = set()
            mapping.bulk_pages = faulted
        first = (op.addr - mapping.start) // mapping.page_size
        last = (op.addr + op.nbytes - 1 - mapping.start) \
            // mapping.page_size
        fault_pages = 0
        for index in range(first, last + 1):
            if index not in faulted:
                faulted.add(index)
                fault_pages += 1
        mapping.bulk_watermark = len(faulted) * mapping.page_size
        per_fault = (self.costs.fault_shared_file
                     if mapping.backing.file_backed else
                     self.costs.fault_anon)
        kind = ("shared_file" if mapping.backing.file_backed else "anon")
        aspace.fault_count[kind] += fault_pages
        lines = op.nbytes // 64
        cost = fault_pages * per_fault + lines * self.costs.stream_per_line
        thread.loads += 1
        return cost, None, False

    # ------------------------------------------------------------------
    # locks and barriers
    # ------------------------------------------------------------------
    def _sync_traffic(self, thread, obj, is_write=True):
        """Coherence traffic on the sync object's hot word."""
        hot = obj.hot_addr
        pa = thread.process.aspace.shared_pa(hot)
        cost, _ = self.machine.mem_access(
            thread.core, thread.tid, self._lock_site.pc, hot, pa,
            obj.width, is_write, 1 if is_write else None)
        return cost

    def _exec_lock(self, thread, mutex):
        thread.sync_ops += 1
        mutex.acquire_count += 1
        cost = self.costs.mutex_fast
        cost += self.runtime.sync_cost_extra(self, thread, mutex)
        cost += self._sync_traffic(thread, mutex)
        if mutex.owner_tid is None:
            mutex.owner_tid = thread.tid
            if self._observer is not None:
                self._observer.on_acquire(thread.tid, mutex)
            cost += self.runtime.on_sync_acquired(self, thread, mutex,
                                                  "lock")
            return cost, None, False
        mutex.contended_count += 1
        mutex.waiters.append(thread.tid)
        thread.state = BLOCKED
        thread.blocked_on = mutex
        self.machine.advance(thread.core, cost + self.costs.mutex_slow)
        thread.cycles += cost + self.costs.mutex_slow
        return 0, None, True

    def _exec_unlock(self, thread, mutex):
        if mutex.owner_tid != thread.tid:
            raise SimulationError(
                f"t{thread.tid} unlocking {mutex.name or mutex.mid} "
                f"owned by {mutex.owner_tid}")
        thread.sync_ops += 1
        cost = self.costs.mutex_fast
        cost += self.runtime.sync_cost_extra(self, thread, mutex)
        cost += self.runtime.on_sync_release(self, thread, mutex, "unlock")
        observer = self._observer
        if observer is not None:
            observer.on_release(thread.tid, mutex)
        cost += self._sync_traffic(thread, mutex)
        release_time = self.machine.core_clock[thread.core] + cost
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.owner_tid = next_tid
            woken = self.threads[next_tid]
            if observer is not None:
                observer.on_acquire(next_tid, mutex)
            extra = self.runtime.on_sync_acquired(self, woken, mutex,
                                                  "lock")
            self._wake(woken, release_time, extra)
        else:
            mutex.owner_tid = None
        return cost, None, False

    def _exec_barrier(self, thread, barrier):
        thread.sync_ops += 1
        barrier.wait_count += 1
        cost = self.costs.barrier_op
        cost += self.runtime.sync_cost_extra(self, thread, barrier)
        cost += self.runtime.on_sync_release(self, thread, barrier,
                                             "barrier")
        cost += self._sync_traffic(thread, barrier)
        arrive = self.machine.core_clock[thread.core] + cost
        barrier.arrived.append((thread.tid, arrive))
        if len(barrier.arrived) < barrier.parties:
            thread.state = BLOCKED
            thread.blocked_on = barrier
            self.machine.advance(thread.core, cost)
            thread.cycles += cost
            return 0, None, True
        release = max(at for _, at in barrier.arrived)
        if self._observer is not None:
            self._observer.on_barrier([tid for tid, _ in barrier.arrived])
        barrier.generation += 1
        arrivals, barrier.arrived = barrier.arrived, []
        for tid, _ in arrivals:
            if tid == thread.tid:
                continue
            waiter = self.threads[tid]
            extra = self.runtime.on_sync_acquired(self, waiter, barrier,
                                                  "barrier")
            self._wake(waiter, release, extra)
        extra = self.runtime.on_sync_acquired(self, thread, barrier,
                                              "barrier")
        self.machine.core_clock[thread.core] = release + extra
        thread.cycles += cost + extra
        self._schedule(thread, release + extra)
        # value already charged via explicit clock writes
        return 0, None, True

    def _exec_cond_wait(self, thread, condvar, mutex):
        """Atomically release the mutex and sleep on the condvar; the
        signaller hands the mutex back before the waiter resumes."""
        if mutex.owner_tid != thread.tid:
            raise SimulationError(
                f"t{thread.tid} cond_wait without holding the mutex")
        thread.sync_ops += 1
        cost = self.costs.mutex_slow
        cost += self.runtime.sync_cost_extra(self, thread, condvar)
        cost += self.runtime.on_sync_release(self, thread, condvar,
                                             "cond_wait")
        observer = self._observer
        if observer is not None:
            observer.on_release(thread.tid, mutex)
        cost += self._sync_traffic(thread, condvar)
        release_time = self.machine.core_clock[thread.core] + cost
        # release the mutex (as _exec_unlock, without hook duplication)
        if mutex.waiters:
            next_tid = mutex.waiters.pop(0)
            mutex.owner_tid = next_tid
            woken = self.threads[next_tid]
            if observer is not None:
                observer.on_acquire(next_tid, mutex)
            extra = self.runtime.on_sync_acquired(self, woken, mutex,
                                                  "lock")
            self._wake(woken, release_time, extra)
        else:
            mutex.owner_tid = None
        condvar.waiters.append((thread.tid, mutex))
        thread.state = BLOCKED
        thread.blocked_on = condvar
        self.machine.advance(thread.core, cost)
        thread.cycles += cost
        return 0, None, True

    def _exec_cond_signal(self, thread, condvar, broadcast):
        thread.sync_ops += 1
        cost = self.costs.mutex_fast
        cost += self.runtime.sync_cost_extra(self, thread, condvar)
        cost += self._sync_traffic(thread, condvar)
        signal_time = self.machine.core_clock[thread.core] + cost
        observer = self._observer
        count = len(condvar.waiters) if broadcast else 1
        for _ in range(min(count, len(condvar.waiters))):
            tid, mutex = condvar.waiters.pop(0)
            waiter = self.threads[tid]
            if observer is not None:
                observer.on_hb_edge(thread.tid, tid)
            if mutex.owner_tid is None:
                mutex.owner_tid = tid
                if observer is not None:
                    observer.on_acquire(tid, mutex)
                extra = self.runtime.on_sync_acquired(
                    self, waiter, mutex, "lock")
                extra += self.runtime.on_sync_acquired(
                    self, waiter, condvar, "cond_wake")
                self._wake(waiter, signal_time, extra)
            else:
                # must re-acquire: queue on the mutex; its release path
                # will wake and run the acquire hooks
                waiter.blocked_on = mutex
                mutex.waiters.append(tid)
        return cost, None, False

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _fault_counts(self):
        """Page-fault totals by kind, summed over every process."""
        faults = {"anon": 0, "shared_file": 0, "cow": 0}
        for proc in self.processes.values():
            for kind, count in proc.aspace.fault_count.items():
                faults[kind] += count
        return faults

    def _memory_by_category(self):
        """Memory footprint by category (application + runtime)."""
        memory = {"application": self._app_memory_bytes()}
        memory.update(self.runtime.memory_report(self))
        return memory

    def metrics(self, registry=None):
        """Collect the run's metrics into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        One deterministic, labeled namespace over the machine
        (HITM/clock counters), the engine (ops, threads, faults,
        memory), and the active runtime (via its ``fill_metrics``
        hook).  Purely end-of-run reads — collecting metrics never
        perturbs simulated state, and the snapshot is byte-identical
        for identical simulations regardless of ``REPRO_JOBS``.
        """
        from repro.obs import MetricsRegistry
        if registry is None:
            registry = MetricsRegistry()
        self.machine.fill_metrics(registry)
        threads = self.threads.values()
        registry.gauge("engine.threads").set(len(self.threads))
        registry.gauge("engine.processes").set(len(self.processes))
        registry.counter("engine.loads").inc(
            sum(t.loads for t in threads))
        registry.counter("engine.stores").inc(
            sum(t.stores for t in threads))
        registry.counter("engine.atomics").inc(
            sum(t.atomics for t in threads))
        registry.counter("engine.sync_ops").inc(
            sum(t.sync_ops for t in threads))
        registry.counter("engine.ops").inc(
            sum(t.ops for t in threads))
        for kind, count in sorted(self._fault_counts().items()):
            registry.counter("vm.faults", kind=kind).inc(count)
        for category, nbytes in sorted(
                self._memory_by_category().items()):
            registry.gauge("memory.bytes", category=category).set(nbytes)
        registry.gauge("alloc.bytes").set(
            self.allocator.allocated_bytes)
        vector = self._vector
        if vector is not None:
            registry.counter("vector.batched_ops").inc(
                vector.batched_ops)
            registry.counter("vector.fallback_ops").inc(
                vector.fallback_ops)
            registry.counter("vector.batches").inc(vector.batches)
            registry.counter("vector.lockstep_batches").inc(
                vector.lockstep_batches)
            registry.counter("vector.compile_hits").inc(
                vector.compiler.hits)
            registry.counter("vector.compile_misses").inc(
                vector.compiler.misses)
        self.runtime.fill_metrics(self, registry)
        return registry

    def _build_result(self):
        machine = self.machine
        faults = self._fault_counts()
        threads = self.threads.values()
        memory = self._memory_by_category()
        validated = True
        error = ""
        if self.program.validate is not None:
            try:
                self.program.validate(self.program.env, self)
            except AssertionError as exc:
                validated = False
                error = str(exc)
        return RunResult(
            program=self.program.name,
            system=self.runtime.name,
            cycles=machine.now,
            seconds=machine.elapsed_seconds(),
            hitm_loads=machine.directory.hitm_load_count,
            hitm_stores=machine.directory.hitm_store_count,
            sync_ops=sum(t.sync_ops for t in threads),
            data_ops=sum(t.loads + t.stores + t.atomics for t in threads),
            faults=faults,
            alloc_bytes=self.allocator.allocated_bytes,
            memory_bytes=memory,
            runtime_report=self.runtime_report(),
            env=dict(self.program.env),
            validated=validated,
            error=error,
        )

    def runtime_report(self):
        """The runtime's end-of-run ``report()`` dict ({} if none)."""
        report = getattr(self.runtime, "report", None)
        if callable(report):
            return report(self)
        return {}

    def _app_memory_bytes(self):
        """Baseline application footprint: allocator arenas plus the
        declared native-input streaming working set."""
        touched = self.allocator.arena_bytes
        for mapping in self.root_process.aspace.mappings():
            touched += getattr(mapping, "bulk_watermark", 0)
        return max(touched, self.program.features.footprint_bytes)

    def read_memory(self, va, width, aspace=None):
        """Debug/validation read through the always-shared view."""
        aspace = aspace or self.root_process.aspace
        return self.machine.physmem.read_int(aspace.shared_pa(va), width)
