"""Execution engine: threads, processes, scheduling, runtime hooks."""

from repro.engine.context import ThreadCtx
from repro.engine.hooks import RuntimeHooks
from repro.engine.program import Program, RunResult, WorkloadFeatures
from repro.engine.scheduler import Engine
from repro.engine.thread import (BLOCKED, DONE, PARKED, READY, SimProcess,
                                 SimThread)

__all__ = [
    "ThreadCtx", "RuntimeHooks", "Program", "RunResult",
    "WorkloadFeatures", "Engine", "BLOCKED", "DONE", "PARKED", "READY",
    "SimProcess", "SimThread",
]
