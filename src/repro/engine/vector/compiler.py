"""Compiled-program cache: op objects -> lowered typed columns.

Each engine owns one :class:`RunCompiler`.  Ops are frozen slotted
dataclasses, so an op's field tuple is its workload identity — two
``AccessRun`` instances emitted by successive loop iterations of the
same site hash equal and share one compiled entry.  The cache is
per-engine (never shared across runs), which keeps the hit/miss
counters deterministic regardless of ``REPRO_JOBS`` sharding.
"""

from repro.isa.lowering import lower_access_run

#: Cache-size ceiling; programs with more distinct batched ops than
#: this compile the overflow every time rather than growing host memory
#: without bound.
MAX_CACHED = 4096

_MISS = object()


class RunCompiler:
    """Per-engine compiled-run cache with hit/miss accounting."""

    def __init__(self):
        self._cache = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, op):
        """Return the :class:`~repro.isa.lowering.LoweredRun` for
        ``op`` (compiling on first sight), or ``None`` if the op's
        shape stays serial.  Negative results are cached too, so a
        shape the kernels decline costs one dict probe forever after.
        """
        cached = self._cache.get(op, _MISS)
        if cached is not _MISS:
            self.hits += 1
            return cached
        self.misses += 1
        lowered = lower_access_run(op)
        if len(self._cache) < MAX_CACHED:
            self._cache[op] = lowered
        return lowered
