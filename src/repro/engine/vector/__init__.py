"""Vectorized batch execution core.

Compiles batched op streams into flat typed numpy columns
(:mod:`repro.isa.lowering`) and advances whole uncontended, sync-free
stretches of them as array kernels, falling back to the serial
interpreter exactly where it would context-switch.  See
docs/ARCHITECTURE.md ("Vector execution core") for the compile/execute
split and the fallback-boundary contract.
"""

from repro.engine.vector.compiler import RunCompiler
from repro.engine.vector.executor import VectorExecutor, vector_available

__all__ = ["RunCompiler", "VectorExecutor", "vector_available"]
