"""The vector executor: batch advancement of uncontended stretches.

Two kernels, both *exact* — every simulated quantity (per-core clocks,
directory state and counters, physical memory, HITM totals, metrics)
ends byte-identical to the serial interpreter:

**Stretch kernel** (:meth:`VectorExecutor.advance`) — called from the
engine's ``_run_accesses`` dispatch loop.  It sizes the longest batch
the serial loop would have executed *without breaking or leaving the
fast path*: closed-form bounds for every context-switch condition
(another thread's ready time, a due runtime tick, the cycle budget),
the lowered op's static straddle indices, and a page/line walk over the
translation micro-cache and the directory's owner micro-cache.  The
batch then collapses to O(distinct lines) directory updates
(:mod:`repro.sim.cache_batch`), one strided physmem transfer per page,
and a single clock increment.

**Lockstep kernel** (:meth:`VectorExecutor.try_lockstep`) — called
from the heap loop when a stretch ends on another thread's ready time.
When every READY thread sits mid-run on its own core with uniform
per-access cost and ready times spread at most one access apart, the
serial scheduler provably round-robins them one access per dispatch;
N such rounds are extrapolated at once and the threads re-enqueued in
their (ready_time, seq) band order, which preserves pop order and tie
breaking exactly.  For the sequence ops
(:class:`~repro.isa.ops.RmwSeq` / :class:`~repro.isa.ops.StoreSeq`),
whose sub-op costs cycle through load/store/compute phases, the
steady state is not a fixed round-robin; the kernel instead *replays
the heap loop's arithmetic* in miniature over the band and applies
the replayed per-thread sub-op counts wholesale
(:meth:`VectorExecutor._lockstep_seq`).

Fallback boundaries (where batching stops and the serial path runs)
are the ones in ISSUE/docs: sync ops and region boundaries (separate
ops, never lowered), cross-thread contention on a line (owner
micro-cache probe fails), PTSB commits and runtime ticks (tick bound /
runtimes with translate hooks are never vectorized), schedule-policy
decision points (policy mode disables the executor), and active
tracer/sanitizer/fault hooks (eligibility gate in ``Engine.run``).
"""

import heapq

from repro.isa.lowering import numpy_available
from repro.isa.ops import AccessRun, RmwSeq, StoreSeq
from repro.sim.cache_batch import apply_fast_hits, apply_fast_mixed

try:
    import numpy as _np
except ImportError:                                   # pragma: no cover
    _np = None

from repro.engine.thread import READY
from repro.engine.vector.compiler import RunCompiler

#: Smallest batch worth the kernel's fixed overhead; below it the
#: serial loop is faster and exactly as correct.
MIN_BATCH = 8

#: Smallest lockstep extrapolation worth the setup walk.
MIN_LOCKSTEP = 16


def vector_available():
    """Whether the numpy kernels can run at all."""
    return _np is not None and numpy_available()


class VectorExecutor:
    """Per-engine vector execution state and kernels."""

    def __init__(self, engine):
        self.engine = engine
        self.compiler = RunCompiler()
        costs = engine.costs
        self._load_hit = costs.load_hit
        self._store_hit = costs.store_hit
        #: Accesses advanced by batch kernels / left to the serial path
        #: while the executor was active (the MetricsRegistry pair).
        self.batched_ops = 0
        self.fallback_ops = 0
        self.batches = 0
        self.lockstep_batches = 0
        #: Set by :meth:`advance` when a batch ended on another
        #: thread's ready time — the heap loop then tries lockstep.
        self.hint = False
        #: After a declined seq window: ``(thread, op, run_index)``
        #: the rejected thread must reach before re-attempting.
        self._seq_block = None
        #: Exponential backoff for seq attempts on contended phases:
        #: consecutive declines suppress the next ``2**streak`` hints
        #: (capped), so heavily contended stretches pay O(log n)
        #: attempt setups instead of one per contended element.
        self._seq_streak = 0
        self._seq_cool = 0
        observer = engine._observer
        self._switch = (observer.on_vector_switch
                        if observer is not None else None)
        # NUMA decline: on multi-socket machines a fast-owned line
        # homed on a remote socket is left to the serial path, which
        # charges the socket-aware costs; on single-socket machines
        # every probe below is a single None test.
        machine = engine.machine
        self._numa_active = machine.topology.sockets > 1
        self._home_nodes = (machine.physmem._home_nodes
                            if self._numa_active else {})
        self._socket_map = (machine.topology.socket_map()
                            if self._numa_active else ())
        #: Fast-path probes declined because the line was remote-homed.
        self.numa_declines = 0

    def _numa_remote(self, line_pa, core):
        """Whether ``line_pa`` is homed on a socket other than
        ``core``'s (multi-socket machines only; unhomed lines are
        local by definition — they have never been filled)."""
        home = self._home_nodes.get(line_pa >> 12)
        if home is not None and home != self._socket_map[core]:
            self.numa_declines += 1
            return True
        return False

    # ------------------------------------------------------------------
    def lookup(self, op):
        """Compiled columns for ``op`` (or None); counts hits/misses."""
        return self.compiler.lookup(op)

    def note_fallback(self, tid, ts, n):
        """Account ``n`` serially executed accesses of a vector-active
        run and emit the slow-path switch event for the tracer."""
        self.fallback_ops += n
        if self._switch is not None:
            self._switch(tid, ts, "fallback", n)

    # ------------------------------------------------------------------
    def advance(self, thread, comp, index, addr, clock, others_max,
                head_ready, next_tick, max_cycles):
        """Batch-advance ``thread``'s current run from ``index``.

        Returns ``(k, new_clock, brk)`` after bulk-executing ``k``
        accesses — ``brk`` true when the serial loop would break out of
        the dispatch right after access ``k`` — or ``None`` when no
        batch of at least :data:`MIN_BATCH` is provably fast-path.
        All state effects (clock, directory, physmem, loaded values,
        thread cycles) are applied before returning.
        """
        engine = self.engine
        core = thread.core
        is_write = comp.is_write
        c = self._store_hit if is_write else self._load_hit

        # cheap rejection: current access must itself be a fast hit
        tcache = thread.process.aspace._tcache
        entry = tcache.get(addr >> 12)
        if entry is None:
            return None
        fast = engine.machine.directory._fast
        line_pa = (addr + entry[0]) & ~63
        owner = fast.get(line_pa)
        if owner is None or owner[0] != core:
            return None
        if self._numa_active and self._numa_remote(line_pa, core):
            return None

        # closed-form break bounds: smallest executed count after which
        # the serial loop's break ladder would fire (checked after each
        # access at pre-break clock ``clock + k*c``)
        remaining = comp.count - index
        kmax = remaining
        is_break = False
        head_bound = None
        if head_ready is not None:
            gap = head_ready - clock
            head_bound = 1 if gap <= 0 else -(-gap // c)
            if head_bound < kmax:
                kmax = head_bound
                is_break = True
        if next_tick is not None:
            gap = next_tick - clock
            bound = 1 if others_max >= next_tick or gap <= 0 \
                else -(-gap // c)
            if bound < kmax:
                kmax = bound
                is_break = True
        budget_bound = (max_cycles - clock) // c + 1
        if others_max > max_cycles or budget_bound < 1:
            budget_bound = 1
        if budget_bound < kmax:
            kmax = budget_bound
            is_break = True
        if kmax < MIN_BATCH:
            if kmax == head_bound:
                # another thread's ready time is at most a few accesses
                # away: the run is in the round-robin steady state the
                # lockstep kernel extrapolates
                self.hint = True
            return None

        # static straddle indices: never batch across one
        bad = comp.bad
        if bad.size:
            pos = int(_np.searchsorted(bad, index))
            if pos < bad.size:
                nxt = int(bad[pos])
                if nxt == index:
                    return None
                if nxt - index < kmax:
                    kmax = nxt - index
                    is_break = False
                if kmax < MIN_BATCH:
                    return None

        pos, segs, pages = self._walk(comp, index, index + kmax,
                                      tcache, fast, core)
        k = pos - index
        if k < MIN_BATCH:
            return None
        brk = is_break and k == kmax

        self._apply(thread, comp, index, clock, c, k, segs, pages)
        self.batched_ops += k
        self.batches += 1
        if brk and kmax == head_bound:
            self.hint = True
        if self._switch is not None:
            self._switch(thread.tid, clock, "batch", k)
        return k, clock + k * c, brk

    # ------------------------------------------------------------------
    def try_lockstep(self):
        """Extrapolate N scheduler rounds of lockstepped runs at once.

        Preconditions mirror the steady state the serial heap loop
        provably settles into (see module docstring); any failed check
        bails with no state touched, leaving the serial path to run.
        """
        engine = self.engine
        if engine._next_tick is not None or engine._stop_world:
            return
        core_clock = engine.machine.core_clock
        ready = [t for t in engine.threads.values() if t.state == READY]
        if len(ready) < 2:
            return
        ready.sort(key=lambda t: t.ready_time)
        lo = ready[0].ready_time
        # the band: every thread within one access cost of the earliest
        # ready time round-robins one access per dispatch.  READY
        # threads beyond the band (e.g. the main thread waiting out a
        # pthread_create stagger) are never popped while band ready
        # times stay strictly below theirs — they only cap the rounds.
        first_op = ready[0].run_op
        if first_op is None:
            return
        if first_op.__class__ is not AccessRun:
            if self._seq_cool > 0:
                self._seq_cool -= 1
                return
            self._lockstep_seq(ready)
            return
        first_comp = self.compiler.lookup(first_op)
        if first_comp is None:
            return
        c = self._store_hit if first_comp.is_write else self._load_hit
        band = [t for t in ready if t.ready_time - lo <= c]
        if len(band) < 2:
            return
        future_rt = (ready[len(band)].ready_time
                     if len(band) < len(ready) else None)
        cores = set()
        plans = []
        hi = lo
        for t in band:
            op = t.run_op
            if op is None or t.pending_penalty:
                return
            if t.core in cores:
                return
            cores.add(t.core)
            rt = t.ready_time
            if rt != core_clock[t.core]:
                return
            comp = self.compiler.lookup(op)
            if comp is None:
                return
            tc = self._store_hit if comp.is_write else self._load_hit
            if tc != c:
                return
            plans.append((t, comp, rt))
            hi = rt if rt > hi else hi

        rounds = None
        max_cycles = engine.max_cycles
        if future_rt is not None:
            # band ready times must stay strictly below the first
            # out-of-band thread's through every extrapolated round
            cap = (future_rt - 1 - hi) // c
            if cap < MIN_LOCKSTEP:
                return
            rounds = cap
        for t, comp, rt in plans:
            index = t.run_index
            # keep every run open (the serial epilogue finishes it) and
            # never let any clock cross the budget mid-extrapolation
            cap = min(comp.count - index - 1, (max_cycles - rt) // c)
            if cap < MIN_LOCKSTEP:
                return
            if bad_limit := self._bad_limit(comp, index):
                if bad_limit[0]:
                    return
                cap = min(cap, bad_limit[1])
                if cap < MIN_LOCKSTEP:
                    return
            tcache = t.process.aspace._tcache
            fast = engine.machine.directory._fast
            pos, _segs, _pages = self._walk(comp, index, index + cap,
                                            tcache, fast, t.core)
            if pos - index < MIN_LOCKSTEP:
                return
            rounds = (pos - index if rounds is None
                      else min(rounds, pos - index))
        n = rounds

        for t, comp, rt in plans:
            index = t.run_index
            tcache = t.process.aspace._tcache
            fast = engine.machine.directory._fast
            _pos, segs, pages = self._walk(comp, index, index + n,
                                           tcache, fast, t.core)
            self._apply(t, comp, index, rt, c, n, segs, pages)
            t.run_index = index + n
            if comp.is_write:
                t.stores += n
            else:
                t.loads += n
            if self._switch is not None:
                self._switch(t.tid, rt, "lockstep", n)
        # re-enqueue in (ready_time, seq) band order: fresh seqs in the
        # same relative order the serial final round would have assigned
        plans.sort(key=lambda item: (item[2], item[0].seq))
        for t, _comp, rt in plans:
            engine._schedule(t, rt + n * c)
        self.batched_ops += n * len(plans)
        self.lockstep_batches += 1

    # ------------------------------------------------------------------
    def _lockstep_seq(self, ready):
        """Extrapolate a window of :class:`RmwSeq`/:class:`StoreSeq`
        dispatches by replaying the heap loop's arithmetic in
        miniature.

        Sequence sub-op costs cycle through load/store/compute phases,
        so unlike the uniform-cost AccessRun band the steady state is
        not a fixed round-robin: threads drift through phase offsets
        and each dispatch runs a variable number of sub-ops.  But a
        mid-run seq dispatch depends *only* on scheduler arithmetic —
        pop the earliest ``(ready_time, seq)`` thread, execute sub-ops
        until its clock reaches the next ready time, re-enqueue — as
        long as every access stays a fast hit on a line the thread
        owns (no HITM, no directory interaction, no translation
        installs; verified by a lazy per-element ownership walk).  The
        kernel therefore replays exactly that arithmetic against
        per-thread cost cycles with no simulated state touched, then
        applies each thread's replayed sub-op count wholesale
        (:meth:`_apply_seq`) and re-enqueues the threads in their
        replayed dispatch order, which reproduces the serial heap's
        ``(ready_time, seq)`` ordering exactly.

        The window ends — leaving the remainder to the serial path —
        strictly *before* any dispatch that would leave the verified
        fast-hit prefix, execute a run's final sub-op (the serial
        epilogue closes runs), cross the cycle budget, or reach an
        out-of-band thread's ready time (whose pop would break the
        band-only replay).  Rejected dispatches re-run natively, so
        every committed prefix is a serial-reachable state.
        """
        blk = self._seq_block
        if blk is not None:
            # a declined window stays declined until the rejected
            # thread progresses past the rejection point serially
            t, op, idx_needed = blk
            if t.run_op is op and t.run_index < idx_needed:
                self._seq_decline()
                return
            self._seq_block = None
        engine = self.engine
        core_clock = engine.machine.core_clock
        max_cycles = engine.max_cycles
        band = []
        cores = set()
        hard_stop = max_cycles
        for t in ready:
            op = t.run_op
            cls = op.__class__ if op is not None else None
            if ((cls is RmwSeq or cls is StoreSeq)
                    and not t.pending_penalty
                    and t.core not in cores
                    and t.ready_time == core_clock[t.core]):
                band.append(t)
                cores.add(t.core)
            else:
                # this thread and everything after it (``ready`` is
                # rt-sorted) are outsiders: none may be popped during
                # the window, so no band clock may reach its ready time
                if t.ready_time - 1 < hard_stop:
                    hard_stop = t.ready_time - 1
                break
        if len(band) < 2:
            self._seq_decline()
            return
        for c in range(len(core_clock)):
            # a non-band core past the budget would fire the serial
            # ladder's budget break mid-window (cannot happen in a
            # live run; checked so the replay never assumes it)
            if c not in cores and core_clock[c] > max_cycles:
                self._seq_decline()
                return

        # rt ties in ``ready`` are not seq-ordered; the replay heap
        # must break them exactly like the real one
        band.sort(key=lambda t: (t.ready_time, t.seq))
        fast = engine.machine.directory._fast
        shapes = []
        tcaches = []
        verified = []   # sub-ops from run_index proven fast-path
        welems = []     # next element the lazy walk would probe
        exhausted = []  # lazy walk hit an unsafe element (or is moot)
        needs = []      # hard sub-op bound: never the run's final one
        for t in band:
            op = t.run_op
            cls = op.__class__
            if cls is RmwSeq:
                costs = [self._load_hit, self._store_hit]
                count = len(op.addrs)
            else:
                costs = [self._store_hit]
                count = len(op.values)
            if op.compute:
                costs.append(op.compute)
            nphases = len(costs)
            idx = t.run_index
            need = count * nphases - idx - 1
            if need < 0:
                need = 0
            p0 = idx % nphases
            ver = 0
            wel = idx // nphases
            exh = False
            tcache = t.process.aspace._tcache
            if cls is StoreSeq:
                # constant address: one probe settles the whole run
                if p0 != 0:
                    ver = nphases - p0   # only this compute is left
                if self._addr_safe(op.addr, op.width, tcache, fast,
                                   t.core):
                    ver = need
                exh = True
            elif p0 != 0:
                # mid-element start: the pending store (phase 1) still
                # probes the line; a pending compute (phase 2) doesn't
                if p0 == 1 and not self._addr_safe(
                        op.addrs[wel], op.width, tcache, fast, t.core):
                    exh = True
                else:
                    ver = nphases - p0
                    wel += 1
            if ver > need:
                ver = need
            shapes.append((cls, nphases, costs, idx))
            tcaches.append(tcache)
            verified.append(ver)
            welems.append(wel)
            exhausted.append(exh)
            needs.append(need)

        # --- virtual replay: heap arithmetic only, no state ---
        nthreads = len(band)
        vheap = [(t.ready_time, t.seq, i) for i, t in enumerate(band)]
        heapq.heapify(vheap)
        vseq = max(t.seq for t in band) + 1
        executed = [0] * nthreads
        finals = [t.ready_time for t in band]
        last_d = [0] * nthreads
        dispatches = 0
        while True:
            rt, sq, i = vheap[0]
            cls, nphases, costs, idx0 = shapes[i]
            done = executed[i]
            idx = idx0 + done
            heapq.heappop(vheap)
            head = vheap[0][0]
            # tentatively run the dispatch; reject it — ending the
            # window at the boundary before it — if it would cross
            # any window bound
            clock = rt
            j = 0
            ok = True
            ver = verified[i]
            need = needs[i]
            while True:
                if done + j >= ver:
                    # extend the verified prefix lazily, one element
                    # at a time, so declined windows stay cheap
                    if exhausted[i] or ver >= need:
                        ok = False
                        break
                    op = band[i].run_op
                    if self._addr_safe(op.addrs[welems[i]], op.width,
                                       tcaches[i], fast,
                                       band[i].core):
                        welems[i] += 1
                        ver += nphases
                        if ver > need:
                            ver = need
                        verified[i] = ver
                        continue
                    exhausted[i] = True
                    ok = False
                    break
                nxt = clock + costs[(idx + j) % nphases]
                if nxt > hard_stop:
                    ok = False
                    break
                clock = nxt
                j += 1
                if head <= clock:
                    break
            if not ok:
                heapq.heappush(vheap, (rt, sq, i))
                reject = i
                break
            executed[i] = done + j
            finals[i] = clock
            dispatches += 1
            last_d[i] = dispatches
            heapq.heappush(vheap, (clock, vseq, i))
            vseq += 1

        total = sum(executed)
        if total < MIN_LOCKSTEP:
            # a too-small window will stay too small until the thread
            # whose dispatch was rejected gets past the rejection
            # point serially; block re-attempts until then so hints
            # near a contended element cost one pointer check
            t = band[reject]
            cls, nphases, _costs, idx0 = shapes[reject]
            if exhausted[reject] and cls is RmwSeq:
                blocked_until = welems[reject] * nphases + 1
            else:
                blocked_until = idx0 + executed[reject] + 1
            self._seq_block = (t, t.run_op, blocked_until)
            self._seq_decline()
            return
        for i, t in enumerate(band):
            n = executed[i]
            if not n:
                continue
            cls, nphases, _costs, _idx = shapes[i]
            self._apply_seq(t, t.run_op, cls, nphases, n, t.ready_time)
            if self._switch is not None:
                self._switch(t.tid, t.ready_time, "lockstep", n)
        # re-enqueue in replayed final-dispatch order: fresh real seqs
        # land in the same relative order the serial dispatches would
        # have assigned them
        order = sorted((i for i in range(nthreads) if executed[i]),
                       key=lambda i: last_d[i])
        for i in order:
            engine._schedule(band[i], finals[i])
        self.batched_ops += total
        self.lockstep_batches += 1
        self._seq_streak = 0

    def _seq_decline(self):
        """Back off after a failed/declined seq attempt."""
        s = self._seq_streak
        self._seq_streak = s + 1
        self._seq_cool = 1 << s if s < 6 else 64

    def _addr_safe(self, va, width, tcache, fast, core):
        """Whether an access at ``va`` is a guaranteed fast hit: no
        line straddle, a covering translation-cache entry, and the
        line fast-owned by ``core``.  Fast hits neither evict owner
        micro-cache entries nor install translations, so safety is
        stable across a lockstep window."""
        if (va & 63) + width > 64:
            return False
        entry = tcache.get(va >> 12)
        if entry is None or va + width > entry[1]:
            return False
        line_pa = (va + entry[0]) & ~63
        owner = fast.get(line_pa)
        if owner is None or owner[0] != core:
            return False
        return not (self._numa_active
                    and self._numa_remote(line_pa, core))

    def _apply_seq(self, thread, op, cls, nphases, n, rt):
        """Apply ``n`` sub-ops of ``thread``'s sequence starting at
        clock ``rt`` — element-by-element in plain Python, but against
        local dicts, committing physmem writes, directory timestamps
        (:func:`apply_fast_mixed`) and counters once at the end.
        Byte-identical to ``n`` serial sub-op dispatches: loads see
        earlier pending stores, timestamps are the pre-cost clocks of
        each line's final access/write, and a window ending between an
        RMW's load and store carries the loaded value in
        ``run_values`` exactly as the serial break does."""
        engine = self.engine
        machine = engine.machine
        physmem = machine.physmem
        read_int = physmem.read_int
        tcache = thread.process.aspace._tcache
        width = op.width
        compute = op.compute
        store_hit = self._store_hit
        is_rmw = cls is RmwSeq
        if is_rmw:
            addrs = op.addrs
            deltas = op.deltas
            const_delta = deltas if isinstance(deltas, int) else None
            mask = (1 << (8 * width)) - 1
            load_hit = self._load_hit
        else:
            seq_values = op.values
            pa0 = op.addr + tcache[op.addr >> 12][0]
            line0 = pa0 & ~63
        idx = thread.run_index
        clock = rt
        carried = thread.run_values
        pending = {}
        lines = {}
        loads = 0
        stores = 0
        for _ in range(n):
            element, phase = divmod(idx, nphases)
            if is_rmw:
                if phase == 0:
                    va = addrs[element]
                    pa = va + tcache[va >> 12][0]
                    v = pending.get(pa)
                    carried = read_int(pa, width) if v is None else v
                    rec = lines.get(pa & ~63)
                    if rec is None:
                        lines[pa & ~63] = [clock, None]
                    else:
                        rec[0] = clock
                    loads += 1
                    cost = load_hit
                elif phase == 1:
                    va = addrs[element]
                    pa = va + tcache[va >> 12][0]
                    delta = (const_delta if const_delta is not None
                             else deltas[element])
                    pending[pa] = (carried + delta) & mask
                    carried = None
                    rec = lines.get(pa & ~63)
                    if rec is None:
                        lines[pa & ~63] = [clock, clock]
                    else:
                        rec[0] = clock
                        rec[1] = clock
                    stores += 1
                    cost = store_hit
                else:
                    cost = compute
            elif phase == 0:
                pending[pa0] = seq_values[element]
                rec = lines.get(line0)
                if rec is None:
                    lines[line0] = [clock, clock]
                else:
                    rec[0] = clock
                    rec[1] = clock
                stores += 1
                cost = store_hit
            else:
                cost = compute
            clock += cost
            idx += 1
        write_int = physmem.write_int
        for pa, value in pending.items():
            write_int(pa, value, width)
        apply_fast_mixed(machine.directory, thread.core, lines,
                         loads + stores)
        thread.run_index = idx
        thread.run_values = carried
        thread.loads += loads
        thread.stores += stores
        thread.cycles += clock - rt
        machine.core_clock[thread.core] = clock

    # ------------------------------------------------------------------
    def _bad_limit(self, comp, index):
        """(current_is_bad, accesses_until_next_bad) or None if clear."""
        bad = comp.bad
        if not bad.size:
            return None
        pos = int(_np.searchsorted(bad, index))
        if pos >= bad.size:
            return None
        nxt = int(bad[pos])
        return (nxt == index, nxt - index)

    def _walk(self, comp, index, end, tcache, fast, core):
        """Walk page/line runs from ``index`` while every access is a
        guaranteed fast hit; stop at ``end``.

        Returns ``(pos, segs, pages)``: the first non-batchable index,
        per-line segments ``(line_pa, seg_end)`` and per-page segments
        ``(start, end, delta)`` covering ``[index, pos)``.
        """
        page_starts = comp.page_starts
        page_ids = comp.page_ids
        line_starts = comp.line_starts
        line_ids = comp.line_ids
        pi = int(_np.searchsorted(page_starts, index, side="right")) - 1
        li = int(_np.searchsorted(line_starts, index, side="right")) - 1
        pos = index
        segs = []
        pages = []
        while pos < end:
            page = int(page_ids[pi])
            entry = tcache.get(page)
            if entry is None or ((page + 1) << 12) > entry[1]:
                break
            delta = entry[0]
            page_cap = int(page_starts[pi + 1])
            if page_cap > end:
                page_cap = end
            page_start = pos
            while pos < page_cap:
                line_run_end = int(line_starts[li + 1])
                line_pa = (int(line_ids[li]) << 6) + delta
                owner = fast.get(line_pa)
                if owner is None or owner[0] != core:
                    break
                if self._numa_active and self._numa_remote(line_pa, core):
                    break
                seg_end = (line_run_end if line_run_end < page_cap
                           else page_cap)
                segs.append((line_pa, seg_end))
                pos = seg_end
                if pos == line_run_end:
                    li += 1
            if pos > page_start:
                pages.append((page_start, pos, delta))
            if pos < page_cap:
                break
            pi += 1
        return pos, segs, pages

    def _apply(self, thread, comp, index, clock, c, k, segs, pages):
        """Apply ``k`` batched fast hits starting at ``index`` whose
        pre-cost clocks are ``clock + j*c``: directory timestamps and
        E->M upgrades per line, strided physmem transfers per page, and
        the clock/cycle advancement — byte-identical to ``k`` serial
        iterations of the dispatch loop."""
        engine = self.engine
        machine = engine.machine
        is_write = comp.is_write
        end = index + k
        line_finals = []
        for line_pa, seg_end in segs:
            if seg_end > end:
                seg_end = end
            line_finals.append((line_pa,
                                clock + (seg_end - index - 1) * c))
        apply_fast_hits(machine.directory, thread.core, is_write,
                        line_finals, k)
        physmem = machine.physmem
        stride = comp.stride
        width = comp.width
        addrs = comp.addrs
        if is_write:
            value = comp.value
            for start, stop, delta in pages:
                if stop > end:
                    stop = end
                physmem.write_int_run(int(addrs[start]) + delta, stride,
                                      stop - start, value, width)
        else:
            values = thread.run_values
            for start, stop, delta in pages:
                if stop > end:
                    stop = end
                values.extend(physmem.read_int_run(
                    int(addrs[start]) + delta, stride, stop - start,
                    width))
        machine.core_clock[thread.core] = clock + k * c
        thread.cycles += k * c
