"""Thread and data mapping policies for multi-socket topologies.

False-sharing repair is not the only lever against coherence traffic:
on a NUMA machine, *where* threads run and *where* pages live decides
whether a falsely shared line ping-pongs inside one socket's directory
or across the QPI link.  This package implements the mapping policies
the eval grid compares against TMI-style repair (see the "Thread and
Data Mapping in Software Transactional Memory" survey in PAPERS.md):

- thread placement (:mod:`repro.mapping.placement`): ``round-robin``
  (the engine's historical default), ``compact``, ``scatter``, and
  ``sharing-aware`` (placed by measured line-sharing affinity);
- page placement: ``first-touch`` / ``interleave``, implemented by the
  machine itself (:data:`repro.sim.machine.PAGE_POLICIES`) and chosen
  per run;
- sharing-affinity extraction (:mod:`repro.mapping.sharing`): turns a
  trace's line->tid byte masks into thread groups for sharing-aware
  placement.

Everything here is deterministic and topology-driven; policies never
consult wall-clock state, so grid cells stay byte-identical at any
``REPRO_JOBS``.
"""

from repro.mapping.placement import (PLACEMENT_NAMES, CompactPlacement,
                                     Placement, RoundRobinPlacement,
                                     ScatterPlacement,
                                     SharingAwarePlacement,
                                     make_placement)
from repro.mapping.sharing import affinity_groups

__all__ = [
    "PLACEMENT_NAMES",
    "Placement",
    "RoundRobinPlacement",
    "CompactPlacement",
    "ScatterPlacement",
    "SharingAwarePlacement",
    "make_placement",
    "affinity_groups",
]
