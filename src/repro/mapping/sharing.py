"""Sharing-affinity extraction: trace line masks -> thread groups.

The trace extractor (:mod:`repro.analysis.extract`) records, for every
cache line touched during the parallel phase, which thread read/wrote
which bytes.  Sharing-aware placement only needs the *communication
graph* implied by that record: threads that touch the same line — with
at least one of them writing — will exchange coherence messages, so
they belong on the same socket.  This module turns the line record
into disjoint thread groups with a deterministic union-find; no
simulation state is consulted, so the same trace always yields the
same groups.
"""

from typing import Dict, List, Sequence


def affinity_groups(lines: Dict[int, Dict[int, Sequence[int]]],
                    nthreads: int) -> List[List[int]]:
    """Disjoint groups of threads coupled by write-shared lines.

    ``lines`` is the extractor's ``line_va -> {tid: [read_mask,
    write_mask]}`` record.  Two threads are coupled when they touch the
    same line and at least one of them writes it (read-only sharing is
    free under MESI and does not constrain placement).  Returns the
    connected components with two or more members, sorted by smallest
    member tid; singleton threads are left for the placement fallback.
    """
    parent = list(range(nthreads))

    def find(tid: int) -> int:
        while parent[tid] != tid:
            parent[tid] = parent[parent[tid]]
            tid = parent[tid]
        return tid

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            if rb < ra:
                ra, rb = rb, ra
            parent[rb] = ra

    for line_va in sorted(lines):
        masks = lines[line_va]
        tids = sorted(tid for tid in masks if 0 <= tid < nthreads)
        if len(tids) < 2:
            continue
        if not any(masks[tid][1] for tid in tids):
            continue
        first = tids[0]
        for other in tids[1:]:
            union(first, other)

    members: Dict[int, List[int]] = {}
    for tid in range(nthreads):
        members.setdefault(find(tid), []).append(tid)
    groups = [sorted(group) for group in members.values()
              if len(group) >= 2]
    groups.sort(key=lambda group: group[0])
    return groups
