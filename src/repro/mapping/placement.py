"""Thread-placement policies: tid -> core, topology-aware.

A placement maps thread ids onto cores before the first op of each
thread runs.  The engine reserves its last core for the monitor /
detector service, so every policy places application threads onto
cores ``[0, n_cores - 1)`` only.

``round-robin`` is bit-for-bit the engine's historical formula
(``tid % (n_cores - 1)``); with this repo's dense core ids (socket 0
owns cores 0..k-1) it is also what "compact" placement means, so the
two coincide whenever threads fit on the usable cores — ``compact``
exists as a named policy so grids can say what they mean.  ``scatter``
round-robins threads *across sockets*, and ``sharing-aware`` packs
measured sharing groups onto single sockets (see
:mod:`repro.mapping.sharing`).
"""

from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.sim.topology import Topology

#: Placement policies the eval grid accepts.
PLACEMENT_NAMES: tuple = ("round-robin", "compact", "scatter",
                          "sharing-aware")


class Placement:
    """Base placement: precomputed core order, cycled by tid."""

    #: Policy name (grid/CLI identifier).
    name: str = "base"

    def __init__(self, topology: Topology, n_cores: int) -> None:
        self.topology = topology
        self.n_cores = n_cores
        if n_cores < 2:
            raise SimulationError(
                f"placement needs >= 2 cores (one is service-reserved), "
                f"got {n_cores}")
        self._order: Sequence[int] = self._core_order()
        if not self._order:
            raise SimulationError("placement produced no usable cores")

    def _usable(self) -> list:
        """Application cores: every core except the service core."""
        return list(range(self.n_cores - 1))

    def _core_order(self) -> Sequence[int]:
        """The core sequence tids cycle over (subclass hook)."""
        return self._usable()

    def core_for(self, tid: int) -> int:
        """Core that thread ``tid`` runs on."""
        return self._order[tid % len(self._order)]


class RoundRobinPlacement(Placement):
    """The engine's historical default: ``tid % (n_cores - 1)``.

    Kept as an explicit policy so ``sockets=1`` grids and the
    byte-identity tests can name the legacy behavior.
    """

    name = "round-robin"


class CompactPlacement(Placement):
    """Fill cores in id order, packing socket 0 before socket 1.

    With dense core ids this is the same mapping as ``round-robin``;
    the separate name documents intent in placement grids (pack
    threads onto as few sockets as possible).
    """

    name = "compact"


class ScatterPlacement(Placement):
    """Round-robin threads across sockets (one core per socket per
    round), spreading load and memory bandwidth at the price of
    splitting shared working sets across the interconnect."""

    name = "scatter"

    def _core_order(self) -> Sequence[int]:
        usable = self._usable()
        per_socket: list = [[] for _ in range(self.topology.sockets)]
        for core in usable:
            per_socket[self.topology.socket_of(core)].append(core)
        order = []
        round_idx = 0
        while len(order) < len(usable):
            for socket in range(self.topology.sockets):
                cores = per_socket[socket]
                if round_idx < len(cores):
                    order.append(cores[round_idx])
            round_idx += 1
        return order


class SharingAwarePlacement(Placement):
    """Pack measured sharing groups onto single sockets.

    ``groups`` is a list of tid lists (from
    :func:`repro.mapping.sharing.affinity_groups`): threads that write
    the same cache lines.  Each group is assigned — largest first — to
    the socket with the most unassigned capacity, and its threads map
    onto that socket's cores (cycling when a group outnumbers them,
    which keeps the traffic on-socket even oversubscribed).  Tids in no
    group fall back to scatter order.
    """

    name = "sharing-aware"

    def __init__(self, topology: Topology, n_cores: int,
                 groups: Optional[Sequence[Sequence[int]]] = None) -> None:
        self.groups = [list(group) for group in (groups or [])]
        super().__init__(topology, n_cores)
        self._assignment: dict = {}
        self._assign_groups()
        self._fallback = ScatterPlacement(topology, n_cores)

    def _assign_groups(self) -> None:
        usable = set(self._usable())
        socket_cores = {
            socket: [core for core in self.topology.cores_of(socket)
                     if core in usable]
            for socket in range(self.topology.sockets)}
        free = {socket: len(cores)
                for socket, cores in socket_cores.items()}
        # largest group first; ties break on smallest member tid so the
        # assignment is independent of group discovery order
        ordered = sorted(self.groups,
                         key=lambda g: (-len(g), min(g) if g else 0))
        for group in ordered:
            if not group:
                continue
            socket = max(sorted(free), key=lambda s: free[s])
            # fill from the top of the socket: scatter fallback hands
            # unplaced threads (typically main) the socket's first
            # cores, so groups that fit never share a core with them
            cores = list(reversed(socket_cores[socket]))
            if not cores:
                continue
            for index, tid in enumerate(sorted(group)):
                self._assignment[tid] = cores[index % len(cores)]
            free[socket] = max(0, free[socket] - len(group))

    def core_for(self, tid: int) -> int:
        """Core for ``tid``: its group's socket, else scatter order."""
        core = self._assignment.get(tid)
        if core is not None:
            return core
        return self._fallback.core_for(tid)


def make_placement(policy: str, topology: Topology, n_cores: int,
                   groups: Optional[Sequence[Sequence[int]]] = None
                   ) -> Placement:
    """Build the named placement policy for one machine shape.

    ``groups`` is only consulted by ``sharing-aware`` (measured thread
    sharing groups); the other policies are purely topological.
    """
    if policy == "round-robin":
        return RoundRobinPlacement(topology, n_cores)
    if policy == "compact":
        return CompactPlacement(topology, n_cores)
    if policy == "scatter":
        return ScatterPlacement(topology, n_cores)
    if policy == "sharing-aware":
        return SharingAwarePlacement(topology, n_cores, groups=groups)
    raise SimulationError(f"unknown placement policy {policy!r}")
