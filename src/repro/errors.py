"""Exception hierarchy for the repro package.

Every error raised by the simulator, runtimes, or harness derives from
:class:`ReproError` so callers can catch the package's failures with a
single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The simulated machine reached an invalid state."""


class SegmentationFault(SimulationError):
    """An access touched an unmapped or permission-violating address.

    This is the simulated analog of SIGSEGV *escaping* to the process: a
    fault that no installed fault handler resolved.
    """

    def __init__(self, va, is_write, reason):
        self.va = va
        self.is_write = is_write
        self.reason = reason
        access = "write" if is_write else "read"
        super().__init__(f"segfault: {access} at {va:#x}: {reason}")


class InvalidMappingError(SimulationError):
    """An mmap/mprotect/munmap call had invalid arguments."""


class AllocationError(ReproError):
    """The memory allocator could not satisfy a request."""


class InvalidProgramError(ReproError):
    """A Program or WorkloadFeatures declaration is malformed.

    Raised at construction time — a bad ``sync_rate`` or non-positive
    ``nthreads``/``heap_bytes`` should fail before a single simulated
    cycle, not deep inside a run.
    """


class CycleBudgetError(SimulationError):
    """The engine's ``max_cycles`` budget was exhausted.

    Carries the partial schedule trace (policy name, seed, and the
    decision log up to the point of exhaustion) so a livelocking
    fuzzed interleaving becomes a replayable artifact instead of a
    hang.  ``trace`` is None for default-scheduled runs, which record
    no decisions.
    """

    def __init__(self, now, budget, trace=None):
        self.now = now
        self.budget = budget
        self.trace = trace
        super().__init__(f"cycle budget exceeded ({now} > {budget})")


class DeadlockError(SimulationError):
    """No runnable thread exists but unfinished threads remain."""

    def __init__(self, blocked_tids, message="deadlock: all threads blocked"):
        self.blocked_tids = tuple(blocked_tids)
        super().__init__(f"{message}: tids={self.blocked_tids}")


class HangError(SimulationError):
    """A thread exceeded its liveness bound (simulated hang).

    Used to reproduce the paper's Figure 12: under a PTSB without
    code-centric consistency, cholesky's flag-based synchronization spins
    forever.  The engine converts an out-of-budget spin loop into this
    exception so the condition is testable.
    """

    def __init__(self, tid, detail):
        self.tid = tid
        self.detail = detail
        super().__init__(f"thread {tid} hang detected: {detail}")


class IncompatibleWorkloadError(ReproError):
    """A runtime system cannot run a workload (e.g. Sheriff on leveldb)."""

    def __init__(self, system, workload, reason):
        self.system = system
        self.workload = workload
        self.reason = reason
        super().__init__(f"{system} incompatible with {workload}: {reason}")


class PtraceError(ReproError):
    """An invalid ptrace request (bad state transition, unknown thread)."""


class ShmError(ReproError):
    """A named shared-memory operation failed."""

    def __init__(self, name, reason):
        self.name = name
        self.reason = reason
        super().__init__(f"shm {name!r}: {reason}")


class ShmNameError(ShmError):
    """``shm_unlink`` (or a lookup) named a region that does not exist."""

    def __init__(self, name, known):
        self.known = tuple(known)
        super().__init__(name, f"unknown name (known: {list(known)})")


class ShmExhaustedError(ShmError):
    """``shm_open`` could not create a region (namespace exhausted).

    The simulated analog of ``shm_open`` returning ``EMFILE``/``ENOSPC``;
    injected by fault plans and raised for real when a namespace's
    ``capacity`` is reached.
    """

    def __init__(self, name, reason="namespace exhausted"):
        super().__init__(name, reason)


class ShmSizeMismatchError(ShmError, InvalidMappingError):
    """A region was reopened with a size different from its creation.

    Also an :class:`InvalidMappingError` so existing callers that treat
    the mismatch as a mapping-argument error keep working.
    """

    def __init__(self, name, have, want):
        self.have = have
        self.want = want
        super().__init__(
            name, f"reopened with different size ({want} != {have})")


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (unknown point, bad format)."""


class CheckpointError(ReproError, ValueError):
    """A grid checkpoint file is unusable (corrupted or wrong format).

    Carries the offending ``path`` so a failed ``--resume`` names the
    file to inspect or delete instead of surfacing a bare
    ``JSONDecodeError`` from deep inside the loader.  Also a
    :class:`ValueError` so pre-existing callers that caught the format
    mismatch as one keep working.
    """

    def __init__(self, path, reason):
        self.path = path
        self.reason = reason
        super().__init__(f"checkpoint {path}: {reason}")


class CampaignSpecError(ReproError, ValueError):
    """A campaign spec is malformed (unknown workload/system, bad
    format tag, invalid knob values)."""


class ServiceTimeoutError(ReproError, TimeoutError):
    """A client-side wait on a campaign outlived its budget.

    Names the campaign and the last state the client observed — the
    campaign itself keeps running; only the wait is abandoned.  Also a
    :class:`TimeoutError` so pre-existing callers that caught the bare
    builtin keep working.
    """

    def __init__(self, campaign_id, last_status, timeout):
        self.campaign_id = campaign_id
        self.last_status = last_status
        self.timeout = timeout
        super().__init__(
            f"campaign {campaign_id} not terminal after {timeout}s "
            f"(last observed: {last_status})")


class ConsistencyViolationError(SimulationError):
    """A runtime broke memory consistency rules it promised to uphold.

    Raised by the consistency checker when, e.g., a PTSB is active inside
    an atomic or assembly region under a runtime that claims code-centric
    consistency (paper Table 2, shaded cells only permit PTSB use).
    """
