#!/usr/bin/env python
"""Quickstart: detect and repair a false sharing bug with TMI.

Builds a small multithreaded program whose per-thread counters are
packed into one cache line (the classic bug), runs it under plain
pthreads, under the manual source fix, and under the full TMI runtime,
then prints what TMI saw and did.

Run:  python examples/quickstart.py
"""

from repro.baselines import PthreadsRuntime
from repro.core import TmiRuntime
from repro.engine import Engine, Program
from repro.isa import Binary


def build_program(stride):
    """Four threads increment per-thread counters ``stride`` bytes
    apart: stride=8 falsely shares one line, stride=64 is the fix."""
    binary = Binary("quickstart")
    ld = binary.load_site("load_counter", 8)
    st = binary.store_site("store_counter", 8)

    def main(t):
        counters = yield from t.malloc(4096, align=64)

        def worker(w):
            slot = counters + (w.tid - 1) * stride
            for _ in range(30_000):
                value = yield from w.load(slot, 8, site=ld)
                yield from w.store(slot, value + 1, 8, site=st)
                yield from w.compute(80)       # the real work

        tids = []
        for i in range(4):
            tid = yield from t.spawn(worker, f"worker{i}")
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)

    return Program("quickstart", binary, main, nthreads=4)


def main():
    print("running under plain pthreads (buggy layout)...")
    buggy = Engine(build_program(stride=8), PthreadsRuntime()).run()
    print(f"  {buggy.seconds * 1e3:8.2f} ms   "
          f"{buggy.hitm_total:7d} HITM events")

    print("running the manual fix (padded layout)...")
    fixed = Engine(build_program(stride=64), PthreadsRuntime()).run()
    print(f"  {fixed.seconds * 1e3:8.2f} ms   "
          f"{fixed.hitm_total:7d} HITM events")

    print("running under TMI (buggy layout, online repair)...")
    engine = Engine(build_program(stride=8), TmiRuntime("protect"))
    repaired = engine.run()
    report = repaired.runtime_report
    print(f"  {repaired.seconds * 1e3:8.2f} ms   "
          f"{repaired.hitm_total:7d} HITM events")

    print()
    print("TMI's view of the run:")
    print(f"  PEBS records sampled : {report['perf_records']}")
    print(f"  sharing classified   : {report['sharing_summary']}")
    print(f"  repair triggered     : interval "
          f"{report['unrepaired_intervals']}")
    print(f"  threads -> processes : {report['t2p_us']:.1f} us")
    print(f"  pages protected      : {report['protected_pages']} "
          f"({', '.join(report['targeted_pages'])})")
    print(f"  PTSB commits         : {report['commits']}")
    print()
    manual_speedup = buggy.cycles / fixed.cycles
    tmi_speedup = buggy.cycles / repaired.cycles
    print(f"manual fix speedup : {manual_speedup:5.2f}x")
    print(f"TMI speedup        : {tmi_speedup:5.2f}x  "
          f"({100 * tmi_speedup / manual_speedup:.0f}% of manual, "
          "no source change)")


if __name__ == "__main__":
    main()
