#!/usr/bin/env python
"""Figure 4: tuning the PEBS sample period (paper section 3.1).

Sweeps the perf period on leveldb under tmi-detect.  Small periods
record nearly every HITM but perturb the application; large periods are
cheap but under-report.  TMI assumes a period of n producing r records
corresponds to n*r actual events — the sweep shows how well that
estimate tracks the truth.

Run:  python examples/period_tuning.py [scale]
"""

import sys

from repro.core import TmiConfig
from repro.eval import run_workload


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    print(f"leveldb under tmi-detect, scale={scale}")
    print()
    print(f"{'period':>7} {'runtime':>12} {'records':>8} "
          f"{'estimated':>10} {'actual':>8} {'est/actual':>10}")
    for period in (1, 5, 10, 50, 100, 1000):
        outcome = run_workload("leveldb", "tmi-detect", scale=scale,
                               config=TmiConfig(period=period))
        report = outcome.result.runtime_report
        actual = report["perf_events_seen"]
        estimated = report["perf_estimated_events"]
        ratio = estimated / actual if actual else float("nan")
        print(f"{period:7d} {outcome.result.seconds * 1e3:10.2f}ms "
              f"{report['perf_records']:8d} {estimated:10d} "
              f"{actual:8d} {ratio:10.2f}")
    print()
    print("the paper's default (period=100) balances runtime impact")
    print("against estimation accuracy; TMI scales record counts by")
    print("the period to avoid under-reporting sharing.")


if __name__ == "__main__":
    main()
