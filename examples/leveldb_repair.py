#!/usr/bin/env python
"""The paper's real-world case study: leveldb with an injected bug.

Section 4.3: each leveldb worker keeps per-thread operation counters;
the injected bug packs them into one cache line.  TMI detects the false
sharing online, converts threads to processes, and protects the counter
page — recovering most of the manual fix's speedup with no source
change and no downtime.

Run:  python examples/leveldb_repair.py [scale]
"""

import sys

from repro.eval import run_workload


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    print(f"leveldb (injected false sharing bug), scale={scale}")
    print()

    base = run_workload("leveldb-fs", "pthreads", scale=scale)
    manual = run_workload("leveldb-fs", "manual", scale=scale)
    tmi = run_workload("leveldb-fs", "tmi-protect", scale=scale)
    sheriff = run_workload("leveldb-fs", "sheriff-protect", scale=scale)

    rows = [
        ("pthreads (buggy)", base, 1.0),
        ("manual fix", manual,
         base.result.cycles / manual.result.cycles),
        ("TMI online repair", tmi,
         base.result.cycles / tmi.result.cycles),
    ]
    print(f"{'system':22} {'runtime':>12} {'speedup':>8}  notes")
    for label, outcome, speedup in rows:
        ms = outcome.result.seconds * 1e3
        print(f"{label:22} {ms:10.2f}ms {speedup:7.2f}x")
    print(f"{'Sheriff':22} {'--':>12} {'--':>8}  {sheriff.status}: "
          f"{sheriff.detail}")

    report = tmi.result.runtime_report
    print()
    print("TMI repair characterization (Table 3 style):")
    print(f"  unrepaired intervals : {report['unrepaired_intervals']}")
    print(f"  T2P latency          : {report['t2p_us']:.1f} us")
    print(f"  commits/interval     : {report['commits_per_interval']}")
    print(f"  sharing summary      : {report['sharing_summary']}")
    print()
    tmi_speedup = base.result.cycles / tmi.result.cycles
    manual_speedup = base.result.cycles / manual.result.cycles
    print(f"TMI captures {100 * tmi_speedup / manual_speedup:.0f}% of "
          "the manual fix (paper: 88%), with the database online the "
          "whole time.")

    # the un-injected leveldb: mostly true sharing, nothing to repair
    clean = run_workload("leveldb", "tmi-protect", scale=scale)
    summary = clean.result.runtime_report["sharing_summary"]
    print()
    print("stock leveldb under TMI (no injected bug):")
    print(f"  sharing summary      : {summary}")
    print(f"  repaired             : "
          f"{clean.result.runtime_report['repaired']}")
    print("  (the paper: leveldb's HITM traffic is dominated by true "
          "sharing on the writer queue, so TMI leaves it alone)")


if __name__ == "__main__":
    main()
