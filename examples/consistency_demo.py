#!/usr/bin/env python
"""Why code-centric consistency matters (paper sections 2.2, 3.4, 4.5).

Three demonstrations on real simulated memory:

1. Figure 3 — word tearing: two aligned 2-byte stores merged through
   page-twinning store buffers produce 0xABCD, a value no thread wrote.
2. Figure 11 — canneal: atomic swaps through a PTSB without consistency
   callbacks (Sheriff) lose/duplicate grid elements; TMI flushes and
   bypasses the PTSB around the inline-assembly region and stays
   correct.
3. Figure 12 — cholesky: volatile-flag synchronization spins forever on
   a stale private page under Sheriff; TMI honors the volatile access
   and completes.

Run:  python examples/consistency_demo.py
"""

from repro.core.ptsb import PageTwinningStoreBuffer
from repro.engine import Engine
from repro.engine.thread import SimProcess
from repro.eval import run_workload
from repro.sim.addrspace import AddressSpace, Backing
from repro.sim.machine import Machine
from repro.workloads import get


def demo_word_tearing():
    print("1. Figure 3: aligned multi-byte store atomicity (AMBSA)")
    machine = Machine(n_cores=2)
    aspace = AddressSpace(machine.physmem, machine.costs)
    backing = Backing(machine.physmem, 4096, "app", file_backed=True)
    aspace.mmap(0x4000_0000, 4096, backing, name="heap")
    p0 = SimProcess(pid=1, aspace=aspace)
    p1 = SimProcess(pid=2, aspace=aspace.fork("p2"))
    ptsb0 = PageTwinningStoreBuffer(p0, machine, machine.costs)
    ptsb1 = PageTwinningStoreBuffer(p1, machine, machine.costs)
    x = 0x4000_0000 + 128
    for proc in (p0, p1):
        proc.aspace.protect_page(x)

    machine.physmem.write_int(p0.aspace.translate(x, 2, True).pa,
                              0xAB00, 2)
    machine.physmem.write_int(p1.aspace.translate(x, 2, True).pa,
                              0x00CD, 2)
    ptsb0.commit(0, "unlock")
    ptsb1.commit(1, "unlock")
    final = machine.physmem.read_int(backing.base_pa + 128, 2)
    print("   thread 0 stored 0xAB00, thread 1 stored 0x00CD")
    print(f"   merged result: {final:#06x}  "
          f"{'<- a value NO thread wrote!' if final == 0xABCD else ''}")
    print()


def demo_canneal():
    print("2. Figure 11: canneal's atomic swaps (inline assembly)")
    for system in ("pthreads", "sheriff-detect", "tmi-detect"):
        workload = get("canneal", scale=0.3)
        workload.footprint = 64 * 1024 * 1024      # simlarge input
        from repro.eval.systems import make_runtime
        engine = Engine(workload.build(), make_runtime(system))
        result = engine.run()
        verdict = "grid intact" if result.validated else \
            f"CORRUPTED ({result.error.split('(')[0].strip()})"
        print(f"   {system:16} -> {verdict}")
    print()


def demo_cholesky():
    print("3. Figure 12: cholesky's volatile flag")
    for system in ("pthreads", "sheriff-protect", "tmi-protect"):
        outcome = run_workload("cholesky", system)
        if outcome.status == "hang":
            verdict = f"HANGS ({outcome.detail})"
        else:
            verdict = "completes"
        print(f"   {system:16} -> {verdict}")
    print()
    print("TMI's code-centric consistency flushes and disables the")
    print("PTSB around atomic/assembly regions and honors volatile")
    print("accesses with the SC semantics the programmer intended,")
    print("so both programs behave correctly while repair stays on.")


if __name__ == "__main__":
    demo_word_tearing()
    demo_canneal()
    demo_cholesky()
