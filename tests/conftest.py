"""Shared fixtures; makes tests/helpers.py importable."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sim.physmem import PhysicalMemory


@pytest.fixture
def costs():
    return CostModel()


@pytest.fixture
def physmem():
    return PhysicalMemory()


@pytest.fixture
def machine():
    return Machine(n_cores=8)
