"""Allocator behaviour: size classes, placement, glibc mode."""

import pytest

from repro.alloc import CHUNK_BYTES, LocklessAllocator, RegionBump
from repro.errors import AllocationError
from repro.sim.costs import CostModel, LINE_SIZE


@pytest.fixture
def region():
    return RegionBump(0x4000_0000, 1 << 28, "heap")


@pytest.fixture
def alloc(region):
    return LocklessAllocator(region, CostModel())


@pytest.fixture
def tmi_alloc(region):
    return LocklessAllocator(region, CostModel(), name="tmi-shared",
                             line_align_large=True)


class TestRegionBump:
    def test_alignment(self, region):
        addr = region.take(100, align=256)
        assert addr % 256 == 0

    def test_exhaustion(self):
        small = RegionBump(0, 1024, "s")
        small.take(512)
        with pytest.raises(AllocationError):
            small.take(1024)

    def test_used_accounting(self, region):
        region.take(1000, align=64)
        assert region.used >= 1000


class TestSmallObjects:
    def test_no_overlap(self, alloc):
        seen = []
        for size in (16, 24, 100, 500, 4000):
            addr, _ = alloc.malloc(1, size)
            for other, osize in seen:
                assert addr + size <= other or other + osize <= addr
            seen.append((addr, size))

    def test_size_class_rounding(self, alloc):
        a, _ = alloc.malloc(1, 17)
        b, _ = alloc.malloc(1, 30)
        assert abs(a - b) >= 32      # both in the 32-byte class

    def test_free_list_reuse(self, alloc):
        a, _ = alloc.malloc(1, 64)
        alloc.free(1, a)
        b, _ = alloc.malloc(1, 64)
        assert a == b

    def test_per_thread_arenas_are_disjoint(self, alloc):
        a, _ = alloc.malloc(1, 64)
        b, _ = alloc.malloc(2, 64)
        assert abs(a - b) >= CHUNK_BYTES

    def test_global_arena_interleaves(self, region):
        glibc = LocklessAllocator(region, CostModel(), name="glibc",
                                  global_arena=True)
        a, _ = glibc.malloc(1, 64)
        b, _ = glibc.malloc(2, 64)
        assert abs(a - b) == 64      # adjacent: cross-thread neighbours

    def test_glibc_charges_extra(self, region):
        costs = CostModel()
        glibc = LocklessAllocator(region, costs, global_arena=True)
        fast = LocklessAllocator(RegionBump(0x5000_0000, 1 << 28, "h"),
                                 costs)
        _, gcost = glibc.malloc(1, 64)
        _, fcost = fast.malloc(1, 64)
        assert gcost > fcost

    def test_double_free_raises(self, alloc):
        a, _ = alloc.malloc(1, 64)
        alloc.free(1, a)
        with pytest.raises(AllocationError):
            alloc.free(1, a)

    def test_zero_size_raises(self, alloc):
        with pytest.raises(AllocationError):
            alloc.malloc(1, 0)


class TestLargeObjects:
    def test_baseline_large_blocks_not_line_aligned(self, alloc):
        """The paper's mis-aligned allocation: 16-byte ABI alignment
        leaves large arrays off cache-line boundaries (lreg, lu-ncb)."""
        addr, _ = alloc.malloc(1, 256 * 1024)
        assert addr % 16 == 0
        assert addr % LINE_SIZE != 0

    def test_tmi_allocator_line_aligns_large_blocks(self, tmi_alloc):
        """TMI's shared-region allocator repairs lu-ncb by itself."""
        addr, _ = tmi_alloc.malloc(1, 256 * 1024)
        assert addr % LINE_SIZE == 0

    def test_explicit_alignment_honored(self, alloc):
        addr, _ = alloc.malloc(1, 256 * 1024, align=64)
        assert addr % 64 == 0

    def test_page_alignment(self, alloc):
        addr, _ = alloc.malloc(1, 1 << 20, align=4096)
        assert addr % 4096 == 0


class TestAccounting:
    def test_live_bytes(self, alloc):
        a, _ = alloc.malloc(1, 100)
        alloc.malloc(1, 200)
        assert alloc.allocated_bytes == 300
        alloc.free(1, a)
        assert alloc.allocated_bytes == 200

    def test_peak_bytes(self, alloc):
        a, _ = alloc.malloc(1, 1000)
        alloc.free(1, a)
        alloc.malloc(1, 10)
        assert alloc.peak_bytes == 1000

    def test_arena_bytes_tracks_region(self, alloc):
        alloc.malloc(1, 64)
        assert alloc.arena_bytes >= CHUNK_BYTES
