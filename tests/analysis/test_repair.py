"""Static repair planner: planning, rewriting, artifacts, scoring.

The acceptance bars of the repair-compare experiment, pinned as tests:
plans fix what they claim (validated against simulated HITM ground
truth), rewritten programs keep bit-identical pthreads final state, the
declared residuals stay residual, and plan artifacts round-trip.
"""

import json

import pytest

from repro.analysis.ground_truth import score_repair
from repro.analysis.repair import (ALIGN, NONE, PAD, PLAN_FORMAT, SPLIT,
                                   load_plan, plan_from_dict,
                                   plan_to_dict, plan_workload,
                                   rewrite_program, save_plan)
from repro.workloads import get as get_workload

SCALE = 0.05


def _plan(name, variant="default"):
    return plan_workload(name, scale=SCALE, variant=variant)


class TestPlanner:
    def test_packed_counters_become_a_split(self):
        # racy-counters is the injected positive control: one line of
        # equal-size single-owner counters -> per-thread split, one
        # relocation per worker, all congruent mod 64 to their source.
        plan = _plan("racy-counters")
        assert [line.transformation for line in plan.lines] == [SPLIT]
        assert plan.lines[0].fixed
        workload = get_workload("racy-counters", scale=SCALE)
        assert len(plan.relocations) == workload.nthreads
        for relocation in plan.relocations:
            assert relocation.dest % 64 == relocation.offset % 64
        owners = {r.owner for r in plan.relocations}
        assert len(owners) == workload.nthreads

    def test_histogram_boundary_sharing_is_padded(self):
        plan = _plan("histogram")
        assert plan.lines, "histogram plan found no false sharing"
        assert {line.transformation for line in plan.lines} == {PAD}
        assert all(line.fixed for line in plan.lines)

    def test_lu_ncb_misalignment_is_aligned(self):
        plan = _plan("lu-ncb")
        assert ALIGN in {line.transformation for line in plan.lines}

    def test_spinlockpool_is_declared_residual(self):
        # The boost spinlock pool's hot words ARE the sync objects;
        # the planner must refuse (the paper's source-fix-needed case)
        # rather than silently move a lock out from under its waiters.
        plan = _plan("spinlockpool")
        assert plan.lines, "spinlockpool plan saw no false sharing"
        for line in plan.lines:
            assert not line.fixed
            assert line.transformation == NONE
            assert "sync object" in line.reason
        assert plan.relocations == []
        assert plan.arena_bytes == 0

    def test_fixed_variant_needs_no_plan(self):
        plan = _plan("racy-counters", variant="fixed")
        assert plan.lines == []
        assert plan.arena_bytes == 0
        assert plan.cost["score"] == 1.0

    def test_cost_model_is_static_and_bounded(self):
        plan = _plan("histogramfs")
        cost = plan.cost
        assert 0.0 <= cost["score"] <= 1.0
        assert cost["fixed_lines"] + cost["residual_lines"] == \
            cost["total_false_lines"]
        assert cost["moved_bytes"] + cost["waste_bytes"] == \
            cost["arena_bytes"]


class TestArtifacts:
    def test_plan_round_trips_through_dict(self):
        plan = _plan("racy-counters")
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone == plan

    def test_dict_form_is_deterministic(self):
        first = json.dumps(plan_to_dict(_plan("histogram")),
                           sort_keys=True)
        second = json.dumps(plan_to_dict(_plan("histogram")),
                            sort_keys=True)
        assert first == second

    def test_format_tag_is_guarded(self):
        data = plan_to_dict(_plan("racy-counters"))
        data["format"] = "repro-repair-plan/999"
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_save_and_load(self, tmp_path):
        plan = _plan("racy-counters")
        path = save_plan(plan, tmp_path / "plan.json")
        assert json.loads(path.read_text())["format"] == PLAN_FORMAT
        assert load_plan(path) == plan


class TestRewriteAndScore:
    """score_repair = HITM-ground-truth validation of one workload."""

    def test_positive_control_is_fully_repaired(self):
        score = score_repair(get_workload("racy-counters", scale=0.5))
        assert score["baseline_false_events"] > 0
        assert score["eliminated_fraction"] == 1.0
        assert score["state_identical"]
        assert score["new_false_lines"] == 0
        assert score["precision"] == 1.0 and score["recall"] == 1.0

    @pytest.mark.parametrize("name", ("histogramfs", "shptr-relaxed"))
    def test_repair_suite_member_is_repaired(self, name):
        score = score_repair(get_workload(name, scale=SCALE))
        assert score["eliminated_fraction"] == 1.0, score
        assert score["state_identical"], score
        assert score["new_false_lines"] == 0, score

    def test_declared_residual_scores_honestly(self):
        score = score_repair(get_workload("spinlockpool", scale=SCALE))
        assert score["eliminated_fraction"] == 0.0
        assert score["predicted_fixed"] == 0
        assert score["state_identical"]
        # residual prediction is still perfectly calibrated
        assert score["precision"] == 1.0 and score["recall"] == 1.0

    def test_elimination_bar_over_mixed_suite(self):
        # histogramfs + shptr-relaxed + the unrepairable spinlockpool:
        # the aggregate event-weighted elimination must clear the
        # repair-compare acceptance bar of 80%
        base = resid = 0
        for name in ("histogramfs", "shptr-relaxed", "spinlockpool"):
            score = score_repair(get_workload(name, scale=SCALE))
            base += score["baseline_false_events"]
            resid += score["repaired_false_events"]
        assert base > 0
        assert 1.0 - resid / base >= 0.8, (base, resid)

    def test_rewriter_leaves_no_partial_remaps(self):
        # a well-formed plan never produces an access that only
        # partially overlaps a relocated span
        from repro.analysis.ground_truth import collect_ground_truth
        workload = get_workload("racy-counters", scale=SCALE)
        plan = _plan("racy-counters")
        rewritten, rewriter = rewrite_program(
            workload.build("default"), plan)
        collect_ground_truth(None, program=rewritten)
        assert rewriter.stats.partial == 0
        assert rewriter.stats.spans_bound == len(plan.relocations)
        assert rewriter.stats.remapped_ops > 0


class TestEvalIntegration:
    def test_static_repaired_system_matches_pthreads_state(self):
        from repro.eval.runner import run_workload
        base = run_workload("racy-counters", "pthreads", scale=SCALE,
                            collect_state=True)
        repaired = run_workload("racy-counters", "static-repaired",
                                scale=SCALE, collect_state=True)
        assert base.ok and repaired.ok
        assert repaired.final_state == base.final_state
        assert repaired.plan["format"] == PLAN_FORMAT
        assert repaired.result.hitm_total <= base.result.hitm_total

    def test_static_tmi_system_runs_ok(self):
        from repro.eval.runner import run_workload
        outcome = run_workload("racy-counters", "static-tmi",
                               scale=SCALE, collect_state=True)
        assert outcome.ok
        assert outcome.plan["format"] == PLAN_FORMAT
