"""Vector-clock race sanitizer: positive control, race-free suite,
PTSB commit ordering, and cycle neutrality."""

import pytest

from repro.analysis.vectorclock import VectorClock
from repro.eval.runner import run_workload

#: Workloads with no data races (synchronised or disjoint accesses).
RACE_FREE = ("histogramfs", "lreg", "kmeans", "spinlockpool",
             "shptr-relaxed", "cholesky")


class TestVectorClock:
    def test_tick_join_covers(self):
        a, b = VectorClock(), VectorClock()
        a.tick(1)
        a.tick(1)
        b.tick(2)
        assert a.covers(1, 2) and not a.covers(1, 3)
        assert not a.covers(2, 1)
        a.join(b)
        assert a.covers(2, 1)

    def test_copy_is_independent(self):
        a = VectorClock()
        a.tick(1)
        b = a.copy()
        b.tick(1)
        assert a.covers(1, 1) and not a.covers(1, 2)
        assert b.covers(1, 2)


class TestPositiveControl:
    """racy-flag publishes through a volatile flag with no fence."""

    def test_default_variant_is_flagged(self):
        outcome = run_workload("racy-flag", "pthreads", sanitize=True)
        report = outcome.analysis
        assert report is not None and not report.ok
        assert any(f.rule == "data-race" for f in report.findings)
        # Both sides of the race carry their InstrSite labels.
        race = report.races[0]
        assert "payload" in race.message

    def test_fenced_variant_is_clean(self):
        outcome = run_workload("racy-flag", "pthreads", variant="fixed",
                               sanitize=True)
        assert outcome.ok
        assert outcome.analysis.ok, outcome.analysis.format()


class TestRaceFreeSuite:
    @pytest.mark.parametrize("system", ("pthreads", "tmi-protect"))
    @pytest.mark.parametrize("name", RACE_FREE)
    def test_no_races_reported(self, name, system):
        outcome = run_workload(name, system, scale=0.05, sanitize=True)
        report = outcome.analysis
        assert report.races == [], report.format()
        assert report.commit_violations == [], report.format()

    def test_tmi_commits_are_actually_checked(self):
        outcome = run_workload("histogramfs", "tmi-protect", scale=0.05,
                               sanitize=True)
        assert outcome.analysis.commits_checked > 0


class TestCycleNeutrality:
    """Attaching the sanitizer must not perturb the simulation."""

    @pytest.mark.parametrize("system", ("pthreads", "tmi-protect"))
    def test_cycles_identical_with_and_without(self, system):
        plain = run_workload("histogramfs", system, scale=0.05)
        traced = run_workload("histogramfs", system, scale=0.05,
                              sanitize=True)
        assert plain.cycles == traced.cycles
        assert plain.result.hitm_total == traced.result.hitm_total
