"""Edge cases of the Predator-style line classifier.

Two layers: direct mask-level classification (the byte-overlap rule on
hand-built inputs) and extractor-driven classification of synthetic
programs exercising the layouts the rule most easily gets wrong --
objects spanning line boundaries, adjacent objects with zero byte
overlap, and line-boundary-aligned objects that only look shared.
"""

import pytest

from repro.analysis.extract import TraceExtractor
from repro.analysis.layout_check import (classify_lines,
                                         false_sharing_lines,
                                         true_sharing_lines)
from repro.engine import Program
from repro.isa import Binary

LINE = 64


class TestMaskClassification:
    """classify_lines on hand-built {line: {tid: [r, w]}} inputs."""

    def test_zero_byte_overlap_adjacency_is_false_sharing(self):
        # Two writers on one line whose byte masks touch back to back
        # (bytes 0-7 and 8-15) but never overlap: false sharing.
        lines = {0x1000: {1: [0, 0x00FF], 2: [0, 0xFF00]}}
        shared = classify_lines(lines)
        assert len(shared) == 1
        assert false_sharing_lines(shared) == shared
        assert shared[0].writer_tids == (1, 2)

    def test_single_byte_overlap_is_true_sharing(self):
        lines = {0x1000: {1: [0, 0x01FF], 2: [0, 0xFF00]}}
        shared = classify_lines(lines)
        assert true_sharing_lines(shared) == shared

    def test_write_overlapping_foreign_read_is_true_sharing(self):
        # A writer whose bytes another thread only READS still truly
        # shares -- the reader's misses are communication, not layout.
        lines = {0x1000: {1: [0, 0x0F], 2: [0x0F, 0]}}
        shared = classify_lines(lines)
        assert true_sharing_lines(shared) == shared

    def test_readers_only_line_is_not_shared(self):
        lines = {0x1000: {1: [0xFF, 0], 2: [0xFF00, 0]}}
        assert classify_lines(lines) == []

    def test_single_thread_line_is_not_shared(self):
        lines = {0x1000: {1: [0xFF, 0xFF]}}
        assert classify_lines(lines) == []

    def test_zero_mask_thread_is_ignored(self):
        # A tid present in the map with empty masks must not count
        # toward the >= 2 threads rule.
        lines = {0x1000: {1: [0, 0xFF], 2: [0, 0]}}
        assert classify_lines(lines) == []

    def test_lines_sorted_by_address(self):
        lines = {
            0x2000: {1: [0, 0x0F], 2: [0, 0xF0]},
            0x1000: {1: [0, 0x0F], 2: [0, 0xF0]},
        }
        shared = classify_lines(lines)
        assert [s.line_va for s in shared] == [0x1000, 0x2000]


def _extract(builder, nthreads):
    program = Program("synthetic", Binary("synthetic"), builder,
                      nthreads=nthreads)
    return TraceExtractor(program).run()


def _two_writer_program(offset_a, offset_b, width=8, read_b=False):
    """main mallocs one block; two workers touch it at fixed offsets."""

    def main(t):
        base = yield from t.malloc(4 * LINE, align=LINE)

        def worker_a(t):
            for _ in range(4):
                yield from t.store(base + offset_a, 1, width)

        def worker_b(t):
            for _ in range(4):
                if read_b:
                    yield from t.load(base + offset_b, width)
                else:
                    yield from t.store(base + offset_b, 2, width)

        tids = []
        for body in (worker_a, worker_b):
            tid = yield from t.spawn(body)
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)

    return main


def _classified(extracted):
    return classify_lines(extracted.lines, extracted.line_sites)


class TestExtractorEdgeCases:
    """Classification of traced synthetic layouts."""

    def _base(self, extracted):
        base = extracted.allocations[0].base
        assert base % LINE == 0, "allocator no longer line-aligns"
        return base

    def test_multi_line_object_flags_only_straddled_line(self):
        # One object covers lines 0-1; A owns all of line 0 plus the
        # first bytes of line 1, B writes right after A's bytes.  Only
        # the straddled line falsely shares; A's private line is quiet.
        extracted = _extract(
            _two_writer_program(LINE + 0, LINE + 8), nthreads=2)
        base = self._base(extracted)
        shared = _classified(extracted)
        assert [s.line_va for s in shared] == [base + LINE]
        assert false_sharing_lines(shared) == shared

    def test_object_written_across_line_boundary_fuses_lines(self):
        # A's 8-byte store straddles the line boundary (starts at
        # offset 60): both lines see A, and B's line falsely shares.
        extracted = _extract(
            _two_writer_program(LINE - 4, LINE + 8), nthreads=2)
        base = self._base(extracted)
        shared = _classified(extracted)
        assert [s.line_va for s in shared] == [base + LINE]
        straddler = extracted.lines[base][1]
        assert straddler[1], "straddling store left no mask on line 0"

    def test_zero_byte_overlap_adjacency_traced(self):
        extracted = _extract(
            _two_writer_program(0, 8), nthreads=2)
        base = self._base(extracted)
        shared = _classified(extracted)
        assert [s.line_va for s in shared] == [base]
        assert false_sharing_lines(shared) == shared

    def test_adjacent_writer_and_reader_overlap_is_true(self):
        # B reads the very bytes A writes: true sharing, not layout.
        extracted = _extract(
            _two_writer_program(0, 0, read_b=True), nthreads=2)
        shared = _classified(extracted)
        assert true_sharing_lines(shared) == shared

    def test_line_boundary_aligned_objects_do_not_share(self):
        # Each worker owns its own whole line: no shared line at all.
        extracted = _extract(
            _two_writer_program(0, LINE), nthreads=2)
        assert _classified(extracted) == []


class TestRepairSuiteConsistency:
    """The classifier agrees with the repair suite's declarations."""

    @pytest.mark.parametrize("name", ("histogramfs", "lu-ncb"))
    def test_declared_false_sharing_is_classified(self, name):
        from repro.workloads import get as get_workload
        program = get_workload(name, scale=0.05).build("default")
        extracted = TraceExtractor(program).run()
        shared = classify_lines(extracted.lines, extracted.line_sites)
        assert false_sharing_lines(shared), name
