"""Static linter: FS prediction accuracy, feature cross-checks, clean
runs over the shipped registry workloads."""

import pytest

from repro.analysis import ERROR, WARNING, lint_program, lint_workload
from repro.analysis.ground_truth import (collect_ground_truth,
                                         precision_recall)
from repro.workloads import get as get_workload

#: Phoenix kernels with a deliberately seeded false-sharing layout.
PHOENIX_FS = ("histogramfs", "lreg", "stringmatch")


class TestPhoenixAccuracy:
    """Acceptance bar: recall 1.0 against simulated HITM ground truth."""

    @pytest.mark.parametrize("name", PHOENIX_FS)
    def test_recall_is_one_on_seeded_false_sharing(self, name):
        report = lint_workload(name, scale=0.05)
        truth = collect_ground_truth(get_workload(name, scale=0.05))
        assert truth.false_lines, f"{name}: ground truth found no FS"
        precision, recall, tp, fp, fn = precision_recall(
            report.predicted_false, truth.false_lines)
        assert recall == 1.0, (name, tp, fn, report.format())
        assert precision == 1.0, (name, tp, fp, report.format())

    def test_fixed_variant_predicts_no_false_sharing(self):
        report = lint_workload("histogramfs", scale=0.05, variant="fixed")
        assert report.predicted_false == []


class TestFeatureCrossCheck:
    def test_declared_fs_without_findings_is_error(self):
        # The fixed variant keeps has_false_sharing=False, so force the
        # declaration through a default build at a scale where the
        # linter still sees the boundary lines -- then lie about it by
        # linting the padded layout under the default feature set.
        from repro.engine import Program
        from repro.isa import Binary

        def main(t):
            yield from t.compute(1)

        program = Program("liar", Binary("liar"), main, nthreads=2)
        program.features.has_false_sharing = True
        report = lint_program(program)
        rules = [f.rule for f in report.findings]
        assert "feature-mismatch" in rules
        assert report.error_count >= 1

    def test_undeclared_atomics_is_error(self):
        from repro.engine import Program
        from repro.isa import Binary

        def main(t):
            buf = yield from t.malloc(64, align=64)
            yield from t.atomic_add(buf, 1, 8)

        program = Program("sneaky", Binary("sneaky"), main, nthreads=1)
        assert not program.features.uses_atomics
        report = lint_program(program)
        bad = [f for f in report.findings
               if f.rule == "feature-mismatch" and f.severity == ERROR]
        assert bad, report.format()

    def test_declared_unused_atomics_is_warning(self):
        from repro.engine import Program
        from repro.isa import Binary

        def main(t):
            yield from t.compute(1)

        program = Program("braggart", Binary("braggart"), main,
                          nthreads=1)
        program.features.uses_atomics = True
        report = lint_program(program)
        unused = [f for f in report.findings
                  if f.rule == "feature-unused" and f.severity == WARNING]
        assert unused, report.format()


class TestRegistryClean:
    """Every shipped workload lints without errors (the CI gate)."""

    @pytest.mark.parametrize("name",
                             ("histogramfs", "kmeans", "spinlockpool",
                              "cholesky", "racy-flag", "leveldb-fs"))
    def test_workload_lints_clean(self, name):
        report = lint_workload(name, scale=0.05)
        assert report.ok, report.format()

    def test_known_fs_workloads_are_predicted(self):
        for name in ("histogramfs", "lreg", "spinlockpool"):
            report = lint_workload(name, scale=0.05)
            assert report.predicted_false, report.format()


class TestJsonReport:
    """The machine-readable repro-lint-report/1 schema must stay
    stable: CI pipelines parse it (see .github/workflows/ci.yml)."""

    def test_report_dict_schema(self):
        import json

        from repro.analysis.lint import LINT_FORMAT

        doc = lint_workload("histogramfs", scale=0.05).to_dict()
        assert doc["format"] == LINT_FORMAT == "repro-lint-report/1"
        assert sorted(doc.keys()) == [
            "counts", "findings", "format", "ok", "ops",
            "predicted_false", "predicted_true", "threads",
            "truncated", "workload"]
        for finding in doc["findings"]:
            assert {"rule", "severity", "message"} <= set(finding)
        json.dumps(doc, sort_keys=True)  # must be JSON-serializable

    def test_report_dict_is_deterministic(self):
        import json

        first = json.dumps(lint_workload("lreg", scale=0.05).to_dict(),
                           sort_keys=True)
        second = json.dumps(lint_workload("lreg", scale=0.05).to_dict(),
                            sort_keys=True)
        assert first == second

    def test_meets_severity_thresholds(self):
        from repro.analysis.findings import meets_severity

        findings = lint_workload("histogramfs", scale=0.05).findings
        assert findings  # info-level false-sharing predictions
        assert meets_severity(findings, "info")
        assert not meets_severity(findings, "error")
        assert not meets_severity([], "info")
