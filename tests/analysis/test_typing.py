"""Typecheck gate for the ratcheted mypy config in pyproject.toml.

CI installs mypy and runs the same invocation as its typecheck job;
locally the test skips when mypy isn't available (the container image
doesn't bake it in).
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="mypy not installed; CI enforces it")

REPO = Path(__file__).resolve().parents[2]


def test_mypy_ratchet_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy",
         "src/repro/analysis", "src/repro/engine/vector",
         "src/repro/mapping"],
        capture_output=True, text=True, cwd=REPO)
    assert proc.returncode == 0, proc.stdout + proc.stderr
