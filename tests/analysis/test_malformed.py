"""Malformed op streams: the engine rejects them at runtime and the
linter flags the same defects statically, without simulating."""

import pytest

from repro.analysis import ERROR, lint_program
from repro.engine import Program
from repro.errors import DeadlockError, SimulationError
from repro.isa import Binary

from helpers import run_program


def _rules(report, severity=None):
    return [f.rule for f in report.findings
            if severity is None or f.severity == severity]


class TestUnbalancedRegion:
    @staticmethod
    def _main(t):
        yield from t.asm_begin()
        yield from t.compute(10)
        # exits with the asm region still open

    def test_engine_raises(self):
        with pytest.raises(SimulationError, match="open region"):
            run_program(self._main, nthreads=1)

    def test_linter_flags_statically(self):
        program = Program("openregion", Binary("openregion"), self._main,
                          nthreads=1)
        report = lint_program(program)
        assert "region-nesting" in _rules(report, ERROR), report.format()


class TestUnlockWithoutLock:
    @staticmethod
    def _main(t):
        mutex = yield from t.mutex("m")
        yield from t.unlock(mutex)

    def test_engine_raises(self):
        with pytest.raises(SimulationError, match="unlock"):
            run_program(self._main, nthreads=1)

    def test_linter_flags_statically(self):
        program = Program("badunlock", Binary("badunlock"), self._main,
                          nthreads=1)
        report = lint_program(program)
        assert "lock-pairing" in _rules(report, ERROR), report.format()


class TestBarrierMismatch:
    @staticmethod
    def _main(t):
        # Barrier sized for 3 parties but only 2 threads ever arrive.
        barrier = yield from t.barrier(3, "b")

        def worker(w):
            yield from w.barrier_wait(barrier)

        tid = yield from t.spawn(worker, "w0")
        yield from t.barrier_wait(barrier)
        yield from t.join(tid)

    def test_engine_deadlocks(self):
        with pytest.raises(DeadlockError):
            run_program(self._main, nthreads=2)

    def test_linter_flags_statically(self):
        program = Program("badbarrier", Binary("badbarrier"), self._main,
                          nthreads=2)
        report = lint_program(program)
        assert "barrier-mismatch" in _rules(report, ERROR), report.format()


class TestLayoutChecks:
    def test_line_straddle_is_flagged(self):
        binary = Binary("straddle")
        st = binary.store_site("st", 8)

        def main(t):
            buf = yield from t.malloc(128, align=64)
            yield from t.store(buf + 60, 1, 8, site=st)

        program = Program("straddle", binary, main, nthreads=1)
        report = lint_program(program)
        assert "line-straddle" in _rules(report, ERROR), report.format()

    def test_width_mismatch_is_flagged(self):
        binary = Binary("width")
        st = binary.store_site("st", 8)

        def main(t):
            buf = yield from t.malloc(64, align=64)
            yield from t.store(buf, 1, 4, site=st)

        program = Program("width", binary, main, nthreads=1)
        report = lint_program(program)
        assert "access-width-mismatch" in _rules(report), report.format()

    def test_store_through_load_site_is_flagged(self):
        binary = Binary("kind")
        ld = binary.load_site("ld", 8)

        def main(t):
            buf = yield from t.malloc(64, align=64)
            yield from t.store(buf, 1, 8, site=ld)

        program = Program("kind", binary, main, nthreads=1)
        report = lint_program(program)
        assert "access-kind-mismatch" in _rules(report, ERROR), \
            report.format()
