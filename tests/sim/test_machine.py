"""Machine: clocks, access plumbing, HITM listeners."""

from repro.sim.machine import Machine


class TestClocks:
    def test_advance_per_core(self, machine):
        machine.advance(0, 100)
        machine.advance(2, 50)
        assert machine.core_clock[0] == 100
        assert machine.core_clock[2] == 50
        assert machine.now == 100

    def test_elapsed_seconds(self, machine):
        machine.advance(0, int(machine.costs.cycles_per_second))
        assert machine.elapsed_seconds() == 1.0


class TestMemAccess:
    def test_write_then_read_roundtrip(self, machine):
        pa = machine.physmem.alloc(4096)
        machine.mem_access(0, 0, 0, 0x1000, pa, 8, True, value=123)
        _, value = machine.mem_access(0, 0, 0, 0x1000, pa, 8, False)
        assert value == 123

    def test_costs_accumulate_coherence(self, machine):
        pa = machine.physmem.alloc(4096)
        cost_cold, _ = machine.mem_access(0, 0, 0, 0, pa, 8, False)
        cost_hit, _ = machine.mem_access(0, 0, 0, 0, pa, 8, False)
        assert cost_cold > cost_hit

    def test_hitm_listener_fires_and_charges(self, machine):
        pa = machine.physmem.alloc(4096)
        seen = []
        machine.add_hitm_listener(lambda e: seen.append(e) or 99)
        machine.mem_access(0, 0, 0x400000, 0x1000, pa, 8, True, value=1)
        cost, _ = machine.mem_access(1, 1, 0x400004, 0x1000, pa, 8,
                                     False)
        assert len(seen) == 1
        event = seen[0]
        assert event.core == 1 and event.remote_core == 0
        assert event.pc == 0x400004 and event.va == 0x1000
        assert not event.is_store
        assert cost >= machine.costs.hitm_load + 99

    def test_hitm_counter(self, machine):
        pa = machine.physmem.alloc(4096)
        machine.mem_access(0, 0, 0, 0, pa, 8, True, value=1)
        machine.mem_access(1, 1, 0, 0, pa, 8, False)   # load HITM
        machine.mem_access(2, 2, 0, 0, pa, 8, True, value=2)  # upgrade
        machine.mem_access(3, 3, 0, 0, pa, 8, True, value=3)  # store HITM
        assert machine.hitm_events == 2
