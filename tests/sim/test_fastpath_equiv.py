"""Differential test: optimized directory vs. the reference model.

``CoherenceDirectory`` carries an owner micro-cache and a pooled
outcome object; ``ReferenceDirectory`` is the straight-line
pre-optimization model.  Any trace must produce identical per-access
costs, HITM events, counters, and MESI state through both — the fast
path is an implementation detail, never a semantic one.
"""

import random

import pytest

from repro.sim.cache import CoherenceDirectory
from repro.sim.cache_ref import ReferenceDirectory
from repro.sim.costs import LINE_SIZE, CostModel

N_CORES = 8
BASE = 0x40_0000


def replay(steps):
    """Run one trace through both directories, comparing as we go."""
    costs = CostModel()
    fast = CoherenceDirectory(costs, N_CORES)
    ref = ReferenceDirectory(costs, N_CORES)
    for step in steps:
        if step[0] == "flush":
            _, pa, nbytes = step
            fast.flush_range(pa, nbytes)
            ref.flush_range(pa, nbytes)
            continue
        if step[0] == "invalidate":
            # the engine calls this on thread-to-process conversion;
            # the reference model has no cache to drop
            fast.invalidate_fast_path()
            continue
        _, core, pa, width, is_write, now = step
        got = fast.access(core, pa, width, is_write, now=now)
        # the fast outcome is pooled: snapshot before the next access
        got_cost, got_hitm, got_lines = (got.cost,
                                         list(got.hitm_remotes),
                                         got.lines)
        want = ref.access(core, pa, width, is_write, now=now)
        assert got_cost == want.cost, step
        assert got_hitm == want.hitm_remotes, step
        assert got_lines == want.lines, step
        assert fast.line_holders(pa) == ref.line_holders(pa), step

    assert fast.hitm_load_count == ref.hitm_load_count
    assert fast.hitm_store_count == ref.hitm_store_count
    assert fast.access_count == ref.access_count
    assert fast.contended_accesses == ref.contended_accesses
    assert fast.check_swmr() == ref.check_swmr()
    assert fast._lines == ref._lines


def random_trace(seed, length=3000):
    """Mixed trace biased toward fast-path installs and evictions."""
    rng = random.Random(seed)
    steps = []
    now = 0
    for _ in range(length):
        now += rng.randrange(0, 40)
        roll = rng.random()
        if roll < 0.02:
            line = rng.randrange(0, 6) * LINE_SIZE
            steps.append(("flush", BASE + line,
                          rng.choice((8, LINE_SIZE, 3 * LINE_SIZE))))
            continue
        if roll < 0.03:
            steps.append(("invalidate",))
            continue
        # a small line set so cores keep colliding, with runs of
        # same-core accesses so the micro-cache installs and hits
        core = rng.randrange(N_CORES) if roll < 0.5 else 0
        line = rng.randrange(0, 6) * LINE_SIZE
        offset = rng.choice((0, 8, 56, 60))        # 60 straddles lines
        width = rng.choice((1, 4, 8))
        is_write = rng.random() < 0.5
        steps.append(("access", core, BASE + line + offset, width,
                      is_write, now))
    return steps


@pytest.mark.parametrize("seed", range(8))
def test_random_traces_match_reference(seed):
    replay(random_trace(seed))


def test_owner_hammer_matches_reference():
    """The pattern the micro-cache exists for: one core re-writing its
    own modified line thousands of times, occasionally disturbed."""
    steps = []
    now = 0
    for i in range(5000):
        now += 5
        if i % 997 == 0:
            steps.append(("access", 1, BASE, 8, False, now))
        elif i % 499 == 0:
            steps.append(("flush", BASE, 64))
        else:
            steps.append(("access", 0, BASE + (i % 7) * 8, 8,
                          i % 3 != 0, now))
    replay(steps)


def test_exclusive_to_modified_in_place():
    """A fast-path write to an E line must upgrade exactly like the
    reference (silent E->M, store-hit cost)."""
    steps = [("access", 0, BASE, 8, False, 0)]       # E fill
    steps += [("access", 0, BASE, 8, True, 100 * i)  # repeated stores
              for i in range(1, 50)]
    steps.append(("access", 2, BASE, 8, False, 6000))  # HITM read
    replay(steps)


def test_flush_then_reaccess_matches():
    """flush_range must drop micro-cache entries and contention
    history together; the next access re-fills from memory."""
    steps = []
    for i in range(20):
        steps.append(("access", 0, BASE, 8, True, i * 10))
    steps.append(("flush", BASE, 8))
    steps.append(("access", 0, BASE, 8, True, 300))
    steps.append(("access", 1, BASE, 8, False, 310))
    replay(steps)
