"""Coherence directory: MESI transitions, HITM events, contention."""

import pytest

from repro.sim.cache import (CoherenceDirectory, EXCLUSIVE, MODIFIED,
                             SHARED_ST)
from repro.sim.costs import CostModel

LINE = 0x1000


@pytest.fixture
def directory():
    return CoherenceDirectory(CostModel(), n_cores=4)


class TestMesiStates:
    def test_cold_read_gets_exclusive(self, directory):
        directory.access(0, LINE, 8, False)
        assert directory.line_holders(LINE) == {0: EXCLUSIVE}

    def test_write_gets_modified(self, directory):
        directory.access(0, LINE, 8, True)
        assert directory.line_holders(LINE) == {0: MODIFIED}

    def test_second_reader_demotes_exclusive(self, directory):
        directory.access(0, LINE, 8, False)
        directory.access(1, LINE, 8, False)
        assert directory.line_holders(LINE) == {0: SHARED_ST, 1: SHARED_ST}

    def test_write_invalidates_sharers(self, directory):
        directory.access(0, LINE, 8, False)
        directory.access(1, LINE, 8, False)
        directory.access(2, LINE, 8, True)
        assert directory.line_holders(LINE) == {2: MODIFIED}

    def test_exclusive_upgrade_is_silent(self, directory):
        directory.access(0, LINE, 8, False)
        out = directory.access(0, LINE, 8, True)
        assert directory.line_holders(LINE) == {0: MODIFIED}
        assert not out.hitm

    def test_own_modified_hits(self, directory):
        directory.access(0, LINE, 8, True)
        out = directory.access(0, LINE, 8, False)
        assert out.cost == CostModel().load_hit


class TestHitm:
    def test_load_from_remote_modified_is_hitm(self, directory):
        directory.access(0, LINE, 8, True)
        out = directory.access(1, LINE, 8, False)
        assert out.hitm and out.hitm_remotes == [0]
        assert directory.hitm_load_count == 1
        # supplier demoted, both now shared
        assert directory.line_holders(LINE) == {0: SHARED_ST, 1: SHARED_ST}

    def test_store_to_remote_modified_is_store_hitm(self, directory):
        directory.access(0, LINE, 8, True)
        out = directory.access(1, LINE, 8, True)
        assert out.hitm
        assert directory.hitm_store_count == 1
        assert directory.line_holders(LINE) == {1: MODIFIED}

    def test_clean_sharing_is_not_hitm(self, directory):
        directory.access(0, LINE, 8, False)
        out = directory.access(1, LINE, 8, False)
        assert not out.hitm

    def test_same_line_different_bytes_still_hitm(self, directory):
        """False sharing: disjoint bytes, same line."""
        directory.access(0, LINE, 8, True)
        out = directory.access(1, LINE + 56, 8, False)
        assert out.hitm

    def test_different_lines_no_hitm(self, directory):
        directory.access(0, LINE, 8, True)
        out = directory.access(1, LINE + 64, 8, False)
        assert not out.hitm

    def test_split_access_touches_both_lines(self, directory):
        out = directory.access(0, LINE + 60, 8, True)
        assert out.lines == 2
        assert directory.line_holders(LINE) == {0: MODIFIED}
        assert directory.line_holders(LINE + 64) == {0: MODIFIED}

    def test_hitm_costs_dominate_hits(self, directory):
        costs = CostModel()
        directory.access(0, LINE, 8, True, now=0)
        hitm = directory.access(1, LINE, 8, False, now=1).cost
        quiet = 1 + 10 * costs.contend_window
        hit = directory.access(1, LINE, 8, False, now=quiet).cost
        assert hitm >= costs.hitm_load
        assert hitm / hit > 50


class TestFlush:
    def test_flush_range_invalidates(self, directory):
        directory.access(0, LINE, 8, True)
        directory.flush_range(LINE, 64)
        assert directory.line_holders(LINE) == {}

    def test_flush_covers_partial_lines(self, directory):
        directory.access(0, LINE, 8, True)
        directory.access(0, LINE + 64, 8, True)
        directory.flush_range(LINE + 32, 40)    # straddles both
        assert directory.line_holders(LINE) == {}
        assert directory.line_holders(LINE + 64) == {}


class TestContention:
    def test_uncontended_pays_no_penalty(self, directory):
        costs = CostModel()
        directory.access(0, LINE, 8, True, now=0)
        cost = directory.access(0, LINE, 8, True, now=10).cost
        assert cost == costs.store_hit

    def test_read_only_sharing_pays_no_penalty(self, directory):
        costs = CostModel()
        directory.access(0, LINE, 8, False, now=0)
        directory.access(1, LINE, 8, False, now=10)
        cost = directory.access(2, LINE, 8, False, now=20).cost
        assert cost == costs.shared_fill

    def test_conflicting_access_pays_penalty(self, directory):
        costs = CostModel()
        directory.access(0, LINE, 8, True, now=0)
        out = directory.access(1, LINE, 8, False, now=100)
        assert out.cost >= costs.hitm_load + costs.contend_penalty

    def test_penalty_scales_with_conflicting_cores(self, directory):
        directory.access(0, LINE, 8, True, now=0)
        c1 = directory.access(1, LINE, 8, True, now=10).cost
        directory.access(2, LINE, 8, True, now=20)
        directory.access(3, LINE, 8, True, now=30)
        c2 = directory.access(1, LINE, 8, True, now=40).cost
        assert c2 > c1

    def test_penalty_expires_after_window(self, directory):
        costs = CostModel()
        directory.access(0, LINE, 8, True, now=0)
        directory.access(1, LINE, 8, True, now=10)
        late = directory.access(1, LINE, 8, True,
                                now=10 + costs.contend_window + 1).cost
        assert late == costs.store_hit

    def test_swmr_invariant_always_holds(self, directory):
        for step in range(200):
            core = step % 4
            directory.access(core, LINE + (step % 3) * 64, 8,
                             step % 2 == 0, now=step * 10)
        directory.check_swmr()
