"""Multi-socket topology: geometry math, the single-socket degenerate
case, and the NUMA cost model.

Three pins, in order of importance:

1. ``sockets=1`` is *byte-identical* to the historical machine: a
   directory built with a one-socket topology must replay any trace
   with exactly the costs, counters, and MESI state of a directory
   built with no topology at all (the seed goldens depend on this).
2. The NUMA branches of the optimized directory match the reference
   model (``cache_ref``) step for step on multi-socket traces.
3. The individual cost rules (cross-socket HITM, remote shared fill,
   remote cold fill, cross-socket invalidation) charge exactly the
   knobs in :mod:`repro.sim.costs`.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.cache import CoherenceDirectory
from repro.sim.cache_ref import ReferenceDirectory
from repro.sim.costs import LINE_SIZE, CostModel
from repro.sim.machine import Machine
from repro.sim.topology import SINGLE_SOCKET, Topology

BASE = 0x40_0000


# ---------------------------------------------------------------- geometry

def test_topology_geometry():
    topo = Topology(sockets=2, cores_per_socket=4)
    assert topo.n_cores == 8
    assert [topo.socket_of(c) for c in range(8)] == [0, 0, 0, 0,
                                                     1, 1, 1, 1]
    assert list(topo.cores_of(0)) == [0, 1, 2, 3]
    assert list(topo.cores_of(1)) == [4, 5, 6, 7]
    assert topo.socket_map() == (0, 0, 0, 0, 1, 1, 1, 1)


def test_topology_fit_ceiling():
    # fit() covers n_cores with the fewest cores per socket
    assert Topology.fit(10, 2) == Topology(2, 5)
    assert Topology.fit(9, 2) == Topology(2, 5)       # ceiling
    assert Topology.fit(8, 1) == Topology(1, 8)
    assert Topology.fit(3, 4).n_cores >= 3            # degenerate
    assert SINGLE_SOCKET.sockets == 1


def test_topology_validation():
    with pytest.raises(SimulationError):
        Topology(sockets=0, cores_per_socket=4)
    with pytest.raises(SimulationError):
        Topology(sockets=2, cores_per_socket=0)
    with pytest.raises(SimulationError):
        Machine(n_cores=8, topology=Topology(2, 2))   # covers only 4
    with pytest.raises(SimulationError):
        Machine(n_cores=8, pages="spray")


# ------------------------------------------- sockets=1 degenerate case

def random_trace(seed, n_cores, length=2500):
    """Contended mixed trace over a small line set."""
    rng = random.Random(seed)
    steps = []
    now = 0
    for _ in range(length):
        now += rng.randrange(0, 40)
        if rng.random() < 0.02:
            steps.append(("flush", BASE + rng.randrange(0, 6) * LINE_SIZE,
                          rng.choice((8, LINE_SIZE))))
            continue
        core = rng.randrange(n_cores)
        line = rng.randrange(0, 6) * LINE_SIZE
        steps.append(("access", core, BASE + line + rng.choice((0, 8, 56)),
                      rng.choice((1, 4, 8)), rng.random() < 0.5, now))
    return steps


def snapshot(directory):
    return (directory.hitm_load_count, directory.hitm_store_count,
            directory.access_count, directory.contended_accesses,
            directory.hitm_cross_socket_count, directory.qpi_hops,
            directory.remote_mem_fills, directory._lines)


def replay_pair(left, right, steps):
    """Replay one trace through two directories, comparing each step."""
    for step in steps:
        if step[0] == "flush":
            _, pa, nbytes = step
            left.flush_range(pa, nbytes)
            right.flush_range(pa, nbytes)
            continue
        _, core, pa, width, is_write, now = step
        got = left.access(core, pa, width, is_write, now=now)
        got_cost, got_hitm = got.cost, list(got.hitm_remotes)
        want = right.access(core, pa, width, is_write, now=now)
        assert got_cost == want.cost, step
        assert got_hitm == want.hitm_remotes, step
    assert snapshot(left) == snapshot(right)


@pytest.mark.parametrize("seed", range(4))
def test_single_socket_topology_is_byte_identical(seed):
    """A one-socket topology takes zero NUMA branches: identical to a
    directory with no topology at all (what the seed goldens ran)."""
    costs = CostModel()
    plain = CoherenceDirectory(costs, 8)
    topo = CoherenceDirectory(costs, 8, topology=Topology(1, 8))
    replay_pair(topo, plain, random_trace(seed, 8))


# ------------------------------------------------- NUMA differential

def first_touch_home():
    """A shared idempotent home_of: first accessor's socket wins."""
    topo = Topology(2, 4)
    homes = {}

    def home_of(line, core):
        frame = line >> 12
        if frame not in homes:
            homes[frame] = topo.socket_of(core)
        return homes[frame]

    return home_of


@pytest.mark.parametrize("seed", range(6))
def test_numa_traces_match_reference(seed):
    """Optimized vs reference directory on a 2-socket machine: every
    per-access cost and every NUMA counter must agree."""
    costs = CostModel()
    topo = Topology(2, 4)
    home = first_touch_home()
    fast = CoherenceDirectory(costs, 8, topology=topo, home_of=home)
    ref = ReferenceDirectory(costs, 8, topology=topo, home_of=home)
    replay_pair(fast, ref, random_trace(seed, 8))


# ------------------------------------------------------ cost rules

def two_socket_dir(home_socket=0):
    costs = CostModel()
    topo = Topology(2, 4)
    d = CoherenceDirectory(costs, 8, topology=topo,
                           home_of=lambda line, core: home_socket)
    return d, costs


def test_cross_socket_hitm_charges_qpi_hop():
    d, costs = two_socket_dir()
    d.access(0, BASE, 8, True, now=0)                 # M on socket 0
    local = d.access(1, BASE, 8, False, now=10).cost  # HITM, same socket
    d.flush_range(BASE, 64)
    d.access(0, BASE, 8, True, now=20)                # M on socket 0
    remote = d.access(4, BASE, 8, False, now=30).cost  # HITM, socket 1
    assert remote == local + costs.qpi_hop
    assert d.hitm_cross_socket_count == 1
    assert d.qpi_hops >= 1


def test_remote_cold_fill_charges_numa_latency():
    d, costs = two_socket_dir(home_socket=1)
    # core 0 (socket 0) cold-fills a line homed on socket 1
    filled = d.access(0, BASE, 8, False, now=0).cost
    d2, _ = two_socket_dir(home_socket=0)
    local = d2.access(0, BASE, 8, False, now=0).cost
    assert filled == local + costs.numa_remote_fill
    assert d.remote_mem_fills == 1
    assert d2.remote_mem_fills == 0


def test_shared_fill_from_remote_socket_hops():
    d, costs = two_socket_dir()
    d.access(0, BASE, 8, False, now=0)                 # E on socket 0
    near = d.access(1, BASE, 8, False, now=10).cost    # S, holder local
    d.flush_range(BASE, 64)
    d.access(0, BASE, 8, False, now=20)                # E on socket 0
    far = d.access(4, BASE, 8, False, now=30).cost     # S, holder remote
    assert far == near + costs.qpi_hop


def test_cross_socket_invalidate_hops():
    d, costs = two_socket_dir()
    d.access(0, BASE, 8, False, now=0)
    d.access(1, BASE, 8, False, now=10)                # S on socket 0
    near = d.access(0, BASE, 8, True, now=20).cost     # upgrade, local
    d.flush_range(BASE, 64)
    d.access(0, BASE, 8, False, now=30)
    d.access(4, BASE, 8, False, now=40)                # S across sockets
    far = d.access(0, BASE, 8, True, now=50).cost      # remote invalidate
    assert far == near + costs.qpi_hop


# ------------------------------------------------------- machine level

def test_machine_home_node_policies():
    topo = Topology(2, 4)
    ft = Machine(n_cores=8, topology=topo, pages="first-touch")
    # first touch from core 5 (socket 1) homes the page there
    ft.directory.access(5, BASE, 8, False, now=0)
    assert ft.physmem.home_node(BASE) == 1
    # later touches from the other socket don't move it
    ft.directory.access(0, BASE + 64, 8, False, now=10)
    assert ft.physmem.home_node(BASE + 64) == 1

    il = Machine(n_cores=8, topology=topo, pages="interleave")
    il.directory.access(5, BASE, 8, False, now=0)
    assert il.physmem.home_node(BASE) == (BASE >> 12) % 2


def test_machine_metrics_gated_on_sockets():
    single = Machine(n_cores=8)
    from repro.obs import MetricsRegistry
    reg = MetricsRegistry()
    single.fill_metrics(reg)
    assert not any(key.startswith("machine.sockets")
                   for key in reg.snapshot()["gauges"])
    multi = Machine(n_cores=8, topology=Topology(2, 4))
    reg2 = MetricsRegistry()
    multi.fill_metrics(reg2)
    assert reg2.snapshot()["gauges"]["machine.sockets"] == 2
