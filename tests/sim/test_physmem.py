"""Physical memory: allocation, lazy materialization, data integrity."""

import pytest

from repro.errors import SimulationError
from repro.sim.physmem import PhysicalMemory


class TestAllocation:
    def test_alloc_returns_nonoverlapping_ranges(self, physmem):
        a = physmem.alloc(4096)
        b = physmem.alloc(4096)
        assert abs(a - b) >= 4096

    def test_alloc_respects_alignment(self, physmem):
        for align in (4096, 1 << 16, 1 << 21):
            pa = physmem.alloc(4096, align=align)
            assert pa % align == 0

    def test_alloc_rounds_to_chunk(self, physmem):
        before = physmem.reserved_bytes
        physmem.alloc(100)
        assert physmem.reserved_bytes - before == 4096

    def test_alloc_zero_raises(self, physmem):
        with pytest.raises(SimulationError):
            physmem.alloc(0)

    def test_alloc_bad_alignment_raises(self, physmem):
        with pytest.raises(SimulationError):
            physmem.alloc(4096, align=3000)

    def test_free_recycles(self, physmem):
        a = physmem.alloc(8192)
        physmem.free(a, 8192)
        b = physmem.alloc(8192)
        assert b == a

    def test_freed_range_reads_zero(self, physmem):
        a = physmem.alloc(4096)
        physmem.write(a, b"\xff" * 64)
        physmem.free(a, 4096)
        b = physmem.alloc(4096)
        assert physmem.read(b, 64) == b"\x00" * 64

    def test_reserved_accounting(self, physmem):
        physmem.alloc(4096)
        physmem.alloc(8192)
        assert physmem.reserved_bytes == 4096 + 8192

    def test_huge_reservation_is_cheap(self, physmem):
        physmem.alloc(27 << 30)          # ocean-ncp scale
        assert physmem.touched_bytes == 0


class TestData:
    def test_untouched_reads_zero(self, physmem):
        pa = physmem.alloc(4096)
        assert physmem.read(pa, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self, physmem):
        pa = physmem.alloc(4096)
        physmem.write(pa + 100, b"hello world")
        assert physmem.read(pa + 100, 11) == b"hello world"

    def test_int_roundtrip(self, physmem):
        pa = physmem.alloc(4096)
        physmem.write_int(pa, 0xDEADBEEF, 4)
        assert physmem.read_int(pa, 4) == 0xDEADBEEF

    def test_int_masked_to_width(self, physmem):
        pa = physmem.alloc(4096)
        physmem.write_int(pa, 0x1FF, 1)
        assert physmem.read_int(pa, 1) == 0xFF

    def test_cross_chunk_access(self, physmem):
        pa = physmem.alloc(8192)
        physmem.write(pa + 4090, b"0123456789AB")
        assert physmem.read(pa + 4090, 12) == b"0123456789AB"

    def test_cross_chunk_int(self, physmem):
        pa = physmem.alloc(8192)
        physmem.write_int(pa + 4093, 0x1122334455667788, 8)
        assert physmem.read_int(pa + 4093, 8) == 0x1122334455667788

    def test_copy_page(self, physmem):
        src = physmem.alloc(4096)
        dst = physmem.alloc(4096)
        physmem.write(src + 7, b"payload")
        physmem.copy_page(src, dst, 4096)
        assert physmem.read(dst + 7, 7) == b"payload"

    def test_copy_page_unmaterialized_source_clears_dest(self, physmem):
        src = physmem.alloc(4096)
        dst = physmem.alloc(4096)
        physmem.write(dst, b"x")
        physmem.copy_page(src, dst, 4096)
        assert physmem.read(dst, 1) == b"\x00"

    def test_snapshot_is_immutable_copy(self, physmem):
        pa = physmem.alloc(4096)
        physmem.write(pa, b"aaa")
        snap = physmem.snapshot(pa, 3)
        physmem.write(pa, b"bbb")
        assert snap == b"aaa"

    def test_touched_bytes_counts_materialized(self, physmem):
        pa = physmem.alloc(1 << 20)
        assert physmem.touched_bytes == 0
        physmem.write(pa, b"x")
        assert physmem.touched_bytes == 4096
