"""Virtual memory: mappings, translation, COW, protection, fork."""

import pytest

from repro.errors import InvalidMappingError, SegmentationFault
from repro.sim.addrspace import (AddressSpace, Backing, PRIVATE, SHARED)
from repro.sim.costs import CostModel, PAGE_2M, PAGE_4K

BASE = 0x1000_0000


@pytest.fixture
def aspace(physmem):
    return AddressSpace(physmem, CostModel(), "test")


@pytest.fixture
def mapped(aspace, physmem):
    backing = Backing(physmem, 1 << 20, "app", file_backed=True)
    mapping = aspace.mmap(BASE, 1 << 20, backing, name="heap")
    return aspace, mapping, backing


class TestMapping:
    def test_mmap_and_lookup(self, mapped):
        aspace, mapping, _ = mapped
        assert aspace.mapping_at(BASE) is mapping
        assert aspace.mapping_at(BASE + (1 << 20) - 1) is mapping
        assert aspace.mapping_at(BASE + (1 << 20)) is None
        assert aspace.mapping_at(BASE - 1) is None

    def test_overlap_rejected(self, mapped, physmem):
        aspace, _, _ = mapped
        other = Backing(physmem, 1 << 20, "x")
        with pytest.raises(InvalidMappingError):
            aspace.mmap(BASE + 4096, 1 << 20, other)

    def test_unaligned_rejected(self, aspace, physmem):
        backing = Backing(physmem, 1 << 20, "x")
        with pytest.raises(InvalidMappingError):
            aspace.mmap(BASE + 100, 4096, backing)

    def test_mapping_past_backing_rejected(self, aspace, physmem):
        backing = Backing(physmem, 4096, "x")
        with pytest.raises(InvalidMappingError):
            aspace.mmap(BASE, 8192, backing)

    def test_munmap(self, mapped):
        aspace, _, _ = mapped
        aspace.munmap(BASE)
        assert aspace.mapping_at(BASE) is None

    def test_unmapped_access_segfaults(self, aspace):
        with pytest.raises(SegmentationFault):
            aspace.translate(0xDEAD0000, 8, False)


class TestTranslation:
    def test_shared_translation_hits_backing(self, mapped):
        aspace, _, backing = mapped
        tr = aspace.translate(BASE + 0x1234, 8, False)
        assert tr.pa == backing.base_pa + 0x1234

    def test_first_touch_charges_fault(self, mapped):
        aspace, _, _ = mapped
        tr1 = aspace.translate(BASE, 8, False)
        tr2 = aspace.translate(BASE + 8, 8, False)
        assert tr1.cost > 0 and tr1.faults
        assert tr2.cost == 0 and not tr2.faults

    def test_file_backed_fault_costs_more_than_anon(self, aspace, physmem):
        costs = CostModel()
        filed = Backing(physmem, 1 << 20, "f", file_backed=True)
        anon = Backing(physmem, 1 << 20, "a", file_backed=False)
        aspace.mmap(BASE, 1 << 20, filed, name="heap")
        aspace.mmap(BASE + (1 << 20), 1 << 20, anon, name="anon")
        f = aspace.translate(BASE, 8, False).cost
        a = aspace.translate(BASE + (1 << 20), 8, False).cost
        assert f == costs.fault_shared_file
        assert a == costs.fault_anon

    def test_access_crossing_page_segfaults(self, mapped):
        aspace, _, _ = mapped
        with pytest.raises(SegmentationFault):
            aspace.translate(BASE + PAGE_4K - 4, 8, False)

    def test_write_to_readonly_shared_segfaults(self, mapped):
        aspace, _, _ = mapped
        aspace.protect_page(BASE, writable=False, mode=SHARED)
        with pytest.raises(SegmentationFault):
            aspace.translate(BASE, 8, True)


class TestCopyOnWrite:
    def test_protected_read_stays_shared(self, mapped):
        aspace, _, backing = mapped
        aspace.protect_page(BASE)
        tr = aspace.translate(BASE + 8, 8, False)
        assert tr.pa == backing.base_pa + 8

    def test_protected_write_cows(self, mapped, physmem):
        aspace, _, backing = mapped
        physmem.write_int(backing.base_pa + 16, 77, 8)
        aspace.protect_page(BASE)
        tr = aspace.translate(BASE + 16, 8, True)
        assert tr.pa != backing.base_pa + 16
        # the private copy carries the original contents
        assert physmem.read_int(tr.pa, 8) == 77
        assert any(kind == "cow" for kind, _va, _sz in tr.faults)

    def test_cow_isolates_from_shared_writes(self, mapped, physmem):
        aspace, _, backing = mapped
        aspace.protect_page(BASE)
        tr = aspace.translate(BASE, 8, True)
        physmem.write_int(tr.pa, 1, 8)                  # private write
        physmem.write_int(backing.base_pa, 2, 8)        # shared write
        again = aspace.translate(BASE, 8, False)
        assert physmem.read_int(again.pa, 8) == 1       # still private

    def test_cow_hook_fires_once_per_page(self, mapped):
        aspace, _, _ = mapped
        calls = []
        aspace.cow_hook = lambda *a: calls.append(a) or 0
        aspace.protect_page(BASE)
        aspace.translate(BASE, 8, True)
        aspace.translate(BASE + 32, 8, True)
        assert len(calls) == 1

    def test_unprotect_drops_private_frame(self, mapped, physmem):
        aspace, _, backing = mapped
        aspace.protect_page(BASE)
        tr = aspace.translate(BASE, 8, True)
        physmem.write_int(tr.pa, 42, 8)
        aspace.unprotect_page(BASE)
        back = aspace.translate(BASE, 8, False)
        assert back.pa == backing.base_pa
        assert aspace.private_bytes == 0

    def test_shared_pa_always_sees_backing(self, mapped):
        aspace, _, backing = mapped
        aspace.protect_page(BASE)
        aspace.translate(BASE, 8, True)
        assert aspace.shared_pa(BASE) == backing.base_pa


class TestHugePages:
    def test_huge_mapping_faults_per_2mb(self, aspace, physmem):
        backing = Backing(physmem, 4 * PAGE_2M, "huge", file_backed=True)
        aspace.mmap(0x4000_0000, 4 * PAGE_2M, backing,
                    page_size=PAGE_2M, name="heap")
        aspace.translate(0x4000_0000, 8, False)
        aspace.translate(0x4000_0000 + PAGE_2M - 8, 8, False)
        assert aspace.fault_count["shared_file"] == 1
        aspace.translate(0x4000_0000 + PAGE_2M, 8, False)
        assert aspace.fault_count["shared_file"] == 2

    def test_huge_cow_copies_whole_page(self, aspace, physmem):
        backing = Backing(physmem, PAGE_2M, "huge", file_backed=True)
        aspace.mmap(0x4000_0000, PAGE_2M, backing, page_size=PAGE_2M,
                    name="heap")
        physmem.write_int(backing.base_pa + PAGE_2M - 8, 9, 8)
        aspace.protect_page(0x4000_0000)
        tr = aspace.translate(0x4000_0000, 8, True)
        assert physmem.read_int(tr.pa + PAGE_2M - 8, 8) == 9


class TestFork:
    def test_fork_shares_shared_pages(self, mapped, physmem):
        aspace, _, backing = mapped
        child = aspace.fork("child")
        tr = child.translate(BASE, 8, False)
        assert tr.pa == backing.base_pa

    def test_fork_inherits_protection(self, mapped):
        aspace, _, backing = mapped
        aspace.protect_page(BASE)
        child = aspace.fork("child")
        tr = child.translate(BASE, 8, True)
        assert tr.pa != backing.base_pa

    def test_fork_duplicates_private_frames(self, mapped, physmem):
        aspace, _, _ = mapped
        aspace.protect_page(BASE)
        tr = aspace.translate(BASE, 8, True)
        physmem.write_int(tr.pa, 5, 8)
        child = aspace.fork("child")
        child_tr = child.translate(BASE, 8, True)
        assert child_tr.pa != tr.pa
        assert physmem.read_int(child_tr.pa, 8) == 5
        physmem.write_int(child_tr.pa, 6, 8)
        assert physmem.read_int(tr.pa, 8) == 5

    def test_processes_isolate_after_protection(self, mapped, physmem):
        """The repair property: two processes writing the same virtual
        page touch different physical lines."""
        aspace, _, _ = mapped
        aspace.protect_page(BASE)
        child_a = aspace.fork("a")
        child_b = aspace.fork("b")
        pa_a = child_a.translate(BASE, 8, True).pa
        pa_b = child_b.translate(BASE + 8, 8, True).pa
        assert (pa_a & ~63) != (pa_b & ~63)
