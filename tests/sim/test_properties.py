"""Property-based tests on the simulator's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim.cache import CoherenceDirectory, MODIFIED
from repro.sim.costs import CostModel
from repro.sim.physmem import PhysicalMemory

# ----------------------------------------------------------------------
# physical memory
# ----------------------------------------------------------------------

writes = st.lists(
    st.tuples(st.integers(0, 16 * 4096 - 64),
              st.binary(min_size=1, max_size=64)),
    min_size=1, max_size=40)


@given(writes)
@settings(max_examples=60, deadline=None)
def test_physmem_last_write_wins(write_list):
    """Reading any byte returns the last value written to it."""
    mem = PhysicalMemory()
    base = mem.alloc(16 * 4096)
    model = {}
    for offset, data in write_list:
        mem.write(base + offset, data)
        for i, b in enumerate(data):
            model[offset + i] = b
    for offset, expected in model.items():
        assert mem.read(base + offset, 1)[0] == expected


@given(st.lists(st.integers(1, 1 << 16), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_physmem_allocations_never_overlap(sizes):
    mem = PhysicalMemory()
    spans = []
    for size in sizes:
        base = mem.alloc(size)
        end = base + size
        for other_base, other_end in spans:
            assert end <= other_base or other_end <= base
        spans.append((base, end))


@given(st.integers(1, 8), st.binary(min_size=8, max_size=8))
@settings(max_examples=30, deadline=None)
def test_physmem_int_roundtrip_any_width(width, raw):
    mem = PhysicalMemory()
    base = mem.alloc(4096)
    value = int.from_bytes(raw[:width], "little")
    mem.write_int(base + 7, value, width)        # deliberately unaligned
    assert mem.read_int(base + 7, width) == value


# ----------------------------------------------------------------------
# coherence: SWMR under arbitrary access sequences
# ----------------------------------------------------------------------

accesses = st.lists(
    st.tuples(st.integers(0, 3),              # core
              st.integers(0, 7),              # line index
              st.booleans()),                 # is_write
    min_size=1, max_size=200)


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_coherence_swmr_invariant(sequence):
    """No interleaving of accesses violates single-writer
    multiple-reader."""
    directory = CoherenceDirectory(CostModel(), n_cores=4)
    now = 0
    for core, line_index, is_write in sequence:
        directory.access(core, 0x1000 + line_index * 64, 8, is_write,
                         now=now)
        now += 10
    directory.check_swmr()


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_coherence_hitm_requires_prior_remote_write(sequence):
    """A HITM can only happen if some other core wrote the line since
    the last invalidation — tracked against a reference model."""
    directory = CoherenceDirectory(CostModel(), n_cores=4)
    dirty_by = {}                 # line -> core holding it modified
    now = 0
    for core, line_index, is_write in sequence:
        line = 0x1000 + line_index * 64
        out = directory.access(core, line, 8, is_write, now=now)
        now += 10
        if out.hitm:
            assert dirty_by.get(line) is not None
            assert dirty_by[line] != core
        if is_write:
            dirty_by[line] = core
        elif out.hitm:
            dirty_by[line] = None    # supplier demoted to Shared
    directory.check_swmr()


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_coherence_single_modified_holder(sequence):
    directory = CoherenceDirectory(CostModel(), n_cores=4)
    for step, (core, line_index, is_write) in enumerate(sequence):
        directory.access(core, 0x1000 + line_index * 64, 8, is_write,
                         now=step * 10)
        holders = directory.line_holders(0x1000 + line_index * 64)
        modified = [c for c, s in holders.items() if s == MODIFIED]
        assert len(modified) <= 1
        if modified:
            assert len(holders) == 1
