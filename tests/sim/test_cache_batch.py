"""Differential tests for the batch cache-state transition kernels.

``apply_fast_hits`` / ``apply_fast_mixed`` collapse ``k`` fast-hit
accesses into one in-place directory update.  The oracle is the
unoptimized per-access path: replay the identical access stream
through a second ``CoherenceDirectory`` (and the ``ReferenceDirectory``
for the serial side) and demand byte-identical directory state.
"""

import random

import pytest

from repro.sim.cache import CoherenceDirectory
from repro.sim.cache_batch import (apply_fast_hits, apply_fast_mixed,
                                   fast_owned_line_count)
from repro.sim.cache_ref import ReferenceDirectory
from repro.sim.costs import LINE_SIZE, CostModel

N_CORES = 4
BASE = 0x40_0000


def _fresh_pair(lines, core=0):
    """Two directories warmed identically: ``core`` owns ``lines``
    through the fast path (two accesses each install the micro-cache
    entry)."""
    costs = CostModel()
    a = CoherenceDirectory(costs, N_CORES)
    b = CoherenceDirectory(costs, N_CORES)
    for directory in (a, b):
        now = 0
        for line in lines:
            directory.access(core, line, 8, True, now=now)
            directory.access(core, line, 8, True, now=now + 1)
            now += 2
    for line in lines:
        assert a._fast[line][0] == core
    return a, b, costs


def _state(directory):
    return (directory._lines, directory._recent, directory.access_count,
            directory.hitm_load_count, directory.hitm_store_count,
            directory.contended_accesses)


def test_fast_owned_line_count_stops_at_first_unowned():
    lines = [BASE + i * LINE_SIZE for i in range(3)]
    a, _b, _ = _fresh_pair(lines)
    foreign = BASE + 10 * LINE_SIZE
    a.access(1, foreign, 8, True, now=50)
    assert fast_owned_line_count(a, 0, lines) == 3
    assert fast_owned_line_count(a, 0, [lines[0], foreign, lines[1]]) == 1
    assert fast_owned_line_count(a, 1, lines) == 0


@pytest.mark.parametrize("is_write", [False, True])
def test_apply_fast_hits_matches_serial(is_write):
    lines = [BASE + i * LINE_SIZE for i in range(4)]
    serial, batched, costs = _fresh_pair(lines)
    hit = costs.store_hit if is_write else costs.load_hit
    now = 100
    finals = {}
    total = 0
    for rep in range(6):
        for line in lines:
            out = serial.access(0, line, 8, is_write, now=now)
            assert out.cost == hit, "stream must stay fast-path"
            finals[line] = now
            total += 1
            now += hit
    apply_fast_hits(batched, 0, is_write, list(finals.items()), total)
    assert _state(serial) == _state(batched)
    assert serial._fast == batched._fast


def test_apply_fast_mixed_matches_serial_rmw_stream():
    """The RmwSeq shape: interleaved load/store pairs over owned
    lines, random order, loads sometimes last on a line."""
    rng = random.Random(7)
    lines = [BASE + i * LINE_SIZE for i in range(4)]
    serial, batched, costs = _fresh_pair(lines)
    now = 100
    finals = {}                      # line -> [last_any, last_write]
    total = 0
    for _ in range(80):
        line = rng.choice(lines)
        is_write = rng.random() < 0.5
        hit = costs.store_hit if is_write else costs.load_hit
        out = serial.access(0, line, 8, is_write, now=now)
        assert out.cost == hit, "stream must stay fast-path"
        entry = finals.setdefault(line, [None, None])
        entry[0] = now
        if is_write:
            entry[1] = now
        total += 1
        now += hit
    apply_fast_mixed(batched, 0, finals, total)
    assert _state(serial) == _state(batched)
    assert serial._fast == batched._fast


def test_apply_fast_mixed_upgrades_exclusive_once():
    """A read-warmed (EXCLUSIVE) line must upgrade to MODIFIED on the
    first batched write, exactly like the serial E->M transition, and
    match the reference model afterwards."""
    costs = CostModel()
    serial = CoherenceDirectory(costs, N_CORES)
    batched = CoherenceDirectory(costs, N_CORES)
    ref = ReferenceDirectory(costs, N_CORES)
    for directory in (serial, batched, ref):
        directory.access(0, BASE, 8, False, now=0)    # E fill
        directory.access(0, BASE, 8, False, now=1)    # fast install
    assert batched._fast[BASE][0] == 0

    serial.access(0, BASE, 8, True, now=10)
    serial.access(0, BASE, 8, False, now=12)
    ref.access(0, BASE, 8, True, now=10)
    ref.access(0, BASE, 8, False, now=12)
    apply_fast_mixed(batched, 0, {BASE: [12, 10]}, 2)

    assert serial._lines == batched._lines == ref._lines
    assert serial._recent == batched._recent
    assert serial.access_count == batched.access_count \
        == ref.access_count
    assert batched.line_holders(BASE) == ref.line_holders(BASE)

    # a later remote read must see the same HITM either way
    got = serial.access(2, BASE, 8, False, now=100)
    want = batched.access(2, BASE, 8, False, now=100)
    assert (got.cost, list(got.hitm_remotes)) \
        == (want.cost, list(want.hitm_remotes))
