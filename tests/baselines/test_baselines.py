"""Sheriff and LASER behaviours the comparison depends on."""

import pytest

from repro.baselines import LaserRuntime, PthreadsRuntime, SheriffRuntime
from repro.core.config import TmiConfig
from repro.engine import Engine
from repro.errors import IncompatibleWorkloadError
from repro.eval import run_workload

from helpers import fs_counter_program


class TestSheriff:
    def test_every_thread_is_a_process(self):
        engine = Engine(fs_counter_program(iters=2_000),
                        SheriffRuntime("protect"))
        engine.run()
        pids = {t.process.pid for t in engine.threads.values()}
        assert len(pids) == len(engine.threads)

    def test_protects_from_startup(self):
        """Sheriff isolates false sharing without any detection delay."""
        base = Engine(fs_counter_program(iters=20_000, compute=100),
                      PthreadsRuntime()).run()
        sheriff = Engine(fs_counter_program(iters=20_000, compute=100),
                         SheriffRuntime("protect")).run()
        assert sheriff.cycles < base.cycles

    def test_commits_at_every_sync_hurt_lock_heavy_code(self):
        outcome_base = run_workload("wordcount", "pthreads", scale=0.2)
        outcome = run_workload("wordcount", "sheriff-detect", scale=0.2)
        assert outcome.ok
        assert outcome.result.cycles > 1.5 * outcome_base.result.cycles

    def test_rejects_native_input_footprints(self):
        program = fs_counter_program(iters=10)
        program.features.footprint_bytes = 1 << 31
        with pytest.raises(IncompatibleWorkloadError):
            Engine(program, SheriffRuntime("detect"))

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SheriffRuntime("turbo")

    def test_results_correct_for_lock_synchronized_code(self):
        """Lemma 3.1: race-free programs are safe under a PTSB."""
        result = Engine(fs_counter_program(iters=5_000),
                        SheriffRuntime("protect")).run()
        assert result.validated


class TestLaser:
    def test_detects_and_instruments_hot_sites(self):
        program = fs_counter_program(iters=40_000)
        runtime = LaserRuntime(TmiConfig())
        result = Engine(program, runtime).run()
        assert result.validated
        assert runtime.instrumented_pcs
        assert runtime.drains > 0

    def test_store_buffer_forwards_own_stores(self):
        """TSO: a thread always sees its own buffered stores, so the
        counter totals stay exact."""
        result = Engine(fs_counter_program(iters=30_000),
                        LaserRuntime(TmiConfig())).run()
        assert result.validated

    def test_repair_gains_less_than_tmi(self):
        from repro.core import TmiRuntime

        base = Engine(fs_counter_program(iters=40_000, compute=100),
                      PthreadsRuntime()).run()
        laser = Engine(fs_counter_program(iters=40_000, compute=100),
                       LaserRuntime(TmiConfig())).run()
        tmi = Engine(fs_counter_program(iters=40_000, compute=100),
                     TmiRuntime("protect")).run()
        laser_speedup = base.cycles / laser.cycles
        tmi_speedup = base.cycles / tmi.cycles
        assert tmi_speedup > laser_speedup

    def test_no_instrumentation_without_false_sharing(self):
        runtime = LaserRuntime(TmiConfig())
        Engine(fs_counter_program(iters=10_000, stride=64),
               runtime).run()
        assert not runtime.instrumented_pcs


class TestGlibcAllocator:
    def test_glibc_slower_than_lockless(self):
        outcome_l = run_workload("kmeans", "pthreads", scale=0.3)
        outcome_g = run_workload("kmeans", "glibc", scale=0.3)
        assert outcome_g.result.cycles > outcome_l.result.cycles
