"""PEBS/perf sampling model."""

import pytest

from repro.faults import FaultInjector
from repro.oskit.perf import PerfSession
from repro.sim.costs import CostModel
from repro.sim.events import HitmEvent


def hitm(tid=1, pc=0x400000, va=0x1000, is_store=False, cycle=0):
    return HitmEvent(cycle=cycle, core=0, tid=tid, pc=pc, va=va, pa=va,
                     width=8, is_store=is_store, remote_core=1)


@pytest.fixture
def session():
    return PerfSession(CostModel(), period=10)


class TestSampling:
    def test_unattached_thread_not_sampled(self, session):
        assert session.on_hitm(hitm(tid=9)) == 0
        assert session.records_made == 0

    def test_period_thins_records(self, session):
        session.attach_thread(1)
        for _ in range(100):
            session.on_hitm(hitm())
        assert session.records_made == 10

    def test_period_one_records_everything(self):
        session = PerfSession(CostModel(), period=1)
        session.attach_thread(1)
        for _ in range(50):
            session.on_hitm(hitm())
        assert session.records_made == 50

    def test_stores_subsampled(self, session):
        """Store HITMs produce records at a lower rate than loads."""
        costs = CostModel()
        loads = PerfSession(costs, period=1)
        loads.attach_thread(1)
        stores = PerfSession(costs, period=1)
        stores.attach_thread(1)
        for _ in range(90):
            loads.on_hitm(hitm(is_store=False))
            stores.on_hitm(hitm(is_store=True))
        assert stores.records_made < loads.records_made
        assert stores.records_made == 90 // costs.pebs_store_subsample

    def test_record_cost_charged_to_app_thread(self, session):
        session.attach_thread(1)
        costs = [session.on_hitm(hitm()) for _ in range(10)]
        assert costs[-1] == CostModel().pebs_record
        assert all(c == 0 for c in costs[:-1])

    def test_buffer_interrupt_on_overflow(self):
        costs = CostModel()
        session = PerfSession(costs, period=1)
        session.attach_thread(1)
        charged = [session.on_hitm(hitm())
                   for _ in range(costs.pebs_buffer_records)]
        assert charged[-1] == costs.pebs_record + costs.pebs_interrupt
        assert session.interrupts == 1

    def test_occasional_address_skid(self):
        session = PerfSession(CostModel(), period=1)
        session.attach_thread(1)
        for _ in range(PerfSession.ADDR_SKID_EVERY * 2):
            session.on_hitm(hitm(va=0x1000))
        records = session.drain()
        vas = {r.va for r in records}
        assert 0x1000 in vas
        assert 0x1000 + PerfSession.ADDR_SKID_BYTES in vas

    def test_records_hide_ground_truth(self, session):
        session.attach_thread(1)
        for _ in range(10):
            session.on_hitm(hitm())
        record = session.drain()[0]
        assert not hasattr(record, "pa")
        assert not hasattr(record, "is_store")


class TestEstimation:
    def test_drain_empties_buffers(self, session):
        session.attach_thread(1)
        for _ in range(30):
            session.on_hitm(hitm())
        assert len(session.drain()) == 3
        assert session.drain() == []

    def test_estimated_events_scales_by_period(self, session):
        session.attach_thread(1)
        for _ in range(100):
            session.on_hitm(hitm())
        assert session.estimated_events() == 100

    def test_buffer_memory_grows_with_threads(self, session):
        session.attach_thread(1)
        one = session.buffer_memory_bytes()
        session.attach_thread(2)
        assert session.buffer_memory_bytes() == 2 * one


class TestFaultsAndBounds:
    def test_record_drop_loses_data_but_charges_cost(self):
        costs = CostModel()
        faults = FaultInjector(seed=0, rates={"perf.record_drop": 1.0})
        session = PerfSession(costs, period=1, faults=faults)
        session.attach_thread(1)
        charged = [session.on_hitm(hitm()) for _ in range(10)]
        assert session.records_made == 0
        assert session.records_dropped == 10
        assert all(c == costs.pebs_record for c in charged)
        assert session.drain() == []

    def test_buffer_overflow_drops_whole_buffer(self):
        costs = CostModel()
        faults = FaultInjector(seed=0,
                               rates={"perf.buffer_overflow": 1.0})
        session = PerfSession(costs, period=1, faults=faults)
        session.attach_thread(1)
        for _ in range(costs.pebs_buffer_records):
            session.on_hitm(hitm())
        assert session.overflows == 1
        assert session.records_dropped == costs.pebs_buffer_records
        assert session.drain() == []

    def test_detector_queue_is_bounded(self):
        session = PerfSession(CostModel(), period=1, queue_limit=5)
        session.attach_thread(1)
        for _ in range(8):
            session.on_hitm(hitm())
        records = session.drain()
        assert len(records) == 5
        assert session.records_dropped == 3

    def test_no_faults_no_drops(self, session):
        session.attach_thread(1)
        for _ in range(100):
            session.on_hitm(hitm())
        assert session.records_dropped == 0
        assert session.overflows == 0
