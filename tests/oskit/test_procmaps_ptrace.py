"""Address-map filtering and the ptrace monitor."""

from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine, Program
from repro.engine import layout
from repro.isa import Binary
from repro.oskit.procmaps import AddressMap, MapEntry
from repro.oskit.ptrace import PtraceMonitor


def map_with(*entries):
    return AddressMap([MapEntry(*e) for e in entries])


class TestAddressMap:
    def test_classify_by_region(self):
        amap = map_with(
            (0x1000, 0x2000, "globals", "globals"),
            (0x4000, 0x8000, "heap", "heap"),
            (0x9000, 0xA000, "stack:1", "stack"),
            (0xB000, 0xC000, "libc", "lib"),
        )
        assert amap.classify(0x1800) == "globals"
        assert amap.classify(0x4000) == "heap"
        assert amap.classify(0x9FFF) == "stack"
        assert amap.classify(0xB500) == "lib"
        assert amap.classify(0x3000) is None

    def test_repair_eligibility_filter(self):
        """Section 3.1: repair is restricted to heap and globals."""
        amap = map_with(
            (0x1000, 0x2000, "globals", "globals"),
            (0x4000, 0x8000, "heap", "heap"),
            (0x9000, 0xA000, "stack:1", "stack"),
            (0xB000, 0xC000, "libc", "lib"),
        )
        assert amap.repair_eligible(0x1500)
        assert amap.repair_eligible(0x5000)
        assert not amap.repair_eligible(0x9800)
        assert not amap.repair_eligible(0xB800)

    def test_from_aspace_reflects_layout(self):
        def main(t):
            yield from t.compute(1)

        program = Program("m", Binary("m"), main, nthreads=1)
        engine = Engine(program, PthreadsRuntime())
        engine.run()
        amap = AddressMap.from_aspace(engine.root_aspace)
        assert amap.classify(layout.HEAP_BASE) == "heap"
        assert amap.classify(layout.GLOBALS_BASE) == "globals"
        assert amap.classify(layout.stack_base(0)) == "stack"
        assert amap.classify(layout.LIBC_BASE) == "lib"


class TestPtraceMonitor:
    def _engine(self, nthreads=2, work=400):
        def main(t):
            def worker(w):
                for _ in range(work):
                    yield from w.compute(200)

            tids = []
            for _ in range(nthreads):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        program = Program("pt", Binary("pt"), main, nthreads=nthreads)
        return Engine(program, PthreadsRuntime())

    def test_convert_all_threads_makes_processes(self):
        engine = self._engine()
        monitor = PtraceMonitor(engine)
        converted = {}

        def arm(eng, now):
            if not converted:
                converted["x"] = True
                monitor.stop_all_and(monitor.convert_all_threads)

        engine.runtime.tick_cycles = 30_000
        engine._next_tick = 30_000
        engine.runtime.on_tick = arm
        engine.run()
        pids = {t.process.pid for t in engine.threads.values()}
        assert len(pids) == len(engine.threads)

    def test_t2p_latency_under_200us(self):
        """Table 3: every conversion completes in under 200us."""
        engine = self._engine()
        monitor = PtraceMonitor(engine)
        armed = []

        def arm(eng, now):
            if not armed:
                armed.append(True)
                monitor.stop_all_and(monitor.convert_all_threads)

        engine.runtime.tick_cycles = 30_000
        engine._next_tick = 30_000
        engine.runtime.on_tick = arm
        engine.run()
        record = monitor.conversions[0]
        assert 0 < record.t2p_microseconds(engine.costs) < 200

    def test_threads_charged_for_the_stop(self):
        engine = self._engine()
        monitor = PtraceMonitor(engine)
        armed = []

        def arm(eng, now):
            if not armed:
                armed.append(True)
                monitor.stop_all_and(lambda e, t: None)

        engine.runtime.tick_cycles = 30_000
        engine._next_tick = 30_000
        engine.runtime.on_tick = arm
        baseline = self._engine().run().cycles
        stopped = engine.run().cycles
        assert stopped > baseline
